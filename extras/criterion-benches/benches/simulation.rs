//! End-to-end simulation throughput: wall-clock cost of simulating a
//! fixed instruction window under each major configuration. One
//! sample per (configuration × workload) pair; the experiment
//! binaries (table2/figure4/...) regenerate the paper's numbers, this
//! bench tracks how fast they run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vsv::{Experiment, SystemConfig};
use vsv_workloads::twin;

fn bench_configs(c: &mut Criterion) {
    let e = Experiment {
        warmup_instructions: 2_000,
        instructions: 10_000,
    };
    let mut g = c.benchmark_group("simulate-10k-insts");
    g.sample_size(10);
    for name in ["gzip", "ammp"] {
        let params = twin(name).expect("twin exists");
        g.bench_with_input(BenchmarkId::new("baseline", name), &params, |b, p| {
            b.iter(|| e.run(p, SystemConfig::baseline()));
        });
        g.bench_with_input(BenchmarkId::new("vsv-fsm", name), &params, |b, p| {
            b.iter(|| e.run(p, SystemConfig::vsv_with_fsms()));
        });
        g.bench_with_input(BenchmarkId::new("vsv-tk", name), &params, |b, p| {
            b.iter(|| e.run(p, SystemConfig::vsv_with_fsms().with_timekeeping(true)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_configs);
criterion_main!(benches);
