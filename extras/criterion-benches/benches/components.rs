//! Micro-benchmarks of the simulator's hot substrate paths: these are
//! the inner loops that determine how many simulated instructions per
//! second the reproduction achieves.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vsv_isa::{Addr, BranchKind, InstStream, Pc};
use vsv_mem::{AccessKind, Bus, BusConfig, Cache, CacheConfig, EventQueue, Hierarchy, HierarchyConfig, MshrFile};
use vsv_uarch::{BranchPredictor, BranchPredictorConfig};
use vsv_workloads::{twin, Generator, XorShift64};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("l1_access_hit", |b| {
        let mut cache = Cache::new(CacheConfig::l1_baseline());
        cache.fill(Addr(0x40));
        b.iter(|| black_box(cache.access(black_box(Addr(0x40)), false)));
    });
    g.bench_function("l1_fill_evict", |b| {
        let mut cache = Cache::new(CacheConfig::l1_baseline());
        let mut i = 0u64;
        b.iter(|| {
            i += 32;
            black_box(cache.fill(black_box(Addr(i * 32))))
        });
    });
    g.finish();
}

fn bench_mshr_and_bus(c: &mut Criterion) {
    let mut g = c.benchmark_group("mshr-bus");
    g.bench_function("mshr_allocate_complete", |b| {
        let mut m = MshrFile::new(64, 16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let a = Addr((i % 64) * 64);
            m.allocate(a, i, true);
            black_box(m.complete(a))
        });
    });
    g.bench_function("bus_schedule", |b| {
        let mut bus = Bus::new(BusConfig::baseline());
        let mut now = 0u64;
        b.iter(|| {
            now += 10;
            black_box(bus.schedule(now, 64))
        });
    });
    g.bench_function("event_queue_push_pop", |b| {
        let mut q = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            q.push(t + 5, t);
            black_box(q.pop_ready(t))
        });
    });
    g.finish();
}

fn bench_bpred(c: &mut Criterion) {
    let mut g = c.benchmark_group("bpred");
    g.bench_function("predict_update", |b| {
        let mut bp = BranchPredictor::new(BranchPredictorConfig::baseline());
        let mut pc = 0u64;
        b.iter(|| {
            pc = (pc + 4) % 8192;
            let p = bp.predict(Pc(pc), BranchKind::Conditional);
            bp.update(Pc(pc), BranchKind::Conditional, pc % 8 < 4, Pc(pc + 8));
            black_box(p)
        });
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.bench_function("xorshift", |b| {
        let mut r = XorShift64::new(1);
        b.iter(|| black_box(r.next_u64()));
    });
    g.bench_function("generator_next_inst", |b| {
        let mut gen = Generator::new(twin("applu").expect("twin exists"));
        b.iter(|| black_box(gen.next_inst()));
    });
    g.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");
    g.bench_function("l1_hit_path", |b| {
        let mut mem = Hierarchy::new(HierarchyConfig::baseline());
        // Warm one block.
        let _ = mem.access_data(0, Addr(0x40), AccessKind::Read);
        for t in 0..300 {
            mem.tick(t);
        }
        let _ = mem.drain_completions();
        let mut now = 300u64;
        b.iter(|| {
            now += 1;
            black_box(mem.access_data(now, Addr(0x40), AccessKind::Read))
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_mshr_and_bus,
    bench_bpred,
    bench_workload,
    bench_hierarchy
);
criterion_main!(benches);
