//! A minimal, dependency-free stand-in for the parts of `serde` this
//! workspace actually uses, vendored so the workspace resolves and
//! builds with **no network access** (the crates-io registry is
//! unreachable in some of the environments this repo must build in).
//!
//! Dependents rename it to `serde` in their manifests, so source-level
//! `serde::Serialize` derives and bounds are unchanged. The model is
//! deliberately simple: serialization goes through a JSON-shaped
//! [`Content`] tree rather than serde's visitor machinery. The derive
//! macros (feature `derive`, crate `vsv-serde-derive`) generate
//! [`Serialize`]/[`Deserialize`] impls with serde's external JSON
//! conventions: structs as maps, newtype structs as their inner value,
//! unit enum variants as strings, and data-carrying variants as
//! single-key maps (externally tagged).
//!
//! Supported field attributes: `#[serde(skip_deserializing)]`,
//! `#[serde(default)]` and `#[serde(default = "path")]`. Anything else
//! is a compile error in the derive — extend deliberately rather than
//! silently diverging from real serde.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use vsv_serde_derive::{Deserialize, Serialize};

/// A self-describing value tree, JSON-shaped. Maps preserve insertion
/// order so serialization is deterministic (golden digests depend on
/// it).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A number with a fractional part or exponent.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Content>),
    /// An object, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// `serde_json::Value`-style alias for [`Content::as_seq`].
    pub fn as_array(&self) -> Option<&[Content]> {
        self.as_seq()
    }

    /// The string if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any kind of number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as a `bool` if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Member lookup on a map (`None` on other shapes or missing key),
    /// mirroring `serde_json::Value::get`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Looks up a key in a map's entry list (helper for derive-generated
/// code).
#[must_use]
pub fn map_get<'a>(entries: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization (and serialization-to-text) error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An arbitrary message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// "expected X while deserializing Y".
    #[must_use]
    pub fn expected(what: &str, ty: &str) -> Self {
        Error {
            msg: format!("expected {what} while deserializing {ty}"),
        }
    }

    /// A required field was absent.
    #[must_use]
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error {
            msg: format!("missing field `{field}` of {ty}"),
        }
    }

    /// An enum string/tag did not name a known variant.
    #[must_use]
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Error {
            msg: format!("unknown variant `{variant}` of {ty}"),
        }
    }

    /// Wraps the error with field context.
    #[must_use]
    pub fn in_field(self, ty: &str, field: &str) -> Self {
        Error {
            msg: format!("{ty}.{field}: {}", self.msg),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Content`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_content(&self) -> Content;
}

/// Reconstruction from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, failing with a description of the first
    /// mismatch. Unknown map keys are ignored, as in serde's default.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the tree's shape or a value does not
    /// match `Self`.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

// ---------- primitive impls -----------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_bool()
            .ok_or_else(|| Error::expected("bool", "bool"))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v = content
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(v).map_err(|_| Error::custom(format!(
                    "{v} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let v = content
            .as_u64()
            .ok_or_else(|| Error::expected("unsigned integer", "usize"))?;
        usize::try_from(v).map_err(|_| Error::custom(format!("{v} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = i64::from(*self);
                if v < 0 { Content::I64(v) } else { Content::U64(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v = match *content {
                    Content::U64(u) => i64::try_from(u)
                        .map_err(|_| Error::custom(format!("{u} out of range for i64")))?,
                    Content::I64(i) => i,
                    _ => return Err(Error::expected("integer", stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| Error::custom(format!(
                    "{v} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_f64()
            .ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        #[allow(clippy::cast_possible_truncation)]
        content
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| Error::expected("number", "f32"))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

// Real serde deserializes `&'de str` borrowed from the input. This
// stand-in has no input lifetime to borrow from, so `&'static str` is
// produced by leaking — acceptable for the short-lived test/CLI
// processes this workspace runs.
impl Deserialize for &'static str {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_str()
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
            .ok_or_else(|| Error::expected("string", "&str"))
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_seq()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let seq = content
            .as_seq()
            .ok_or_else(|| Error::expected("array", "fixed-size array"))?;
        if seq.len() != N {
            return Err(Error::custom(format!(
                "expected an array of length {N}, got {}",
                seq.len()
            )));
        }
        let mut out = Vec::with_capacity(N);
        for item in seq {
            out.push(T::from_content(item)?);
        }
        out.try_into()
            .map_err(|_| Error::custom("array length changed underfoot"))
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(&42u32.to_content()), Ok(42));
        assert_eq!(i32::from_content(&(-7i32).to_content()), Ok(-7));
        assert_eq!(f64::from_content(&1.5f64.to_content()), Ok(1.5));
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(
            String::from_content(&"hi".to_content()),
            Ok("hi".to_owned())
        );
    }

    #[test]
    fn integers_cross_width() {
        // JSON has one number shape: a u64-serialized value must read
        // back as f64 and vice versa when integral.
        assert_eq!(f64::from_content(&Content::U64(3)), Ok(3.0));
        assert_eq!(u8::from_content(&Content::U64(255)), Ok(255));
        assert!(u8::from_content(&Content::U64(256)).is_err());
        assert!(u32::from_content(&Content::I64(-1)).is_err());
    }

    #[test]
    fn options_and_arrays() {
        let some: Option<u32> = Some(5);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_content(&some.to_content()), Ok(some));
        assert_eq!(Option::<u32>::from_content(&none.to_content()), Ok(none));
        let arr = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::from_content(&arr.to_content()), Ok(arr));
        assert!(<[f64; 2]>::from_content(&arr.to_content()).is_err());
    }

    #[test]
    fn map_lookup() {
        let m = Content::Map(vec![
            ("a".to_owned(), Content::U64(1)),
            ("b".to_owned(), Content::Bool(false)),
        ]);
        assert_eq!(m.get("a"), Some(&Content::U64(1)));
        assert_eq!(m.get("missing"), None);
        assert_eq!(Content::Null.get("a"), None);
    }
}
