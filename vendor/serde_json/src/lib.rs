//! JSON text encoding/decoding over the in-tree serde stand-in's
//! [`Content`](serde::Content) model. Vendored (like `vsv-serde`) so
//! the workspace builds with no network access; dependents rename this
//! crate to `serde_json`, keeping call sites source-compatible.
//!
//! Guarantees the rest of the workspace relies on:
//!
//! * **Deterministic output** — map keys keep insertion (declaration)
//!   order and floats use Rust's shortest round-trip formatting, so
//!   serializing the same value always yields the same bytes (golden
//!   report digests depend on this).
//! * **Lossless round-trips** for the types the workspace serializes:
//!   `parse(format(x))` reconstructs `x` exactly (floats via shortest
//!   round-trip, integers verbatim).
//!
//! Non-finite floats serialize as `null`, as real `serde_json` does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// A parsed JSON value (alias of the serde stand-in's content tree;
/// supports `get`, `as_f64`, `as_str`, ... — see [`serde::Content`]).
pub type Value = serde::Content;

pub use serde::Error;

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the stand-in's data model; the `Result` mirrors
/// real `serde_json`'s signature so call sites stay compatible.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the stand-in's data model (see [`to_string`]).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any [`serde::Deserialize`] type (including
/// [`Value`] itself).
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax error or shape
/// mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_content(&v)
}

// ---------- writer ---------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => {
            if n.is_finite() {
                // Rust's `{}` is shortest-round-trip, so parsing the
                // output reconstructs the exact bits. Integral values
                // print without a fraction ("1", not "1.0"); the
                // parser returns them as integers, and the Deserialize
                // impls accept integers where floats are expected.
                let _ = write!(out, "{n}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------- parser ---------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{kw}` at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: JSON may split astral
                            // characters into \uD8xx\uDCxx.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::custom("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_fraction_or_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    saw_fraction_or_exp = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number chars");
        if !saw_fraction_or_exp {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "0", "-3", "18446744073709551615"] {
            let v: Value = from_str(json).expect("parses");
            assert_eq!(to_string(&v).expect("writes"), json);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [
            0.5f64,
            -1.25,
            1e300,
            std::f64::consts::PI,
            f64::MIN_POSITIVE,
        ] {
            let json = to_string(&x).expect("writes");
            let back: f64 = from_str(&json).expect("parses");
            assert_eq!(back.to_bits(), x.to_bits(), "{json}");
        }
    }

    #[test]
    fn integral_float_reads_back_as_float_consumer() {
        // 1.0 serializes as "1"; an f64 consumer must still accept it.
        let json = to_string(&1.0f64).expect("writes");
        assert_eq!(json, "1");
        let back: f64 = from_str(&json).expect("parses");
        assert_eq!(back, 1.0);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1F600}";
        let json = to_string(&s.to_owned()).expect("writes");
        let back: String = from_str(&json).expect("parses");
        assert_eq!(back, s);
        let astral: String = from_str("\"\\ud83d\\ude00\"").expect("surrogate pair");
        assert_eq!(astral, "\u{1F600}");
    }

    #[test]
    fn collections_and_lookup() {
        let v: Value = from_str(r#"{"a": [1, 2.5, null], "b": {"c": true}}"#).expect("parses");
        assert_eq!(
            v.get("a").and_then(|a| a.as_seq()).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_bool),
            Some(true)
        );
        assert_eq!(
            to_string(&v).expect("writes"),
            r#"{"a":[1,2.5,null],"b":{"c":true}}"#
        );
    }

    #[test]
    fn pretty_output_shape() {
        let v: Value = from_str(r#"{"a":1,"b":[true]}"#).expect("parses");
        let pretty = to_string_pretty(&v).expect("writes");
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        let e = from_str::<bool>("\"yes\"").expect_err("shape mismatch");
        assert!(e.to_string().contains("bool"));
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(to_string(&f64::NAN).expect("writes"), "null");
        assert_eq!(to_string(&f64::INFINITY).expect("writes"), "null");
    }
}
