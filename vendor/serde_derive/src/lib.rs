//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the in-tree
//! serde stand-in (`vsv-serde`, renamed to `serde` by its dependents).
//!
//! Written directly against `proc_macro` — no `syn`, no `quote` — so
//! the workspace builds with zero registry access. The parser covers
//! exactly the shapes this repository derives on:
//!
//! * structs with named fields (any visibility, no generics);
//! * tuple structs (newtypes serialize as their inner value);
//! * enums whose variants are unit, newtype/tuple, or struct-like
//!   (serialized externally tagged, as real serde does);
//! * field attributes `#[serde(skip_deserializing)]`,
//!   `#[serde(default)]`, `#[serde(default = "path")]`.
//!
//! Anything outside that set is a deliberate compile error, so a
//! future divergence from real serde's semantics is loud, not silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stand-in's `Serialize` trait (see `vsv-serde`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the stand-in's `Deserialize` trait (see `vsv-serde`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------- item model ----------------------------------------------

/// Per-field `#[serde(...)]` options.
#[derive(Default, Clone)]
struct FieldOpts {
    skip_deserializing: bool,
    /// `Some(None)` = bare `default`; `Some(Some(path))` = `default = "path"`.
    default: Option<Option<String>>,
}

struct NamedField {
    name: String,
    opts: FieldOpts,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<NamedField>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Body {
    NamedStruct(Vec<NamedField>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---------- parsing --------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("vsv-serde-derive: expected {what}, got {other:?}"),
        }
    }

    /// Consumes leading attributes, returning the merged `#[serde(...)]`
    /// options found among them.
    fn eat_attrs(&mut self) -> FieldOpts {
        let mut opts = FieldOpts::default();
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1;
            let Some(TokenTree::Group(g)) = self.next() else {
                panic!("vsv-serde-derive: `#` not followed by an attribute group");
            };
            parse_attr_group(g.stream(), &mut opts);
        }
        opts
    }

    /// Consumes `pub`, `pub(crate)`, `pub(super)`, `pub(in ...)`.
    fn eat_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    /// Skips a type (or any expression) up to a top-level `,`,
    /// tracking `<`/`>` nesting so generic arguments don't split the
    /// field list. The comma itself is consumed.
    fn skip_to_field_separator(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' && angle_depth == 0 {
                        self.pos += 1;
                        return;
                    }
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth -= 1;
                    }
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }
}

/// Parses the contents of one `[...]` attribute group, folding any
/// `serde(...)` options into `opts`; other attributes (doc comments,
/// `derive`, `cfg_attr` leftovers, ...) are ignored.
fn parse_attr_group(stream: TokenStream, opts: &mut FieldOpts) {
    let mut c = Cursor::new(stream);
    let Some(TokenTree::Ident(head)) = c.peek() else {
        return;
    };
    if head.to_string() != "serde" {
        return;
    }
    c.pos += 1;
    let Some(TokenTree::Group(g)) = c.next() else {
        panic!("vsv-serde-derive: bare `#[serde]` attribute is not supported");
    };
    let mut inner = Cursor::new(g.stream());
    while !inner.at_end() {
        let key = inner.expect_ident("a serde option name");
        match key.as_str() {
            "skip_deserializing" => opts.skip_deserializing = true,
            "default" => {
                if inner.eat_punct('=') {
                    match inner.next() {
                        Some(TokenTree::Literal(lit)) => {
                            let s = lit.to_string();
                            let path = s
                                .strip_prefix('"')
                                .and_then(|s| s.strip_suffix('"'))
                                .unwrap_or_else(|| {
                                    panic!(
                                        "vsv-serde-derive: `default = {s}` must be a string literal"
                                    )
                                })
                                .to_owned();
                            opts.default = Some(Some(path));
                        }
                        other => {
                            panic!("vsv-serde-derive: `default =` needs a string literal, got {other:?}")
                        }
                    }
                } else {
                    opts.default = Some(None);
                }
            }
            other => panic!(
                "vsv-serde-derive: unsupported serde option `{other}` \
                 (supported: skip_deserializing, default[ = \"path\"])"
            ),
        }
        if !inner.eat_punct(',') && !inner.at_end() {
            panic!("vsv-serde-derive: malformed #[serde(...)] attribute");
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    let _ = c.eat_attrs();
    c.eat_visibility();
    let kind = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("the type name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("vsv-serde-derive: generic types are not supported (deriving on {name})");
        }
    }
    match kind.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                body: Body::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                body: Body::TupleStruct(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                name,
                body: Body::UnitStruct,
            },
            other => panic!("vsv-serde-derive: unexpected struct body for {name}: {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                body: Body::Enum(parse_variants(g.stream())),
            },
            other => panic!("vsv-serde-derive: unexpected enum body for {name}: {other:?}"),
        },
        other => panic!("vsv-serde-derive: cannot derive on `{other}` items"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<NamedField> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let opts = c.eat_attrs();
        if c.at_end() {
            break;
        }
        c.eat_visibility();
        let name = c.expect_ident("a field name");
        if !c.eat_punct(':') {
            panic!("vsv-serde-derive: field `{name}` is not followed by `:`");
        }
        c.skip_to_field_separator();
        fields.push(NamedField { name, opts });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0usize;
    while !c.at_end() {
        let opts = c.eat_attrs();
        if opts.skip_deserializing || opts.default.is_some() {
            panic!("vsv-serde-derive: serde options on tuple fields are not supported");
        }
        if c.at_end() {
            break;
        }
        c.eat_visibility();
        c.skip_to_field_separator();
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        let opts = c.eat_attrs();
        if opts.skip_deserializing || opts.default.is_some() {
            panic!("vsv-serde-derive: serde options on enum variants are not supported");
        }
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("a variant name");
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.pos += 1;
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.pos += 1;
                VariantShape::Tuple(n)
            }
            _ => VariantShape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == '=' {
                panic!(
                    "vsv-serde-derive: explicit discriminants are not supported \
                     (variant {name})"
                );
            }
        }
        if !c.eat_punct(',') && !c.at_end() {
            panic!("vsv-serde-derive: expected `,` after variant {name}");
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------- code generation ------------------------------------------

fn push_field_entries(out: &mut String, fields: &[NamedField], accessor: impl Fn(&str) -> String) {
    for f in fields {
        out.push_str(&format!(
            "__m.push((String::from(\"{n}\"), ::serde::Serialize::to_content({a})));\n",
            n = f.name,
            a = accessor(&f.name),
        ));
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let mut s =
                String::from("let mut __m: Vec<(String, ::serde::Content)> = Vec::new();\n");
            push_field_entries(&mut s, fields, |f| format!("&self.{f}"));
            s.push_str("::serde::Content::Map(__m)\n");
            s
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)\n".to_owned(),
        Body::TupleStruct(n) => {
            let mut s = String::from("let mut __s: Vec<::serde::Content> = Vec::new();\n");
            for i in 0..*n {
                s.push_str(&format!(
                    "__s.push(::serde::Serialize::to_content(&self.{i}));\n"
                ));
            }
            s.push_str("::serde::Content::Seq(__s)\n");
            s
        }
        Body::UnitStruct => "::serde::Content::Null\n".to_owned(),
        Body::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => s.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(String::from(\"{vn}\")),\n"
                    )),
                    VariantShape::Tuple(1) => s.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Content::Map(vec![(String::from(\"{vn}\"), \
                         ::serde::Serialize::to_content(__f0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        s.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                             let mut __s: Vec<::serde::Content> = Vec::new();\n",
                            binders.join(", ")
                        ));
                        for b in &binders {
                            s.push_str(&format!(
                                "__s.push(::serde::Serialize::to_content({b}));\n"
                            ));
                        }
                        s.push_str(&format!(
                            "::serde::Content::Map(vec![(String::from(\"{vn}\"), \
                             ::serde::Content::Seq(__s))])\n}}\n"
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        s.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n\
                             let mut __m: Vec<(String, ::serde::Content)> = Vec::new();\n",
                            binders.join(", ")
                        ));
                        push_field_entries(&mut s, fields, |f| f.to_owned());
                        s.push_str(&format!(
                            "::serde::Content::Map(vec![(String::from(\"{vn}\"), \
                             ::serde::Content::Map(__m))])\n}}\n"
                        ));
                    }
                }
            }
            s.push_str("}\n");
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}}}\n}}\n"
    )
}

/// The expression that rebuilds one named field from map entries
/// `__fm`, honouring skip/default options. `ty_label` names the
/// containing type in error messages.
fn field_expr(ty_label: &str, f: &NamedField) -> String {
    let n = &f.name;
    let default_expr = match &f.opts.default {
        Some(Some(path)) => Some(format!("{path}()")),
        Some(None) => Some("::core::default::Default::default()".to_owned()),
        None => None,
    };
    if f.opts.skip_deserializing {
        let d = default_expr.unwrap_or_else(|| "::core::default::Default::default()".to_owned());
        return format!("{n}: {d},\n");
    }
    let missing = match default_expr {
        Some(d) => d,
        None => format!("return Err(::serde::Error::missing_field(\"{ty_label}\", \"{n}\"))"),
    };
    format!(
        "{n}: match ::serde::map_get(__fm, \"{n}\") {{\n\
         Some(__fv) => ::serde::Deserialize::from_content(__fv)\
         .map_err(|__e| __e.in_field(\"{ty_label}\", \"{n}\"))?,\n\
         None => {missing},\n\
         }},\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let mut s = format!(
                "let __fm = __content.as_map()\
                 .ok_or_else(|| ::serde::Error::expected(\"map\", \"{name}\"))?;\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&field_expr(name, f));
            }
            s.push_str("})\n");
            s
        }
        Body::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_content(__content)?))\n")
        }
        Body::TupleStruct(n) => {
            let mut s = format!(
                "let __s = __content.as_seq()\
                 .ok_or_else(|| ::serde::Error::expected(\"array\", \"{name}\"))?;\n\
                 if __s.len() != {n} {{\n\
                 return Err(::serde::Error::custom(format!(\
                 \"expected {n} elements for {name}, got {{}}\", __s.len())));\n}}\n\
                 Ok({name}(\n"
            );
            for i in 0..*n {
                s.push_str(&format!(
                    "::serde::Deserialize::from_content(&__s[{i}])?,\n"
                ));
            }
            s.push_str("))\n");
            s
        }
        Body::UnitStruct => format!(
            "match __content {{\n\
             ::serde::Content::Null => Ok({name}),\n\
             _ => Err(::serde::Error::expected(\"null\", \"{name}\")),\n}}\n"
        ),
        Body::Enum(variants) => {
            let units: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .collect();
            let datas: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .collect();
            let mut s = String::from("match __content {\n");
            if units.is_empty() {
                s.push_str(&format!(
                    "::serde::Content::Str(__s) => \
                     Err(::serde::Error::unknown_variant(\"{name}\", __s)),\n"
                ));
            } else {
                s.push_str("::serde::Content::Str(__s) => match __s.as_str() {\n");
                for v in &units {
                    s.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n", vn = v.name));
                }
                s.push_str(&format!(
                    "__other => Err(::serde::Error::unknown_variant(\"{name}\", __other)),\n}},\n"
                ));
            }
            if datas.is_empty() {
                s.push_str(&format!(
                    "::serde::Content::Map(_) => \
                     Err(::serde::Error::expected(\"variant string\", \"{name}\")),\n"
                ));
            } else {
                s.push_str(
                    "::serde::Content::Map(__m) if __m.len() == 1 => {\n\
                     let (__k, __v) = &__m[0];\n\
                     match __k.as_str() {\n",
                );
                for v in &datas {
                    let vn = &v.name;
                    let label = format!("{name}::{vn}");
                    match &v.shape {
                        VariantShape::Unit => unreachable!("filtered above"),
                        VariantShape::Tuple(1) => s.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                             ::serde::Deserialize::from_content(__v)\
                             .map_err(|__e| __e.in_field(\"{name}\", \"{vn}\"))?)),\n"
                        )),
                        VariantShape::Tuple(n) => {
                            s.push_str(&format!(
                                "\"{vn}\" => {{\n\
                                 let __s = __v.as_seq()\
                                 .ok_or_else(|| ::serde::Error::expected(\"array\", \"{label}\"))?;\n\
                                 if __s.len() != {n} {{\n\
                                 return Err(::serde::Error::custom(format!(\
                                 \"expected {n} elements for {label}, got {{}}\", __s.len())));\n}}\n\
                                 Ok({name}::{vn}(\n"
                            ));
                            for i in 0..*n {
                                s.push_str(&format!(
                                    "::serde::Deserialize::from_content(&__s[{i}])?,\n"
                                ));
                            }
                            s.push_str("))\n}\n");
                        }
                        VariantShape::Struct(fields) => {
                            s.push_str(&format!(
                                "\"{vn}\" => {{\n\
                                 let __fm = __v.as_map()\
                                 .ok_or_else(|| ::serde::Error::expected(\"map\", \"{label}\"))?;\n\
                                 Ok({name}::{vn} {{\n"
                            ));
                            for f in fields {
                                s.push_str(&field_expr(&label, f));
                            }
                            s.push_str("})\n}\n");
                        }
                    }
                }
                s.push_str(&format!(
                    "__other => Err(::serde::Error::unknown_variant(\"{name}\", __other)),\n\
                     }}\n}}\n"
                ));
            }
            s.push_str(&format!(
                "_ => Err(::serde::Error::expected(\
                 \"variant string or single-key map\", \"{name}\")),\n}}\n"
            ));
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__content: &::serde::Content) -> \
         ::core::result::Result<Self, ::serde::Error> {{\n{body}}}\n}}\n"
    )
}
