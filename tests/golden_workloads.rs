//! Golden-trace regression: the twins' instruction streams are part of
//! the calibration (EXPERIMENTS.md was produced against them). A
//! change to the generator or to the parameter table that alters the
//! streams must show up here as a deliberate golden update, not a
//! silent drift.

use vsv_isa::InstStream;
use vsv_workloads::{spec2k_twins, Generator};

/// FNV-1a over the debug rendering of the first `n` instructions.
fn stream_digest(name: &str, n: usize) -> u64 {
    let params = spec2k_twins()
        .into_iter()
        .find(|p| p.name == name)
        .expect("twin exists");
    let mut g = Generator::new(params);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for _ in 0..n {
        let inst = g.next_inst().expect("infinite");
        for b in format!("{inst:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[test]
fn digests_are_stable_across_construction() {
    // Same twin, two generators: identical digests (determinism).
    assert_eq!(stream_digest("mcf", 5_000), stream_digest("mcf", 5_000));
}

#[test]
fn every_twin_has_a_unique_stream() {
    let mut digests = std::collections::HashMap::new();
    for p in spec2k_twins() {
        let d = stream_digest(p.name, 2_000);
        if let Some(other) = digests.insert(d, p.name) {
            panic!("twins {} and {} generate identical streams", other, p.name);
        }
    }
}

/// The pinned digests. If a generator change is *intended* (e.g. a
/// recalibration), regenerate with:
/// `cargo test -p vsv-repro --test golden_workloads -- --nocapture print_digests --ignored`
/// and update both this table and EXPERIMENTS.md.
#[test]
fn pinned_twin_digests() {
    let pinned = pinned_table();
    for (name, expected) in pinned {
        let got = stream_digest(name, 5_000);
        assert_eq!(
            got, expected,
            "{name}'s instruction stream changed — recalibrate or revert \
             (new digest: {got:#018x})"
        );
    }
}

#[test]
#[ignore = "helper: prints the digest table for updating pinned_table()"]
fn print_digests() {
    for p in spec2k_twins() {
        println!("(\"{}\", {:#018x}),", p.name, stream_digest(p.name, 5_000));
    }
}

#[allow(clippy::vec_init_then_push)]
fn pinned_table() -> Vec<(&'static str, u64)> {
    vec![
        ("ammp", 0x790106007e470b6b),
        ("applu", 0xad9ce18813a0f70f),
        ("apsi", 0xaf5122194f9dd5f7),
        ("art", 0x91b1046d170afaf5),
        ("bzip2", 0x87ac057127259404),
        ("crafty", 0x1ba418f69c9336d2),
        ("eon", 0x5c949e0d663eacb8),
        ("equake", 0x8dfd24cc0ce8cda2),
        ("facerec", 0xe78a9ab7d2264ecc),
        ("fma3d", 0xa60dd1bd4507e3d0),
        ("galgel", 0xd8c287c49c6b0221),
        ("gap", 0xaf3287ae501e48ce),
        ("gcc", 0x7bfb72d9cd632a7d),
        ("gzip", 0xa62402957bb799e1),
        ("lucas", 0xcb5e7ec44f68188b),
        ("mcf", 0xfe54a81ce1876f90),
        ("mesa", 0x89b1170e6e1086cc),
        ("mgrid", 0x1fab3b442cf53aba),
        ("parser", 0x7d02387238a4717a),
        ("perlbmk", 0xf547b6258d5245e7),
        ("sixtrack", 0x3b683c8733ebf75c),
        ("swim", 0x04ecbf7e0c9519ad),
        ("twolf", 0x5760d86b9f8dbecd),
        ("vortex", 0x79a80afde5236ce3),
        ("vpr", 0xb5facc016733a7cb),
        ("wupwise", 0xebeeb62f9ab6f5ee),
    ]
}
