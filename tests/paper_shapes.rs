//! Cross-crate integration tests asserting the paper's *qualitative*
//! results end-to-end: who wins, in which direction, and by roughly
//! what ordering. Quantitative reproduction lives in the `vsv-bench`
//! binaries (see EXPERIMENTS.md); these tests guard the shapes.

use vsv::{Comparison, DownPolicy, Experiment, SystemConfig, UpPolicy};
use vsv_workloads::{twin, WorkloadParams};

fn quick() -> Experiment {
    Experiment {
        warmup_instructions: 30_000,
        instructions: 60_000,
    }
}

/// §6.1: VSV saves significant power on memory-bound programs with
/// bounded performance loss.
#[test]
fn memory_bound_twin_saves_power_with_small_degradation() {
    let e = quick();
    let params = twin("mcf").expect("mcf twin exists");
    let (base, vsv_run, cmp) = e.compare(
        &params,
        SystemConfig::baseline(),
        SystemConfig::vsv_with_fsms(),
    );
    assert!(
        base.mpki > 40.0,
        "mcf twin is very memory bound: {}",
        base.mpki
    );
    assert!(
        cmp.power_saving_pct > 20.0,
        "mcf should save >20% power, got {:.1}%",
        cmp.power_saving_pct
    );
    assert!(
        cmp.perf_degradation_pct < 6.0,
        "mcf degradation bounded, got {:.1}%",
        cmp.perf_degradation_pct
    );
    assert!(vsv_run.mode.low_residency() > 0.3);
}

/// §6.1: programs with MR ≈ 0 neither save power nor lose performance.
#[test]
fn compute_bound_twin_is_untouched() {
    let e = quick();
    let params = twin("crafty").expect("crafty twin exists");
    let (base, _, cmp) = e.compare(
        &params,
        SystemConfig::baseline(),
        SystemConfig::vsv_with_fsms(),
    );
    assert!(base.mpki < 0.5, "crafty twin has ~no L2 misses");
    assert!(
        cmp.power_saving_pct.abs() < 1.0,
        "got {:.1}%",
        cmp.power_saving_pct
    );
    assert!(cmp.perf_degradation_pct.abs() < 1.0);
}

/// Figure 4: the FSMs trade power for performance — less saving, much
/// less degradation than the no-FSM configuration on high-ILP
/// memory-bound programs.
#[test]
fn fsms_reduce_degradation_at_some_power_cost() {
    let e = quick();
    let params = twin("applu").expect("applu twin exists");
    let base = e.run(&params, SystemConfig::baseline());
    let no_fsm = e.run(&params, SystemConfig::vsv_without_fsms());
    let fsm = e.run(&params, SystemConfig::vsv_with_fsms());
    let c_no = Comparison::of(&base, &no_fsm);
    let c_fsm = Comparison::of(&base, &fsm);
    assert!(
        c_fsm.perf_degradation_pct < c_no.perf_degradation_pct,
        "FSMs must reduce degradation: {:.1} vs {:.1}",
        c_fsm.perf_degradation_pct,
        c_no.perf_degradation_pct
    );
    assert!(
        c_fsm.power_saving_pct < c_no.power_saving_pct + 0.5,
        "FSMs cannot save more than always-transitioning: {:.1} vs {:.1}",
        c_fsm.power_saving_pct,
        c_no.power_saving_pct
    );
    assert!(
        c_fsm.power_saving_pct > 5.0,
        "but should retain real savings"
    );
}

/// Figure 5: lower down-thresholds save more power and degrade more.
#[test]
fn down_threshold_orders_power_and_performance() {
    let e = quick();
    let params = twin("ammp").expect("ammp twin exists");
    let base = e.run(&params, SystemConfig::baseline());
    let mut results = Vec::new();
    for down in [
        DownPolicy::Immediate,
        DownPolicy::Monitor {
            threshold: 3,
            period: 10,
        },
        DownPolicy::Monitor {
            threshold: 5,
            period: 10,
        },
    ] {
        let mut cfg = SystemConfig::vsv_with_fsms();
        cfg.vsv.down = down;
        let run = e.run(&params, cfg);
        results.push(Comparison::of(&base, &run));
    }
    // Power: immediate >= t3 >= t5 (small tolerance for noise).
    assert!(results[0].power_saving_pct >= results[1].power_saving_pct - 0.5);
    assert!(results[1].power_saving_pct >= results[2].power_saving_pct - 0.5);
    // Degradation: immediate >= t5.
    assert!(
        results[0].perf_degradation_pct >= results[2].perf_degradation_pct - 0.3,
        "immediate {:.2} vs t5 {:.2}",
        results[0].perf_degradation_pct,
        results[2].perf_degradation_pct
    );
}

/// Figure 6: Last-R saves the most power and degrades the most;
/// First-R the least of both; the monitor sits between.
#[test]
fn up_policy_spectrum_first_monitor_last() {
    let e = quick();
    let params = twin("ammp").expect("ammp twin exists");
    let base = e.run(&params, SystemConfig::baseline());
    let mut res = Vec::new();
    for up in [
        UpPolicy::FirstReturn,
        UpPolicy::Monitor {
            threshold: 3,
            period: 10,
        },
        UpPolicy::LastReturn,
    ] {
        let mut cfg = SystemConfig::vsv_with_fsms();
        cfg.vsv.up = up;
        let run = e.run(&params, cfg);
        res.push(Comparison::of(&base, &run));
    }
    let (first, monitor, last) = (res[0], res[1], res[2]);
    assert!(
        last.power_saving_pct >= monitor.power_saving_pct - 0.5
            && monitor.power_saving_pct >= first.power_saving_pct - 0.5,
        "power must order First<=Monitor<=Last: {:.1} {:.1} {:.1}",
        first.power_saving_pct,
        monitor.power_saving_pct,
        last.power_saving_pct
    );
    assert!(
        last.perf_degradation_pct >= first.perf_degradation_pct - 0.3,
        "Last-R degrades at least as much as First-R: {:.1} vs {:.1}",
        last.perf_degradation_pct,
        first.perf_degradation_pct
    );
}

/// §6.4: Time-Keeping prefetching reduces demand MR on learnable
/// (streaming) twins, shrinking but not eliminating VSV's savings.
#[test]
fn timekeeping_shrinks_but_does_not_remove_savings() {
    let e = Experiment {
        warmup_instructions: 100_000,
        instructions: 200_000,
    };
    let params = twin("applu").expect("applu twin exists");
    let base = e.run(&params, SystemConfig::baseline());
    let base_tk = e.run(&params, SystemConfig::baseline().with_timekeeping(true));
    assert!(
        base_tk.mpki < base.mpki * 0.7,
        "TK must cut applu's demand MR: {:.1} -> {:.1}",
        base.mpki,
        base_tk.mpki
    );
    let vsv_tk = e.run(
        &params,
        SystemConfig::vsv_with_fsms().with_timekeeping(true),
    );
    let cmp_tk = Comparison::of(&base_tk, &vsv_tk);
    let vsv_plain = e.run(&params, SystemConfig::vsv_with_fsms());
    let cmp_plain = Comparison::of(&base, &vsv_plain);
    assert!(
        cmp_tk.power_saving_pct < cmp_plain.power_saving_pct,
        "TK shrinks the opportunity: {:.1} vs {:.1}",
        cmp_tk.power_saving_pct,
        cmp_plain.power_saving_pct
    );
    assert!(
        cmp_tk.power_saving_pct > 0.0,
        "but does not eliminate it: {:.1}",
        cmp_tk.power_saving_pct
    );
}

/// §6.4 / Table 2: Time-Keeping does *not* help the random-access twin
/// (art) — if anything it pollutes.
#[test]
fn timekeeping_does_not_help_random_twin() {
    let e = quick();
    let params = twin("art").expect("art twin exists");
    let base = e.run(&params, SystemConfig::baseline());
    let base_tk = e.run(&params, SystemConfig::baseline().with_timekeeping(true));
    assert!(
        base_tk.mpki > base.mpki * 0.9,
        "TK cannot learn random misses: {:.1} vs {:.1}",
        base.mpki,
        base_tk.mpki
    );
}

/// §4.2: misses caused purely by prefetches never trigger the
/// low-power transition.
#[test]
fn prefetch_only_misses_do_not_engage_vsv() {
    let e = quick();
    // A twin whose *only* far traffic is software prefetches: far loads
    // never execute because coverage is 1.0 and the demand loads all go
    // to the hot set.
    let mut p = WorkloadParams::compute_bound("prefetch-only");
    p.far_fraction = 0.0;
    p.sw_prefetch_coverage = 0.0;
    let run = e.run(&p, SystemConfig::vsv_with_fsms());
    assert!(
        run.mode.down_transitions <= 2,
        "no demand misses → (almost) no transitions, got {}",
        run.mode.down_transitions
    );
}

/// The low-power mode must actually halve the pipeline clock: with VSV
/// engaged, pipeline cycles < elapsed nanoseconds.
#[test]
fn low_mode_halves_the_clock() {
    let e = quick();
    let params = twin("mcf").expect("mcf twin exists");
    let run = e.run(&params, SystemConfig::vsv_with_fsms());
    assert!(
        run.pipeline_cycles < run.elapsed_ns,
        "half-speed epochs must reduce edge count: {} vs {}",
        run.pipeline_cycles,
        run.elapsed_ns
    );
    let base = e.run(&params, SystemConfig::baseline());
    assert_eq!(
        base.pipeline_cycles, base.elapsed_ns,
        "baseline is full speed"
    );
}

/// Energy accounting sanity across the whole stack: VSV burns less
/// energy *and* less average power on a stalled workload, and both
/// runs account energy > 0 for every major component.
#[test]
fn energy_accounting_is_consistent() {
    let e = quick();
    let params = twin("ammp").expect("ammp twin exists");
    let base = e.run(&params, SystemConfig::baseline());
    let vsv_run = e.run(&params, SystemConfig::vsv_with_fsms());
    assert!(vsv_run.energy_pj > 0.0 && base.energy_pj > 0.0);
    assert!(vsv_run.avg_power_w < base.avg_power_w);
    // Energy should not fall faster than power (time grew).
    let energy_saving = 1.0 - vsv_run.energy_pj / base.energy_pj;
    let power_saving = 1.0 - vsv_run.avg_power_w / base.avg_power_w;
    assert!(energy_saving <= power_saving + 1e-9);
}

/// The issue histogram must be internally consistent with the cycle
/// counters it summarises.
#[test]
fn issue_histogram_is_consistent_with_counters() {
    let e = quick();
    let params = twin("ammp").expect("ammp exists");
    let r = e.run(&params, SystemConfig::baseline());
    let h = r.issue_histogram;
    assert_eq!(h.cycles(), r.pipeline_cycles, "every cycle is bucketed");
    assert_eq!(
        h.buckets[0], r.zero_issue_cycles,
        "bucket 0 is the zero-issue count"
    );
    let issued_from_hist: u64 = h
        .buckets
        .iter()
        .enumerate()
        .map(|(n, c)| n as u64 * c)
        .sum();
    // Bucket 8 clamps; with an 8-wide core nothing exceeds it, so the
    // weighted sum equals total issues.
    assert!(
        issued_from_hist >= r.instructions,
        "all committed insts were issued"
    );
}

/// A full System run's recorded trace renders to a timeline SVG with
/// every transition state present.
#[test]
fn trace_renders_to_timeline_svg() {
    use vsv::{Mode, System};
    use vsv_workloads::Generator;

    let params = twin("ammp").expect("ammp exists");
    let mut sys = System::new(SystemConfig::vsv_with_fsms(), Generator::new(params));
    sys.enable_trace(3_000);
    sys.warm_up(20_000);
    let _ = sys.run(20_000);
    let trace = sys.take_trace().expect("tracing on");
    let modes: std::collections::HashSet<Mode> = trace.iter().map(|s| s.mode).collect();
    for m in [Mode::High, Mode::DownDistribute, Mode::RampDown, Mode::Low] {
        assert!(modes.contains(&m), "missing {m:?} in {}", trace.strip());
    }
    let svg = vsv_viz::TimelineChart::new(&trace).render();
    assert!(svg.contains("<polyline"), "voltage curve present");
    assert!(svg.matches("<rect").count() > 4, "mode bands present");
}
