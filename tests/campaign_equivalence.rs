//! Integration tests for the campaign contract (ISSUE: fleet-scale
//! sweep campaigns): a grid partitioned into K interleaved shards,
//! each run as an ordinary checkpointed sweep process, stream-merged
//! back into a report **bit-identical** to the single-process
//! `Sweep::report` — for any K (including K that does not divide the
//! cell count), any worker count, fast-forward on or off, and with
//! failed cells surfacing exactly as they do in-process.
//!
//! Host wall-clock is the one non-deterministic field, so byte
//! comparisons run both sides through a textual `"wall_ns": N -> 0`
//! rewrite rather than a parse→re-serialize round trip (which would
//! mask encoder drift).

use std::path::{Path, PathBuf};

use vsv::{
    Campaign, Experiment, FaultKind, JobOutcome, MergeOptions, Sweep, SweepReport, SystemConfig,
};
use vsv_workloads::{twin, WorkloadParams};

fn twins(names: &[&str]) -> Vec<WorkloadParams> {
    names
        .iter()
        .map(|n| twin(n).unwrap_or_else(|| panic!("twin {n} exists")))
        .collect()
}

/// The 6-cell test grid: three twins × {baseline, VSV}, params-major.
/// `fault` optionally poisons one global cell with an injected
/// deadlock; `ff` toggles the quiescent-stall fast-forward.
fn grid(ff: bool, fault: Option<usize>) -> Sweep {
    let e = Experiment {
        warmup_instructions: 1_000,
        instructions: 3_000,
    };
    let params = twins(&["gzip", "ammp", "mcf"]);
    let configs = [
        SystemConfig::baseline().with_fast_forward(ff),
        SystemConfig::vsv_with_fsms().with_fast_forward(ff),
    ];
    let mut sweep = Sweep::over_grid(e, &params, &configs);
    if let Some(cell) = fault {
        sweep.jobs_mut()[cell].config.inject_fault = Some(FaultKind::Deadlock);
    }
    sweep
}

/// Rewrites every `"wall_ns": <digits>` value to `0`, leaving all
/// other bytes untouched. Workload names never contain the pattern,
/// so this is safe on the report wire format.
fn zero_wall(json: &str) -> String {
    const KEY: &str = "\"wall_ns\": ";
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(pos) = rest.find(KEY) {
        let (head, tail) = rest.split_at(pos + KEY.len());
        out.push_str(head);
        out.push('0');
        let digits = tail
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(tail.len());
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

/// FNV-1a — the same digest `tests/sweep_report_golden.rs` pins.
fn digest(json: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn strip_wall_clock(report: &mut SweepReport) {
    report.wall_ns = 0;
    for r in &mut report.records {
        r.wall_ns = 0;
    }
}

/// A fresh shard-file directory in the system temp dir.
fn shard_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vsv-campaign-eq-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create shard dir");
    dir
}

/// Runs every shard of a K-way campaign (workers=1 each, as separate
/// processes would) and returns the shard file paths in shard order.
fn run_shards(campaign: &Campaign, dir: &Path) -> Vec<PathBuf> {
    (0..campaign.shards())
        .map(|s| {
            let path = dir.join(format!("shard-{s}.jsonl"));
            campaign
                .run_shard(s, 1, &path, true)
                .unwrap_or_else(|e| panic!("shard {s} runs: {e}"));
            path
        })
        .collect()
}

#[test]
fn merged_campaign_is_bit_identical_to_the_single_process_report() {
    for ff in [true, false] {
        // One single-process reference per (ff, workers) pair.
        for workers in [1_usize, 4] {
            let mut reference = grid(ff, None).report(workers);
            strip_wall_clock(&mut reference);
            let reference_json =
                serde_json::to_string_pretty(&reference).expect("reference serializes");

            // K=3 divides the 6-cell grid; K=5 does not (shard 0 owns
            // cells {0,5}, shards 1–4 own one cell each).
            for shards in [1_usize, 2, 3, 5] {
                let dir = shard_dir(&format!("ff{ff}-w{workers}-k{shards}"));
                let campaign = Campaign::new(grid(ff, None), shards).expect("valid campaign");
                let inputs = run_shards(&campaign, &dir);

                let (merged_json, summary) = campaign
                    .merge_to_string(&inputs, &MergeOptions { workers })
                    .expect("merge succeeds");
                assert_eq!(summary.cells, 6);
                assert_eq!(summary.failed, 0);
                assert_eq!(summary.shards, shards);

                // Byte-level identity (wall-clock zeroed textually on
                // both sides) and therefore digest identity.
                let merged_zeroed = zero_wall(&merged_json);
                let reference_zeroed = zero_wall(&reference_json);
                assert_eq!(
                    merged_zeroed, reference_zeroed,
                    "ff={ff} workers={workers} K={shards}: merged bytes diverge"
                );
                assert_eq!(digest(&merged_zeroed), digest(&reference_zeroed));

                // Typed identity: the parsed report (records *and*
                // aggregated metrics) matches the in-process fold.
                let mut parsed: SweepReport =
                    serde_json::from_str(&merged_json).expect("merged report parses");
                strip_wall_clock(&mut parsed);
                assert_eq!(parsed, reference);
                assert_eq!(parsed.metrics, reference.metrics);

                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}

#[test]
fn failed_cells_surface_identically_through_a_campaign() {
    // Cell 2 (ammp under baseline, params-major) deadlocks. The
    // single-process sweep and the 3-shard campaign must agree on
    // the failure record byte-for-byte.
    const FAULTY_CELL: usize = 2;
    let mut reference = grid(true, Some(FAULTY_CELL)).report(2);
    strip_wall_clock(&mut reference);
    assert_eq!(reference.failed_jobs(), 1);

    let dir = shard_dir("fault");
    let campaign = Campaign::new(grid(true, Some(FAULTY_CELL)), 3).expect("valid campaign");
    let inputs = run_shards(&campaign, &dir);

    let (merged_json, summary) = campaign
        .merge_to_string(&inputs, &MergeOptions { workers: 2 })
        .expect("merge succeeds despite the failed cell");
    assert_eq!(
        summary.failed, 1,
        "merge reports the failure for exit codes"
    );

    let reference_json = serde_json::to_string_pretty(&reference).expect("serializes");
    assert_eq!(zero_wall(&merged_json), zero_wall(&reference_json));

    let mut parsed: SweepReport = serde_json::from_str(&merged_json).expect("parses");
    strip_wall_clock(&mut parsed);
    let failed = parsed.failures().next().expect("one failure");
    assert_eq!(failed.job, FAULTY_CELL);
    assert_eq!(failed.workload, "ammp");
    match &failed.outcome {
        JobOutcome::Failed { error, .. } => assert_eq!(error.kind(), "deadlock"),
        JobOutcome::Ok(_) => unreachable!("cell {FAULTY_CELL} failed"),
    }
    assert_eq!(
        parsed.failures().next().map(|r| &r.outcome),
        reference.failures().next().map(|r| &r.outcome),
        "the typed failure is preserved through the shard wire format"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rerunning_a_finished_shard_is_idempotent() {
    // A finalized shard file is itself a complete checkpoint: a
    // second (non-fresh) run re-simulates nothing and rewrites the
    // identical bytes — including the cached wall-clock fields.
    let dir = shard_dir("idempotent");
    let campaign = Campaign::new(grid(true, None), 2).expect("valid campaign");
    let path = dir.join("shard-0.jsonl");
    campaign.run_shard(0, 1, &path, true).expect("first run");
    let first = std::fs::read_to_string(&path).expect("shard file");
    campaign.run_shard(0, 1, &path, false).expect("resume run");
    let second = std::fs::read_to_string(&path).expect("shard file");
    assert_eq!(first, second, "resume of a complete shard is a no-op");
    let _ = std::fs::remove_dir_all(&dir);
}
