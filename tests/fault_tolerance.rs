//! Integration tests for the fault-tolerant sweep contract
//! (ISSUE: typed simulation errors, per-job panic isolation, and
//! crash-recoverable checkpoint/resume).
//!
//! Pins the two acceptance criteria:
//!
//! 1. a sweep with one injected-deadlock cell completes every other
//!    cell and reports exactly one `Failed` record, in grid order;
//! 2. an interrupted checkpointed sweep resumed via `Sweep::resume`
//!    produces a `SweepReport` bit-identical (wall-clock fields
//!    zeroed) to an uninterrupted run — including when the
//!    interruption left a half-written final line.

use std::path::PathBuf;

use vsv::{Experiment, FaultKind, Sweep, SweepReport, SystemConfig};
use vsv_workloads::{twin, WorkloadParams};

fn quick() -> Experiment {
    Experiment {
        warmup_instructions: 1_000,
        instructions: 3_000,
    }
}

fn twins(names: &[&str]) -> Vec<WorkloadParams> {
    names
        .iter()
        .map(|n| twin(n).unwrap_or_else(|| panic!("twin {n} exists")))
        .collect()
}

/// Host timing is the only non-deterministic part of a report.
fn strip_wall_clock(report: &mut SweepReport) {
    report.wall_ns = 0;
    for r in &mut report.records {
        r.wall_ns = 0;
    }
}

/// A fresh path in the system temp dir (tests run in one process, so
/// a per-test name suffices — no timestamps needed).
fn temp_checkpoint(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("vsv-fault-tolerance-{name}.jsonl"));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn injected_deadlock_is_a_typed_error_not_an_abort() {
    let e = quick();
    let p = twin("gzip").expect("gzip exists");
    let cfg = SystemConfig::baseline().with_injected_fault(FaultKind::Deadlock);
    let err = e.try_run(&p, cfg).expect_err("fault armed");
    assert_eq!(err.kind(), "deadlock");
    let rendered = err.to_string();
    assert!(rendered.contains("deadlock"), "{rendered}");
    // The diagnostic carries the recent mode-transition ring.
    assert!(rendered.contains("recent mode transitions"), "{rendered}");
}

#[test]
fn budget_exhaustion_is_a_typed_error() {
    let e = quick();
    let p = twin("gzip").expect("gzip exists");
    let cfg = SystemConfig::baseline().with_max_sim_ns(Some(50));
    let err = e.try_run(&p, cfg).expect_err("budget too small");
    assert_eq!(err.kind(), "budget-exhausted");
    assert!(err.to_string().contains("50"), "{err}");
}

#[test]
fn one_poisoned_cell_leaves_the_other_records_ok_and_in_grid_order() {
    let e = quick();
    let params = twins(&["gzip", "mcf", "ammp"]);
    let configs = [
        SystemConfig::baseline(),
        SystemConfig::vsv_with_fsms().with_injected_fault(FaultKind::Panic),
    ];
    // Grid order is params-major: cell 3 = mcf under the poisoned
    // VSV config.
    let mut sweep = Sweep::over_grid(e, &params, &configs);
    for (i, job) in sweep.jobs_mut().iter_mut().enumerate() {
        if i != 3 {
            job.config.inject_fault = None;
        }
    }
    let report = sweep.report(4);
    assert_eq!(report.jobs, 6);
    assert_eq!(report.records.len(), 6);
    assert_eq!(report.failed_jobs(), 1);
    for (i, r) in report.records.iter().enumerate() {
        assert_eq!(r.job, i, "records must stay in grid order");
        assert_eq!(r.outcome.is_ok(), i != 3, "only cell 3 fails");
    }
    let failed = report.failures().next().expect("one failure");
    assert_eq!(failed.workload, "mcf");
    let err = failed.outcome.error().expect("failed cell has an error");
    assert_eq!(err.kind(), "panic");
    assert!(
        err.to_string().contains("injected panic fault"),
        "panic payload is preserved: {err}"
    );
    match &failed.outcome {
        vsv::JobOutcome::Failed { attempts, .. } => {
            assert_eq!(*attempts, 2, "panicking cells are retried once");
        }
        vsv::JobOutcome::Ok(_) => unreachable!("cell 3 failed"),
    }
}

#[test]
fn failed_sweep_matches_the_healthy_sweep_on_every_other_cell() {
    let e = quick();
    let params = twins(&["gzip", "mcf"]);
    let configs = [SystemConfig::baseline(), SystemConfig::vsv_with_fsms()];
    let healthy = Sweep::over_grid(e, &params, &configs).report(2);

    let mut sweep = Sweep::over_grid(e, &params, &configs);
    sweep.jobs_mut()[0].config.inject_fault = Some(FaultKind::Deadlock);
    let faulty = sweep.report(2);

    assert_eq!(faulty.failed_jobs(), 1);
    for (h, f) in healthy.records.iter().zip(&faulty.records).skip(1) {
        assert_eq!(
            h.outcome, f.outcome,
            "healthy cells are bit-identical to the all-success sweep"
        );
    }
}

#[test]
fn checkpoint_resume_after_truncation_is_bit_identical() {
    let e = quick();
    let params = twins(&["gzip", "mcf"]);
    let configs = [SystemConfig::baseline(), SystemConfig::vsv_with_fsms()];
    let sweep = Sweep::over_grid(e, &params, &configs);
    let path = temp_checkpoint("truncation");

    let mut uninterrupted = sweep
        .report_with_checkpoint(2, &path)
        .expect("checkpointed run succeeds");
    strip_wall_clock(&mut uninterrupted);

    let full = std::fs::read_to_string(&path).expect("checkpoint written");
    let lines: Vec<&str> = full.lines().collect();
    assert_eq!(lines.len(), 5, "header + 4 records: {full}");

    // Simulate a kill: drop the last two complete records and leave a
    // half-written line behind.
    let half = &lines[2][..lines[2].len() / 2];
    let truncated = format!("{}\n{}\n{half}", lines[0], lines[1]);
    std::fs::write(&path, truncated).expect("rewrite checkpoint");

    let mut resumed = sweep.resume(2, &path).expect("resume succeeds");
    strip_wall_clock(&mut resumed);
    assert_eq!(
        resumed, uninterrupted,
        "resumed report must be bit-identical to the uninterrupted run"
    );

    // The repaired checkpoint is complete again: a second resume runs
    // nothing and still reproduces the report.
    let mut resumed_again = sweep.resume(2, &path).expect("second resume succeeds");
    strip_wall_clock(&mut resumed_again);
    assert_eq!(resumed_again, uninterrupted);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_of_missing_file_degenerates_to_a_fresh_run() {
    let e = quick();
    let params = twins(&["gzip"]);
    let configs = [SystemConfig::baseline(), SystemConfig::vsv_with_fsms()];
    let sweep = Sweep::over_grid(e, &params, &configs);
    let path = temp_checkpoint("fresh");

    let mut resumed = sweep.resume(2, &path).expect("fresh resume succeeds");
    strip_wall_clock(&mut resumed);
    let mut plain = sweep.report(2);
    strip_wall_clock(&mut plain);
    assert_eq!(resumed, plain);
    // ... and it wrote a complete checkpoint while doing so.
    let written = std::fs::read_to_string(&path).expect("checkpoint created");
    assert_eq!(written.lines().count(), 3, "header + 2 records");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_for_a_different_grid_is_rejected() {
    let e = quick();
    let params = twins(&["gzip"]);
    let path = temp_checkpoint("digest-mismatch");

    let original = Sweep::over_grid(e, &params, &[SystemConfig::baseline()]);
    original
        .report_with_checkpoint(1, &path)
        .expect("checkpointed run succeeds");

    // Same shape, different configuration: the v4 header's grid
    // summary catches the divergence up front, before any per-record
    // digest check, and names the grid (not a job index).
    let other = Sweep::over_grid(e, &params, &[SystemConfig::vsv_with_fsms()]);
    let err = other.resume(1, &path).expect_err("grid mismatch");
    assert!(
        matches!(err, vsv::CheckpointError::GridMismatch { .. }),
        "{err}"
    );

    // A tampered record line still trips the per-record digest check:
    // the header matches (same grid), but the cached cell does not.
    let full = std::fs::read_to_string(&path).expect("checkpoint exists");
    let mut lines: Vec<String> = full.lines().map(str::to_owned).collect();
    let expected = vsv::config_digest(&SystemConfig::baseline());
    assert!(lines[1].contains(&expected), "record line carries digest");
    lines[1] = lines[1].replace(&expected, "deadbeefdeadbeef");
    std::fs::write(&path, lines.join("\n")).expect("rewrite checkpoint");
    let err = original.resume(1, &path).expect_err("digest mismatch");
    assert!(
        matches!(err, vsv::CheckpointError::DigestMismatch { job: 0, .. }),
        "{err}"
    );
    // Restore the intact checkpoint for the scale check below.
    original
        .report_with_checkpoint(1, &path)
        .expect("rewrite intact checkpoint");

    // A different experiment scale is caught by the header.
    let bigger = Experiment {
        warmup_instructions: 2_000,
        instructions: 3_000,
    };
    let rescaled = Sweep::over_grid(bigger, &params, &[SystemConfig::baseline()]);
    let err = rescaled.resume(1, &path).expect_err("header mismatch");
    assert!(
        matches!(err, vsv::CheckpointError::HeaderMismatch { .. }),
        "{err}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn failed_cells_are_checkpointed_and_survive_resume() {
    let e = quick();
    let params = twins(&["gzip", "mcf"]);
    let configs = [SystemConfig::baseline(), SystemConfig::vsv_with_fsms()];
    let path = temp_checkpoint("failed-cells");

    let mut sweep = Sweep::over_grid(e, &params, &configs);
    sweep.jobs_mut()[1].config.inject_fault = Some(FaultKind::Deadlock);
    let mut first = sweep
        .report_with_checkpoint(2, &path)
        .expect("checkpointed run completes despite the failure");
    strip_wall_clock(&mut first);
    assert_eq!(first.failed_jobs(), 1);

    // Resume re-runs nothing: the failure record was cached too.
    let mut resumed = sweep.resume(2, &path).expect("resume succeeds");
    strip_wall_clock(&mut resumed);
    assert_eq!(resumed, first);
    let _ = std::fs::remove_file(&path);
}
