//! Property tests for the continuous V/f power model
//! ([`VoltageCurve`]) and the operating-point ladder
//! ([`VoltageLadder`]) against closed-form invariants: monotonicity of
//! frequency, dynamic power and leakage in the supply voltage; exact
//! agreement with the legacy two-rail constants at VDDH/VDDL; and
//! ladder geometry that never leaves the calibrated range. Each loop
//! draws voltages (and ladder shapes) from a seeded xorshift generator
//! so failures replay deterministically — print the loop's seed and
//! iteration to reproduce.

use vsv_power::{TechParams, VoltageCurve, VoltageLadder, MAX_LADDER_DEPTH};

/// Deterministic xorshift64* generator — no external crates, stable
/// across platforms.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `[lo, hi)`.
    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// Uniform draw in `1..=hi`.
    fn depth(&mut self, hi: usize) -> usize {
        1 + (self.next_u64() as usize) % hi
    }
}

const ITERATIONS: usize = 2_000;
const SEED: u64 = 0x5eed_1add_e12e_57ab;

fn curve() -> (TechParams, VoltageCurve) {
    let t = TechParams::baseline();
    let c = VoltageCurve::from_tech(&t);
    (t, c)
}

/// Frequency and dynamic power are strictly monotone in V over the
/// calibrated range: more voltage, more speed, more power — for every
/// randomly drawn ordered pair.
#[test]
fn frequency_and_dynamic_power_are_monotone_in_voltage() {
    let (t, c) = curve();
    let mut rng = Rng::new(SEED);
    for i in 0..ITERATIONS {
        let a = rng.in_range(t.vddl, t.vddh);
        let b = rng.in_range(t.vddl, t.vddh);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(
            c.frequency_scale(lo) <= c.frequency_scale(hi),
            "iteration {i}: f({lo}) > f({hi})"
        );
        assert!(
            c.dynamic_energy_scale(lo) <= c.dynamic_energy_scale(hi),
            "iteration {i}: e({lo}) > e({hi})"
        );
        assert!(
            c.dynamic_power_scale(lo) <= c.dynamic_power_scale(hi),
            "iteration {i}: p({lo}) > p({hi})"
        );
        // The clock can only get slower (a longer period) as V drops.
        assert!(
            c.clock_period_ns(lo) >= c.clock_period_ns(hi),
            "iteration {i}: period({lo}) < period({hi})"
        );
    }
}

/// Leakage strictly decreases as the supply drops: for every drawn
/// pair with `lo < hi`, `leak(lo) < leak(hi)` — the exponential law
/// has no flat spots.
#[test]
fn leakage_strictly_decreases_as_voltage_drops() {
    let (t, c) = curve();
    let mut rng = Rng::new(SEED ^ 0xbeef);
    for i in 0..ITERATIONS {
        let a = rng.in_range(t.vddl, t.vddh);
        let b = rng.in_range(t.vddl, t.vddh);
        if a == b {
            continue;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        assert!(
            c.leakage_scale(lo) < c.leakage_scale(hi),
            "iteration {i}: leak({lo}) >= leak({hi})"
        );
        // And the scale never leaves (0, 1] on the calibrated range.
        let s = c.leakage_scale(lo);
        assert!(s > 0.0 && s <= 1.0, "iteration {i}: leak({lo}) = {s}");
    }
}

/// The rails sample the continuous model *exactly* — bitwise, not just
/// approximately: frequency 1.0 / 0.5, the legacy `(V/VDDH)²` dynamic
/// energy-per-op constants, the cubic leakage anchor, the 1 ns / 2 ns
/// clock periods. This is the calibration contract that makes the
/// two-rail paper configuration a special case rather than a parallel
/// path.
#[test]
fn rails_sample_the_curve_at_the_legacy_constants() {
    let (t, c) = curve();
    assert_eq!(c.frequency_scale(t.vddh), 1.0);
    assert!((c.frequency_scale(t.vddl) - 0.5).abs() < 1e-12);
    assert_eq!(c.clock_period_ns(t.vddh), t.full_clock_period_ns);
    assert_eq!(c.clock_period_ns(t.vddl), 2 * t.full_clock_period_ns);
    // Energy per op: the identical expression, so bitwise equality.
    assert_eq!(c.dynamic_energy_scale(t.vddh), t.energy_scale(t.vddh));
    assert_eq!(c.dynamic_energy_scale(t.vddl), t.energy_scale(t.vddl));
    assert_eq!(c.dynamic_energy_scale(t.vddh), 1.0);
    assert_eq!(c.leakage_scale(t.vddh), 1.0);
    let cubic_anchor = (t.vddl / t.vddh).powi(3);
    assert!((c.leakage_scale(t.vddl) - cubic_anchor).abs() < 1e-12);
}

/// Every level of every uniform ladder stays inside `[VDDL, VDDH]`,
/// descends strictly, and pins the rails as exact endpoints; the
/// per-step geometry partitions the full swing (energy shares sum to
/// exactly 1 within float tolerance, ramp durations to at least the
/// full-swing ramp).
#[test]
fn uniform_ladder_interpolation_never_leaves_the_rails() {
    let t = TechParams::baseline();
    let mut rng = Rng::new(SEED ^ 0x1adde2);
    for i in 0..ITERATIONS {
        let depth = rng.depth(MAX_LADDER_DEPTH);
        let l = VoltageLadder::uniform(&t, depth);
        l.validate(&t).expect("uniform ladders always validate");
        assert_eq!(l.voltage(0), t.vddh, "iteration {i}");
        if depth >= 2 {
            assert_eq!(l.voltage(depth - 1), t.vddl, "iteration {i}");
        }
        for k in 0..depth {
            let v = l.voltage(k);
            assert!(
                (t.vddl..=t.vddh).contains(&v),
                "iteration {i}: level {k} at {v} V escapes the rails"
            );
            if k > 0 {
                assert!(v < l.voltage(k - 1), "iteration {i}: not descending");
            }
        }
        if depth >= 2 {
            let share: f64 = (0..depth - 1).map(|s| l.step_energy_scale(s, &t)).sum();
            assert!(
                (share - 1.0).abs() < 1e-9,
                "iteration {i}: step energies sum to {share}"
            );
            let ramp: u64 = (0..depth - 1).map(|s| l.step_ramp_ns(s, &t)).sum();
            assert!(
                ramp >= t.ramp_time_ns(),
                "iteration {i}: per-step ceil lost ramp time ({ramp} ns)"
            );
        }
    }
}

/// Randomly drawn in-range ladders validate and keep the same
/// invariants as the uniform family — the contract is about the
/// geometry, not the spacing.
#[test]
fn arbitrary_descending_ladders_validate_and_stay_in_range() {
    let t = TechParams::baseline();
    let mut rng = Rng::new(SEED ^ 0xf00d);
    for i in 0..500 {
        let depth = 2 + (rng.next_u64() as usize) % (MAX_LADDER_DEPTH - 1);
        // Draw depth − 2 strictly interior points, sort them
        // descending between the pinned rails.
        let mut interior: Vec<f64> = (0..depth - 2)
            .map(|_| rng.in_range(t.vddl + 1e-6, t.vddh - 1e-6))
            .collect();
        interior.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        interior.dedup();
        let mut points = vec![t.vddh];
        points.extend_from_slice(&interior);
        points.push(t.vddl);
        let l = VoltageLadder::from_points(&points);
        l.validate(&t)
            .unwrap_or_else(|e| panic!("iteration {i}: {e}"));
        let curve = VoltageCurve::from_tech(&t);
        for k in 0..l.depth() {
            let v = l.voltage(k);
            // Every configured point sustains a clock no faster than
            // VDDH's and no slower than VDDL's.
            let period = curve.clock_period_ns(v);
            assert!(
                (t.full_clock_period_ns..=2 * t.full_clock_period_ns).contains(&period),
                "iteration {i}: period {period} at {v} V"
            );
        }
    }
}
