//! Edge cases of the issue-rate monitors (paper §4.2/§4.4) that the
//! unit tests in `crates/vsv/src/fsm.rs` skirt around: exact window
//! expiry, the threshold boundary, and the up-FSM's unconditional
//! sole-miss ramp-up — plus the ladder generalization's controller
//! edges: mid-ramp reversal from two levels down, chained multi-step
//! dives vs. back-to-back single-step decisions, and the degenerate
//! depth-1 ladder.

use vsv::{
    DownFsm, DownPolicy, Experiment, Mode, PolicySpec, SystemConfig, UpFsm, UpPolicy, VsvConfig,
    VsvController,
};
use vsv_mem::VsvSignal;
use vsv_workloads::twin;

// ---------- down-FSM window expiry at exactly 10 cycles ---------------

#[test]
fn down_window_survives_nine_cycles_and_expires_on_the_tenth() {
    let mut f = DownFsm::new(DownPolicy::Monitor {
        threshold: 3,
        period: 10,
    });
    f.arm();
    // Nine issuing cycles: the window is still open.
    for cycle in 0..9 {
        assert!(!f.on_cycle(4), "no trigger on issuing cycle {cycle}");
        assert!(f.is_armed(), "window open after cycle {cycle}");
    }
    assert_eq!(f.expiries(), 0, "not expired after 9 of 10 cycles");
    // The tenth monitored cycle exhausts the window.
    assert!(!f.on_cycle(4));
    assert!(!f.is_armed(), "window closes at exactly 10 cycles");
    assert_eq!(f.expiries(), 1);
    assert_eq!(f.triggers(), 0);
    // And a closed window never fires, even on a long idle run.
    for _ in 0..20 {
        assert!(!f.on_cycle(0));
    }
    assert_eq!(f.triggers(), 0);
}

#[test]
fn down_trigger_on_the_last_window_cycle_still_counts() {
    // A run that completes exactly on the window's final cycle is a
    // trigger, not an expiry: the threshold check precedes the
    // countdown.
    let mut f = DownFsm::new(DownPolicy::Monitor {
        threshold: 3,
        period: 10,
    });
    f.arm();
    for _ in 0..7 {
        assert!(!f.on_cycle(1));
    }
    assert!(!f.on_cycle(0)); // cycle 8: run = 1
    assert!(!f.on_cycle(0)); // cycle 9: run = 2
    assert!(f.on_cycle(0), "run of 3 lands on the 10th cycle");
    assert_eq!(f.triggers(), 1);
    assert_eq!(f.expiries(), 0);
}

// ---------- threshold boundary: 2 vs 3 consecutive zero-issue ---------

#[test]
fn two_zero_issue_cycles_do_not_reach_a_threshold_of_three() {
    let mut f = DownFsm::new(DownPolicy::Monitor {
        threshold: 3,
        period: 10,
    });
    f.arm();
    assert!(!f.on_cycle(0)); // run = 1
    assert!(!f.on_cycle(0)); // run = 2
    assert!(!f.on_cycle(1), "an issuing cycle resets the run");
    // Two more zeros still do not fire...
    assert!(!f.on_cycle(0));
    assert!(!f.on_cycle(0));
    // ...and the third consecutive zero does.
    assert!(f.on_cycle(0));
    assert_eq!(f.triggers(), 1);
}

#[test]
fn threshold_two_fires_where_threshold_three_does_not() {
    // The same trace distinguishes the two thresholds: exactly two
    // consecutive zero-issue cycles, then work returns.
    let trace = [1u32, 0, 0, 1, 1, 1];
    let fires = |threshold| {
        let mut f = DownFsm::new(DownPolicy::Monitor {
            threshold,
            period: 10,
        });
        f.arm();
        trace.iter().any(|&i| f.on_cycle(i))
    };
    assert!(fires(2), "threshold 2 triggers on a 2-cycle idle run");
    assert!(!fires(3), "threshold 3 holds through a 2-cycle idle run");
}

// ---------- up-FSM: sole outstanding miss returns => ramp up ----------

#[test]
fn sole_miss_return_ramps_up_unconditionally() {
    // §4.4: a return that leaves no misses outstanding transitions
    // immediately — there is nothing left to overlap with.
    let mut f = UpFsm::new(UpPolicy::Monitor {
        threshold: 3,
        period: 10,
    });
    assert!(f.on_return(0), "sole return fires with no monitoring");
    assert!(!f.is_armed());
    assert_eq!(f.triggers(), 1);
    assert_eq!(f.expiries(), 0);
}

#[test]
fn sole_miss_return_preempts_an_open_window() {
    // A monitoring window opened by an earlier return (misses still
    // outstanding) is cancelled — not completed — when the last miss
    // returns: the transition happens now.
    let mut f = UpFsm::new(UpPolicy::Monitor {
        threshold: 3,
        period: 10,
    });
    assert!(!f.on_return(2), "misses remain: monitor instead of firing");
    assert!(f.is_armed());
    assert!(!f.on_cycle(0), "idle: the window makes no progress");
    assert!(f.on_return(0), "last return fires regardless of the window");
    assert!(!f.is_armed(), "the pending window is gone");
    assert_eq!(f.triggers(), 1);
    // The dead window cannot fire afterwards.
    for _ in 0..10 {
        assert!(!f.on_cycle(4));
    }
    assert_eq!(f.triggers(), 1);
}

#[test]
fn sole_miss_rule_is_policy_independent_for_monitors() {
    // Whatever the threshold, on_return(0) is unconditional.
    for threshold in [1, 3, 5] {
        let mut f = UpFsm::new(UpPolicy::Monitor {
            threshold,
            period: 10,
        });
        assert!(f.on_return(0), "threshold {threshold}");
    }
}

// ---------- ladder controller edges -----------------------------------

fn detected(at: u64) -> VsvSignal {
    VsvSignal::L2MissDetected {
        demand: true,
        at,
        earliest_return: None,
    }
}

fn returned(at: u64, outstanding: usize) -> VsvSignal {
    VsvSignal::L2MissReturned {
        demand: true,
        at,
        outstanding_demand: outstanding,
    }
}

/// Drives the controller for `ns` ticks with a fixed issue rate and
/// outstanding count; returns the per-nanosecond modes.
fn drive(
    ctrl: &mut VsvController,
    from: u64,
    ns: u64,
    issued: u32,
    outstanding: usize,
) -> Vec<Mode> {
    let mut modes = Vec::new();
    for now in from..from + ns {
        let plan = ctrl.tick(now, outstanding);
        modes.push(ctrl.mode());
        if plan.pipeline_edge {
            ctrl.on_cycle(now, issued);
        }
    }
    modes
}

/// Number of distinct entries into `mode` along a per-nanosecond mode
/// sequence (maximal runs, not total residency).
fn entries(modes: &[Mode], mode: Mode) -> usize {
    let mut n = 0;
    let mut prev = None;
    for &m in modes {
        if m == mode && prev != Some(mode) {
            n += 1;
        }
        prev = Some(m);
    }
    n
}

/// A miss returning while the supply is ramping toward level 2 of a
/// depth-4 ladder reverses the descent mid-flight: the in-flight step
/// completes (the timeline is never abandoned), then the controller
/// climbs back to VDDH without ever touching the ladder's bottom.
#[test]
fn mid_ramp_reversal_two_levels_down_returns_to_high() {
    let cfg = VsvConfig::with_policy(PolicySpec::LadderFsm).with_ladder_depth(4);
    let mut c = VsvController::new(cfg);
    c.observe(&detected(0));
    // Idle pipeline, one outstanding miss: descend step by step until
    // the 1→2 step's ramp is in flight (mode RampDown with the settled
    // level still 1).
    let mut now = 0;
    while !(c.mode() == Mode::RampDown && c.level() == 1) {
        drive(&mut c, now, 1, 0, 1);
        now += 1;
        assert!(now < 100, "never reached the 1→2 ramp");
    }
    assert_eq!(c.stats().down_transitions, 2, "two steps started");
    // The sole outstanding miss returns mid-ramp: reversal.
    c.observe(&returned(now, 0));
    let modes = drive(&mut c, now, 40, 4, 0);
    assert_eq!(*modes.last().expect("nonempty"), Mode::High);
    assert_eq!(c.level(), 0, "settled back at VDDH");
    let stats = c.stats();
    assert_eq!(
        stats.down_transitions, 2,
        "the reversal must not start another down step"
    );
    assert_eq!(
        stats.up_transitions, 2,
        "two up steps climb back from level 2"
    );
    // The interrupted descent still paid for both of its ramps, and
    // the climb pays two more: four quarter-ish steps of the d4
    // ladder's per-step charges.
    let mut total = 0.0;
    c.drain_ramp_scales(|s| total += s);
    assert!(
        (total - 4.0 / 3.0).abs() < 1e-9,
        "4 one-step ramps on the uniform depth-4 ladder, got {total}"
    );
}

/// One `Level(bottom)` decision dives the whole depth-3 ladder as a
/// chained sequence — a single control-distribution phase, then
/// back-to-back ramps — while two independently-decided single-level
/// steps pay the control latency (and the evidence wait) per step.
/// Both routes charge the same total ramp energy: the full swing.
#[test]
fn chained_double_step_outruns_back_to_back_single_steps() {
    // Route A: `always-low` emits one Level(2) on the first tick.
    let mut chained =
        VsvController::new(VsvConfig::with_policy(PolicySpec::AlwaysLow).with_ladder_depth(3));
    let modes = drive(&mut chained, 0, 20, 0, 1);
    // 4 ns distribute (control + clock retiming off full speed), 6 ns
    // ramp, settle at level 1, then the chained step enters its ramp
    // directly: no second distribute phase.
    assert_eq!(modes[0], Mode::DownDistribute);
    assert_eq!(modes[3], Mode::DownDistribute);
    assert_eq!(modes[4], Mode::RampDown);
    assert_eq!(modes[15], Mode::RampDown);
    assert_eq!(modes[16], Mode::Low);
    assert_eq!(chained.level(), 2, "settled at the ladder bottom");
    let a = chained.stats();
    assert_eq!(a.down_transitions, 2);
    // The chained continuation never re-enters a distribute phase:
    // one decision, one distribution.
    assert_eq!(entries(&modes, Mode::DownDistribute), 1);
    assert_eq!(
        a.ns_in_mode[Mode::RampDown.index()],
        12,
        "6 + 6 ns of ramps"
    );

    // Route B: `ladder-fsm` re-earns each step with fresh evidence —
    // two separate decisions, two distribute phases.
    let mut stepped =
        VsvController::new(VsvConfig::with_policy(PolicySpec::LadderFsm).with_ladder_depth(3));
    stepped.observe(&detected(0));
    let mut modes_b = Vec::new();
    let mut settle_b = None;
    for now in 0..60 {
        modes_b.extend(drive(&mut stepped, now, 1, 0, 1));
        if settle_b.is_none() && stepped.level() == 2 {
            settle_b = Some(now);
        }
    }
    let settle_b = settle_b.expect("ladder-fsm reaches the bottom");
    assert!(
        settle_b > 16,
        "independent decisions cannot beat the chained dive (settled at {settle_b} ns)"
    );
    let b = stepped.stats();
    assert_eq!(b.down_transitions, 2);
    assert_eq!(
        entries(&modes_b, Mode::DownDistribute),
        2,
        "each independent decision pays its own control distribution"
    );
    // Same destination, same total charge: two half-swing ramps.
    let (mut ea, mut eb) = (0.0, 0.0);
    chained.drain_ramp_scales(|s| ea += s);
    stepped.drain_ramp_scales(|s| eb += s);
    assert!((ea - 1.0).abs() < 1e-9, "route A charged {ea} of the swing");
    assert!((eb - 1.0).abs() < 1e-9, "route B charged {eb} of the swing");
}

/// On the degenerate depth-1 ladder there is nowhere to go:
/// `ladder-fsm` is exactly `always-high`, from the controller's mode
/// sequence up to a full simulated run.
#[test]
fn depth_1_ladder_fsm_is_identical_to_always_high() {
    // Controller level: same signals, same idle pipeline — never
    // leaves High, never charges a ramp.
    let mut c =
        VsvController::new(VsvConfig::with_policy(PolicySpec::LadderFsm).with_ladder_depth(1));
    c.observe(&detected(0));
    let modes = drive(&mut c, 0, 50, 0, 2);
    assert!(modes.iter().all(|m| *m == Mode::High));
    assert_eq!(c.take_ramps(), 0);
    assert_eq!(c.stats().down_transitions, 0);

    // System level: bit-identical results on a memory-bound twin.
    let params = twin("mcf").expect("twin exists");
    let e = Experiment::quick();
    let ladder = e.run(
        &params,
        SystemConfig::with_policy(PolicySpec::LadderFsm).with_ladder_depth(1),
    );
    let high = e.run(&params, SystemConfig::with_policy(PolicySpec::AlwaysHigh));
    assert_eq!(
        ladder.elapsed_ns, high.elapsed_ns,
        "depth-1 ladder changed the execution time"
    );
    assert_eq!(
        ladder.energy_pj, high.energy_pj,
        "depth-1 ladder changed the energy"
    );
    assert_eq!(ladder.mode, high.mode, "depth-1 ladder left High");
}
