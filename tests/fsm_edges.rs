//! Edge cases of the issue-rate monitors (paper §4.2/§4.4) that the
//! unit tests in `crates/vsv/src/fsm.rs` skirt around: exact window
//! expiry, the threshold boundary, and the up-FSM's unconditional
//! sole-miss ramp-up.

use vsv::{DownFsm, DownPolicy, UpFsm, UpPolicy};

// ---------- down-FSM window expiry at exactly 10 cycles ---------------

#[test]
fn down_window_survives_nine_cycles_and_expires_on_the_tenth() {
    let mut f = DownFsm::new(DownPolicy::Monitor {
        threshold: 3,
        period: 10,
    });
    f.arm();
    // Nine issuing cycles: the window is still open.
    for cycle in 0..9 {
        assert!(!f.on_cycle(4), "no trigger on issuing cycle {cycle}");
        assert!(f.is_armed(), "window open after cycle {cycle}");
    }
    assert_eq!(f.expiries(), 0, "not expired after 9 of 10 cycles");
    // The tenth monitored cycle exhausts the window.
    assert!(!f.on_cycle(4));
    assert!(!f.is_armed(), "window closes at exactly 10 cycles");
    assert_eq!(f.expiries(), 1);
    assert_eq!(f.triggers(), 0);
    // And a closed window never fires, even on a long idle run.
    for _ in 0..20 {
        assert!(!f.on_cycle(0));
    }
    assert_eq!(f.triggers(), 0);
}

#[test]
fn down_trigger_on_the_last_window_cycle_still_counts() {
    // A run that completes exactly on the window's final cycle is a
    // trigger, not an expiry: the threshold check precedes the
    // countdown.
    let mut f = DownFsm::new(DownPolicy::Monitor {
        threshold: 3,
        period: 10,
    });
    f.arm();
    for _ in 0..7 {
        assert!(!f.on_cycle(1));
    }
    assert!(!f.on_cycle(0)); // cycle 8: run = 1
    assert!(!f.on_cycle(0)); // cycle 9: run = 2
    assert!(f.on_cycle(0), "run of 3 lands on the 10th cycle");
    assert_eq!(f.triggers(), 1);
    assert_eq!(f.expiries(), 0);
}

// ---------- threshold boundary: 2 vs 3 consecutive zero-issue ---------

#[test]
fn two_zero_issue_cycles_do_not_reach_a_threshold_of_three() {
    let mut f = DownFsm::new(DownPolicy::Monitor {
        threshold: 3,
        period: 10,
    });
    f.arm();
    assert!(!f.on_cycle(0)); // run = 1
    assert!(!f.on_cycle(0)); // run = 2
    assert!(!f.on_cycle(1), "an issuing cycle resets the run");
    // Two more zeros still do not fire...
    assert!(!f.on_cycle(0));
    assert!(!f.on_cycle(0));
    // ...and the third consecutive zero does.
    assert!(f.on_cycle(0));
    assert_eq!(f.triggers(), 1);
}

#[test]
fn threshold_two_fires_where_threshold_three_does_not() {
    // The same trace distinguishes the two thresholds: exactly two
    // consecutive zero-issue cycles, then work returns.
    let trace = [1u32, 0, 0, 1, 1, 1];
    let fires = |threshold| {
        let mut f = DownFsm::new(DownPolicy::Monitor {
            threshold,
            period: 10,
        });
        f.arm();
        trace.iter().any(|&i| f.on_cycle(i))
    };
    assert!(fires(2), "threshold 2 triggers on a 2-cycle idle run");
    assert!(!fires(3), "threshold 3 holds through a 2-cycle idle run");
}

// ---------- up-FSM: sole outstanding miss returns => ramp up ----------

#[test]
fn sole_miss_return_ramps_up_unconditionally() {
    // §4.4: a return that leaves no misses outstanding transitions
    // immediately — there is nothing left to overlap with.
    let mut f = UpFsm::new(UpPolicy::Monitor {
        threshold: 3,
        period: 10,
    });
    assert!(f.on_return(0), "sole return fires with no monitoring");
    assert!(!f.is_armed());
    assert_eq!(f.triggers(), 1);
    assert_eq!(f.expiries(), 0);
}

#[test]
fn sole_miss_return_preempts_an_open_window() {
    // A monitoring window opened by an earlier return (misses still
    // outstanding) is cancelled — not completed — when the last miss
    // returns: the transition happens now.
    let mut f = UpFsm::new(UpPolicy::Monitor {
        threshold: 3,
        period: 10,
    });
    assert!(!f.on_return(2), "misses remain: monitor instead of firing");
    assert!(f.is_armed());
    assert!(!f.on_cycle(0), "idle: the window makes no progress");
    assert!(f.on_return(0), "last return fires regardless of the window");
    assert!(!f.is_armed(), "the pending window is gone");
    assert_eq!(f.triggers(), 1);
    // The dead window cannot fire afterwards.
    for _ in 0..10 {
        assert!(!f.on_cycle(4));
    }
    assert_eq!(f.triggers(), 1);
}

#[test]
fn sole_miss_rule_is_policy_independent_for_monitors() {
    // Whatever the threshold, on_return(0) is unconditional.
    for threshold in [1, 3, 5] {
        let mut f = UpFsm::new(UpPolicy::Monitor {
            threshold,
            period: 10,
        });
        assert!(f.on_return(0), "threshold {threshold}");
    }
}
