//! End-to-end verification of the Figure 2 / Figure 3 transition
//! timelines through the public `System` API, by single-stepping the
//! nanosecond clock around an isolated L2 miss.

use vsv::{Mode, System, SystemConfig, UpPolicy};
use vsv_isa::{Addr, ArchReg, FnStream, Inst, Pc};

/// One cold far load per 64-instruction lap; everything else is a
/// dependent chain on the loaded value, so the pipeline truly stalls.
fn lonely_miss_stream() -> FnStream<impl FnMut() -> Option<Inst>> {
    let mut i: u64 = 0;
    FnStream::new(move || {
        let n = i;
        i += 1;
        let lap = n / 64;
        let slot = n % 64;
        let pc = Pc(slot * 4);
        Some(match slot {
            0 => Inst::load(pc, ArchReg::int(1), Addr(0x1000_0000 + lap * 4096)),
            _ => Inst::alu(pc, ArchReg::int(1), &[ArchReg::int(1)]),
        })
    })
}

/// Records (time, mode) changes over `ns` single-steps.
fn trajectory(
    sys: &mut System<FnStream<impl FnMut() -> Option<Inst>>>,
    ns: u64,
) -> Vec<(u64, Mode)> {
    let mut out = vec![(sys.now(), sys.controller().mode())];
    for _ in 0..ns {
        sys.step_ns();
        let m = sys.controller().mode();
        if m != out.last().expect("nonempty").1 {
            out.push((sys.now(), m));
        }
    }
    out
}

#[test]
fn down_transition_walks_distribute_then_ramp_then_low() {
    let mut cfg = SystemConfig::vsv_with_fsms();
    cfg.vsv.up = UpPolicy::LastReturn;
    let mut sys = System::new(cfg, lonely_miss_stream());
    sys.warm_up(1_000);
    let traj = trajectory(&mut sys, 2_000);

    // Find a High → DownDistribute → RampDown → Low run.
    let modes: Vec<Mode> = traj.iter().map(|(_, m)| *m).collect();
    let times: Vec<u64> = traj.iter().map(|(t, _)| *t).collect();
    let mut found = false;
    for w in 0..modes.len().saturating_sub(3) {
        if modes[w] == Mode::High
            && modes[w + 1] == Mode::DownDistribute
            && modes[w + 2] == Mode::RampDown
            && modes[w + 3] == Mode::Low
        {
            // Figure 2: 4 ns of distribution, 12 ns of ramp.
            assert_eq!(times[w + 2] - times[w + 1], 4, "ctrl+tree distribution");
            assert_eq!(times[w + 3] - times[w + 2], 12, "VDD ramp down");
            found = true;
            break;
        }
    }
    assert!(found, "no complete down transition observed in {modes:?}");
}

#[test]
fn up_transition_walks_distribute_then_ramp_then_high() {
    let mut cfg = SystemConfig::vsv_with_fsms();
    cfg.vsv.up = UpPolicy::LastReturn;
    let mut sys = System::new(cfg, lonely_miss_stream());
    sys.warm_up(1_000);
    let traj = trajectory(&mut sys, 2_000);

    let modes: Vec<Mode> = traj.iter().map(|(_, m)| *m).collect();
    let times: Vec<u64> = traj.iter().map(|(t, _)| *t).collect();
    let mut found = false;
    for w in 0..modes.len().saturating_sub(3) {
        if modes[w] == Mode::Low
            && modes[w + 1] == Mode::UpDistribute
            && modes[w + 2] == Mode::RampUp
            && modes[w + 3] == Mode::High
        {
            // Figure 3: 2 ns of distribution, 12 ns of ramp with the
            // fast-clock distribution overlapped in its last 2 ns.
            assert_eq!(times[w + 2] - times[w + 1], 2, "ctrl distribution");
            assert_eq!(times[w + 3] - times[w + 2], 12, "VDD ramp up");
            found = true;
            break;
        }
    }
    assert!(found, "no complete up transition observed in {modes:?}");
}

#[test]
fn miss_epochs_recur_every_lap() {
    let mut cfg = SystemConfig::vsv_with_fsms();
    cfg.vsv.up = UpPolicy::LastReturn;
    let mut sys = System::new(cfg, lonely_miss_stream());
    sys.warm_up(1_000);
    let traj = trajectory(&mut sys, 4_000);
    let lows = traj.iter().filter(|(_, m)| *m == Mode::Low).count();
    assert!(lows >= 3, "expected repeated low-power epochs, got {lows}");
}
