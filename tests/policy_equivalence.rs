//! Cross-policy guarantees for the pluggable DVS policy layer:
//!
//! * `PolicySpec::DualFsm` is the paper's controller — selecting it
//!   through the policy plumbing is bit-identical to the legacy
//!   `SystemConfig::vsv_with_fsms()` constructor (whose behaviour is
//!   itself pinned by the golden/determinism suites, unchanged by the
//!   policy refactor).
//! * `PolicySpec::ImmediateDown` reproduces the FSM-free controller
//!   (`vsv_without_fsms`) exactly, through an independent code path.
//! * Every built-in policy is fast-forward-exact: quiescent-stall
//!   skipping changes nothing, per nanosecond.
//! * `AlwaysHigh` never transitions, so its slowdown is exactly zero.
//! * On a memory-bound workload whose misses overlap real ILP, the
//!   energy-savings ordering `OracleDown >= DualFsm >= ImmediateDown`
//!   holds: clairvoyance beats the heuristic FSMs, and the FSMs beat
//!   diving on every miss (each immediate round trip pays 2x66 nJ of
//!   ramp energy plus the level-converter tax on a still-busy
//!   pipeline).

use vsv::{Comparison, Experiment, ModeTrace, PolicySpec, RunResult, System, SystemConfig};
use vsv_workloads::{twin, AccessPattern, Generator, WorkloadParams};

const TRACE_CAP: usize = 1 << 16;

/// Twins spanning memory-bound (mcf, art, ammp) to compute-bound
/// (gzip, mesa) behaviour.
const TWIN_MIX: [&str; 5] = ["mcf", "art", "ammp", "gzip", "mesa"];

/// A memory-bound workload whose L2 misses are mostly independent of
/// the surrounding computation (low `miss_dependency`) and overlap
/// eight concurrent dependency chains, so the pipeline keeps issuing
/// through much of each miss. This is the regime where diving on every
/// miss (`ImmediateDown`) is counterproductive and the paper's FSMs
/// pay off — the workload the pinned ordering test runs on.
fn ilp_covered_misses() -> WorkloadParams {
    let mut p = WorkloadParams::compute_bound("ilp-covered-misses");
    p.working_set_bytes = 32 * 1024 * 1024;
    p.mem_fraction = 0.35;
    p.far_fraction = 0.30;
    p.pattern = AccessPattern::PermutationChase;
    p.miss_dependency = 0.3;
    p.chase_dependency = 0.3;
    p.ilp_chains = 8;
    p.sw_prefetch_coverage = 0.0;
    p
}

fn run(params: &WorkloadParams, cfg: SystemConfig) -> RunResult {
    Experiment::quick().run(params, cfg)
}

/// Runs with tracing on and the given fast-forward setting.
fn run_traced(
    params: WorkloadParams,
    cfg: SystemConfig,
    fast_forward: bool,
) -> (RunResult, ModeTrace) {
    let e = Experiment::quick();
    let mut sys = System::new(cfg.with_fast_forward(fast_forward), Generator::new(params));
    sys.set_workload_name(params.name);
    sys.enable_trace(TRACE_CAP);
    sys.warm_up(e.warmup_instructions);
    let result = sys.run(e.instructions);
    let trace = sys.take_trace().expect("tracing was on");
    (result, trace)
}

fn savings_pct(base: &RunResult, run: &RunResult) -> f64 {
    100.0 * (base.energy_pj - run.energy_pj) / base.energy_pj
}

/// Selecting `DualFsm` through the policy plumbing is the paper's
/// controller, bit for bit.
#[test]
fn dual_fsm_policy_is_bit_identical_to_the_legacy_constructor() {
    for name in TWIN_MIX {
        let params = twin(name).expect("twin exists");
        let legacy = run(&params, SystemConfig::vsv_with_fsms());
        let policy = run(&params, SystemConfig::with_policy(PolicySpec::DualFsm));
        assert_eq!(
            legacy, policy,
            "DualFsm diverged from vsv_with_fsms on {name}"
        );
    }
}

/// `ImmediateDown` reproduces the FSM-free controller exactly.
#[test]
fn immediate_down_policy_matches_the_fsm_free_controller() {
    for name in TWIN_MIX {
        let params = twin(name).expect("twin exists");
        let legacy = run(&params, SystemConfig::vsv_without_fsms());
        let policy = run(
            &params,
            SystemConfig::with_policy(PolicySpec::ImmediateDown),
        );
        assert_eq!(
            legacy, policy,
            "ImmediateDown diverged from vsv_without_fsms on {name}"
        );
    }
}

/// Every built-in policy is exact under quiescent-stall fast-forward:
/// identical results and identical per-nanosecond mode traces.
#[test]
fn every_policy_is_fast_forward_exact() {
    let mut workloads: Vec<WorkloadParams> = ["mcf", "gzip"]
        .iter()
        .map(|n| twin(n).expect("twin exists"))
        .collect();
    workloads.push(ilp_covered_misses());
    for params in workloads {
        for spec in PolicySpec::ALL {
            let cfg = SystemConfig::with_policy(spec);
            let (on, trace_on) = run_traced(params, cfg, true);
            let (off, trace_off) = run_traced(params, cfg, false);
            assert_eq!(
                on,
                off,
                "RunResult diverged with fast-forward for {} under {}",
                params.name,
                spec.name()
            );
            assert_eq!(
                trace_on,
                trace_off,
                "ModeTrace diverged with fast-forward for {} under {}",
                params.name,
                spec.name()
            );
        }
    }
}

/// `AlwaysHigh` never leaves VDDH, so it finishes in exactly the
/// baseline's time on every twin.
#[test]
fn always_high_slowdown_is_exactly_zero() {
    for name in TWIN_MIX {
        let params = twin(name).expect("twin exists");
        let base = run(&params, SystemConfig::baseline());
        let high = run(&params, SystemConfig::with_policy(PolicySpec::AlwaysHigh));
        assert_eq!(
            base.elapsed_ns, high.elapsed_ns,
            "AlwaysHigh changed the execution time on {name}"
        );
        let cmp = Comparison::of(&base, &high);
        assert_eq!(cmp.perf_degradation_pct, 0.0, "nonzero slowdown on {name}");
    }
}

/// The pinned energy-savings ordering on the ILP-covered-misses
/// workload: `OracleDown >= DualFsm >= ImmediateDown`.
#[test]
fn policy_savings_ordering_holds_on_ilp_covered_misses() {
    let params = ilp_covered_misses();
    let base = run(&params, SystemConfig::baseline());
    assert!(
        base.mpki > 4.0,
        "ordering workload must be memory-bound (got {:.1} MPKI)",
        base.mpki
    );

    let dual = run(&params, SystemConfig::with_policy(PolicySpec::DualFsm));
    let imm = run(
        &params,
        SystemConfig::with_policy(PolicySpec::ImmediateDown),
    );
    let oracle = run(&params, SystemConfig::with_policy(PolicySpec::OracleDown));

    let s_dual = savings_pct(&base, &dual);
    let s_imm = savings_pct(&base, &imm);
    let s_oracle = savings_pct(&base, &oracle);

    assert!(
        s_oracle >= s_dual,
        "oracle ({s_oracle:.2}%) should save at least as much as dual-fsm ({s_dual:.2}%)"
    );
    assert!(
        s_dual >= s_imm,
        "dual-fsm ({s_dual:.2}%) should save at least as much as immediate-down ({s_imm:.2}%) \
         when misses overlap ILP"
    );
    // All three must actually save something for the ordering to mean
    // anything.
    assert!(s_imm > 5.0, "immediate-down saved only {s_imm:.2}%");
}
