//! Bit-exact reproducibility: the entire stack (generator, core,
//! hierarchy, prefetcher, controller, power model) must produce
//! identical results for identical inputs, across runs and across
//! configurations.

use vsv::{Experiment, RunResult, SystemConfig};
use vsv_workloads::twin;

fn run_once(name: &str, cfg: SystemConfig) -> RunResult {
    let e = Experiment {
        warmup_instructions: 20_000,
        instructions: 40_000,
    };
    e.run(&twin(name).expect("twin exists"), cfg)
}

fn assert_identical(a: &RunResult, b: &RunResult) {
    assert_eq!(a.elapsed_ns, b.elapsed_ns);
    assert_eq!(a.pipeline_cycles, b.pipeline_cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.mode, b.mode);
    assert_eq!(a.zero_issue_cycles, b.zero_issue_cycles);
    assert_eq!(a.mispredicts, b.mispredicts);
    assert!((a.energy_pj - b.energy_pj).abs() < 1e-6);
    assert!((a.mpki - b.mpki).abs() < 1e-12);
}

#[test]
fn baseline_runs_are_bit_identical() {
    let a = run_once("ammp", SystemConfig::baseline());
    let b = run_once("ammp", SystemConfig::baseline());
    assert_identical(&a, &b);
}

#[test]
fn vsv_runs_are_bit_identical() {
    let a = run_once("mcf", SystemConfig::vsv_with_fsms());
    let b = run_once("mcf", SystemConfig::vsv_with_fsms());
    assert_identical(&a, &b);
}

#[test]
fn timekeeping_runs_are_bit_identical() {
    let a = run_once(
        "applu",
        SystemConfig::vsv_with_fsms().with_timekeeping(true),
    );
    let b = run_once(
        "applu",
        SystemConfig::vsv_with_fsms().with_timekeeping(true),
    );
    assert_identical(&a, &b);
}

#[test]
fn different_twins_differ() {
    let a = run_once("gzip", SystemConfig::baseline());
    let b = run_once("gcc", SystemConfig::baseline());
    assert_ne!(a.elapsed_ns, b.elapsed_ns);
}
