//! Calibration regression: the twins must keep tracking their Table 2
//! targets. Runs every twin at a reduced (but deterministic) scale, so
//! the bands are generous — the full-scale numbers live in
//! EXPERIMENTS.md; this test catches calibration-destroying changes.

use vsv::{Experiment, SystemConfig};
use vsv_workloads::{spec2k_twins, table2_reference};

fn quick() -> Experiment {
    Experiment {
        warmup_instructions: 40_000,
        instructions: 60_000,
    }
}

#[test]
fn baseline_mr_tracks_table2() {
    let e = quick();
    let refs = table2_reference();
    for (params, paper) in spec2k_twins().iter().zip(&refs) {
        let r = e.run(params, SystemConfig::baseline());
        if paper.mr_base >= 1.0 {
            let ratio = r.mpki / paper.mr_base;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{}: MR {:.1} vs paper {:.1} (ratio {ratio:.2})",
                params.name,
                r.mpki,
                paper.mr_base
            );
        } else {
            assert!(
                r.mpki < 1.0,
                "{}: near-zero-MR twin drifted to {:.2}",
                params.name,
                r.mpki
            );
        }
    }
}

#[test]
fn baseline_ipc_is_in_band() {
    let e = quick();
    let refs = table2_reference();
    for (params, paper) in spec2k_twins().iter().zip(&refs) {
        let r = e.run(params, SystemConfig::baseline());
        let ratio = r.ipc / paper.ipc_base;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "{}: IPC {:.2} vs paper {:.2} (ratio {ratio:.2})",
            params.name,
            r.ipc,
            paper.ipc_base
        );
    }
}

#[test]
fn high_mr_classification_matches_paper() {
    // The Figure 4 "left section" must contain exactly the paper's
    // high-MR benchmarks (> 4 misses / 1000 insts).
    let e = quick();
    let refs = table2_reference();
    for (params, paper) in spec2k_twins().iter().zip(&refs) {
        let r = e.run(params, SystemConfig::baseline());
        let paper_high = paper.mr_base > 4.0;
        let sim_high = r.mpki > 4.0;
        // Allow only benchmarks sitting right at the boundary to flip.
        if (paper.mr_base - 4.0).abs() > 1.5 {
            assert_eq!(
                sim_high, paper_high,
                "{}: high-MR classification flipped (MR {:.1}, paper {:.1})",
                params.name, r.mpki, paper.mr_base
            );
        }
    }
}

#[test]
fn mcf_is_the_most_memory_bound() {
    let e = quick();
    let mut worst = ("", 0.0f64);
    for params in spec2k_twins() {
        let r = e.run(&params, SystemConfig::baseline());
        if r.mpki > worst.1 {
            worst = (params.name, r.mpki);
        }
    }
    assert_eq!(
        worst.0, "mcf",
        "mcf must top the MR ordering, got {worst:?}"
    );
}
