//! Determinism contract for the service-traffic subsystem
//! (`DESIGN.md` §14): the arrival stream is a pure function of the
//! traffic spec's seed and simulated time, and request accounting
//! rides on the committed-instruction stream the core executes
//! anyway, so
//!
//! 1. a fixed seed reproduces bit-identical results — request counts,
//!    latency percentiles, and every `RequestArrived` /
//!    `RequestCompleted` / `BurstStart` trace line — across repeated
//!    runs and across sweep worker counts;
//! 2. quiescent-stall fast-forward stays an *exact* optimisation with
//!    traffic attached: the skip caps at the next pending arrival, so
//!    results and request-event trace bytes agree with the
//!    non-skipping run;
//! 3. traffic is pure accounting: attaching a stream leaves the
//!    simulated timing, energy, and mode residency bit-identical to a
//!    run that never heard of it.

use vsv::{Experiment, Sweep, SystemConfig, TraceLevel, TrafficSpec};
use vsv_workloads::twin;

fn experiment() -> Experiment {
    Experiment {
        warmup_instructions: 10_000,
        instructions: 30_000,
    }
}

/// Memory-bound twin: plenty of L2 misses, so DVS transitions and
/// fast-forward windows interleave with the request lifecycle.
fn params() -> vsv_workloads::WorkloadParams {
    twin("mcf").expect("mcf exists")
}

/// A bursty stream sized so that ON phases queue a handful of
/// requests at this twin's service rate (~0.34 IPC).
fn bursty() -> TrafficSpec {
    TrafficSpec::mmpp(0.02, 0.5, 3_000, 6_000, 1_500).with_seed(9)
}

/// The request-lifecycle lines of a JSONL trace, concatenated.
fn request_lines(bytes: &[u8]) -> String {
    String::from_utf8(bytes.to_vec())
        .expect("trace is UTF-8")
        .lines()
        .filter(|l| {
            ["RequestArrived", "RequestCompleted", "BurstStart"]
                .iter()
                .any(|k| l.starts_with(&format!("{{\"{k}\"")))
        })
        .fold(String::new(), |mut s, l| {
            s.push_str(l);
            s.push('\n');
            s
        })
}

#[test]
fn fixed_seed_reproduces_request_traces_and_histograms() {
    let e = experiment();
    let cfg = SystemConfig::vsv_with_fsms().with_traffic(Some(bursty()));
    let (r1, m1, t1) = e
        .try_run_traced(&params(), cfg, TraceLevel::Events, None)
        .expect("first run");
    let (r2, m2, t2) = e
        .try_run_traced(&params(), cfg, TraceLevel::Events, None)
        .expect("second run");
    assert!(
        r1.requests_arrived > 0,
        "no request ever arrived — dead test"
    );
    assert!(r1.requests_completed > 0, "no request ever completed");
    assert!(r1.request_p99_ns >= r1.request_p50_ns);
    assert!(r1.request_p999_ns >= r1.request_p99_ns);
    assert_eq!(r1, r2, "results diverged under a fixed traffic seed");
    assert_eq!(m1, m2, "metrics diverged under a fixed traffic seed");
    assert_eq!(t1, t2, "trace bytes diverged under a fixed traffic seed");
    assert!(
        !request_lines(&t1).is_empty(),
        "no request events traced — dead test"
    );
}

#[test]
fn traffic_sweep_is_worker_count_independent() {
    let sweep = Sweep::over_grid(
        experiment(),
        &[params(), twin("ammp").expect("ammp exists")],
        &[
            SystemConfig::vsv_with_fsms().with_traffic(Some(bursty())),
            SystemConfig::baseline().with_traffic(Some(bursty())),
        ],
    );
    let (mut rep1, traces1) = sweep.report_traced(1, TraceLevel::Events);
    let (mut rep4, traces4) = sweep.report_traced(4, TraceLevel::Events);
    assert_eq!(traces1, traces4, "per-job trace bytes depend on workers");
    rep1.wall_ns = 0;
    rep4.wall_ns = 0;
    rep1.workers = 0;
    rep4.workers = 0;
    for r in rep1.records.iter_mut().chain(rep4.records.iter_mut()) {
        r.wall_ns = 0;
    }
    assert_eq!(rep1, rep4, "reports diverged across worker counts");
    let completed = rep1
        .into_results()
        .iter()
        .map(|r| r.requests_completed)
        .fold(0u64, u64::saturating_add);
    assert!(
        completed > 0,
        "no cell ever completed a request — dead test"
    );
}

#[test]
fn fast_forward_is_exact_under_traffic() {
    // The quiescent-stall skip caps at the next pending arrival, so
    // turning it off must change nothing — not the report, not the
    // request-event bytes.
    let e = experiment();
    let cfg = SystemConfig::vsv_with_fsms().with_traffic(Some(bursty()));
    let (on, m_on, t_on) = e
        .try_run_traced(
            &params(),
            cfg.with_fast_forward(true),
            TraceLevel::Events,
            None,
        )
        .expect("ff-on run");
    let (off, m_off, t_off) = e
        .try_run_traced(
            &params(),
            cfg.with_fast_forward(false),
            TraceLevel::Events,
            None,
        )
        .expect("ff-off run");
    assert!(
        on.requests_completed > 0,
        "no request completed — dead test"
    );
    assert_eq!(on, off, "results diverged with fast-forward");
    let (req_on, req_off) = (request_lines(&t_on), request_lines(&t_off));
    assert!(!req_on.is_empty(), "no request events traced — dead test");
    assert_eq!(
        req_on, req_off,
        "request trace bytes diverged with fast-forward"
    );
    for id in [
        vsv::CounterId::RequestsArrived,
        vsv::CounterId::RequestsCompleted,
        vsv::CounterId::BurstStarts,
    ] {
        assert_eq!(
            m_on.get(id),
            m_off.get(id),
            "{id:?} diverged with fast-forward"
        );
    }
}

#[test]
fn traffic_never_perturbs_the_simulation() {
    // A request is a *span* of the twin's committed-instruction
    // stream, not extra work: the core executes the same instructions
    // with or without a stream attached.
    let e = experiment();
    for cfg in [SystemConfig::baseline(), SystemConfig::vsv_with_fsms()] {
        let plain = e.try_run(&params(), cfg).expect("plain run");
        let loaded = e
            .try_run(&params(), cfg.with_traffic(Some(bursty())))
            .expect("loaded run");
        assert_eq!(plain.elapsed_ns, loaded.elapsed_ns, "traffic changed time");
        assert_eq!(
            plain.energy.cycles, loaded.energy.cycles,
            "traffic changed cycles"
        );
        assert_eq!(
            plain.instructions, loaded.instructions,
            "traffic changed the instruction stream"
        );
        assert_eq!(
            plain.energy_pj, loaded.energy_pj,
            "traffic changed the energy accounting"
        );
        assert_eq!(plain.mode, loaded.mode, "traffic changed mode residency");
    }
}

#[test]
fn overload_builds_backlog_deterministically() {
    // Offered load far above the service rate: the queue grows, and
    // it grows to the same depth every time.
    let e = experiment();
    let cfg = SystemConfig::vsv_with_fsms()
        .with_traffic(Some(TrafficSpec::poisson(2.0, 50_000).with_seed(3)));
    let r1 = e.try_run(&params(), cfg).expect("first run");
    let r2 = e.try_run(&params(), cfg).expect("second run");
    assert!(r1.request_backlog > 0, "overload never queued — dead test");
    assert!(r1.requests_arrived > r1.requests_completed);
    assert_eq!(r1, r2, "backlog diverged under a fixed seed");
}
