//! Round-trip the public configuration and result types through JSON
//! (the optional `serde` feature): a configuration written by one tool
//! must be readable by another without loss.

use vsv::{Comparison, DownPolicy, Experiment, SystemConfig, UpPolicy, VsvConfig};
use vsv_workloads::{twin, WorkloadParams};

#[test]
fn workload_params_round_trip() {
    for params in vsv_workloads::spec2k_twins() {
        let json = serde_json::to_string(&params).expect("serialize");
        let mut back: WorkloadParams = serde_json::from_str(&json).expect("deserialize");
        // The static name is serialize-only; everything else must
        // survive the trip exactly.
        assert_eq!(back.name, "custom");
        back.name = params.name;
        assert_eq!(params, back);
    }
}

#[test]
fn vsv_config_round_trip() {
    for cfg in [
        VsvConfig::disabled(),
        VsvConfig::with_fsms(),
        VsvConfig::without_fsms(),
    ] {
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: VsvConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(cfg, back);
    }
}

#[test]
fn policies_round_trip_with_field_names() {
    let down = DownPolicy::Monitor {
        threshold: 3,
        period: 10,
    };
    let json = serde_json::to_string(&down).expect("serialize");
    assert!(json.contains("threshold"), "named fields survive: {json}");
    let back: DownPolicy = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(down, back);

    let up: UpPolicy = serde_json::from_str("\"LastReturn\"").expect("unit variant");
    assert_eq!(up, UpPolicy::LastReturn);
}

#[test]
fn run_results_serialize_for_downstream_tooling() {
    let e = Experiment {
        warmup_instructions: 5_000,
        instructions: 10_000,
    };
    let params = twin("gzip").expect("twin exists");
    let (base, vsv_run, cmp) = e.compare(
        &params,
        SystemConfig::baseline(),
        SystemConfig::vsv_with_fsms(),
    );
    let json = serde_json::to_string(&vsv_run).expect("RunResult serializes");
    assert!(json.contains("avg_power_w"));
    let cmp_json = serde_json::to_string(&cmp).expect("Comparison serializes");
    let back: Comparison = serde_json::from_str(&cmp_json).expect("deserialize");
    assert_eq!(cmp, back);
    let _ = base;
}
