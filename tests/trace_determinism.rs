//! Determinism contract for the observability layer
//! (`docs/observability.md`):
//!
//! 1. the JSONL trace of a run is **byte-identical** across repeated
//!    runs of the same workload/configuration;
//! 2. a traced sweep's per-job buffers (and their grid-order
//!    concatenation) do not depend on the worker count;
//! 3. attaching a [`NullSink`] leaves the simulated results
//!    bit-identical to an un-instrumented run (the bench gate in
//!    `crates/bench/src/bin/throughput.rs` bounds its *cost*; this
//!    proves its *transparency*);
//! 4. every emitted line parses back into a [`TraceEvent`], and the
//!    stream carries the structure the summarizer relies on (a
//!    seeding `ModeEntered` first, one `WindowClosed` last).

use vsv::{Experiment, MetricsRegistry, NullSink, Sweep, SystemConfig, TraceEvent, TraceLevel};
use vsv_workloads::twin;

fn experiment() -> Experiment {
    Experiment {
        warmup_instructions: 10_000,
        instructions: 30_000,
    }
}

/// The memory-bound twin used throughout: plenty of L2 misses, so the
/// trace exercises every event kind.
fn params() -> vsv_workloads::WorkloadParams {
    twin("mcf").expect("mcf exists")
}

#[test]
fn jsonl_bytes_are_identical_across_runs() {
    let e = experiment();
    for level in [
        TraceLevel::Transitions,
        TraceLevel::Events,
        TraceLevel::Full,
    ] {
        let (r1, m1, t1) = e
            .try_run_traced(&params(), SystemConfig::vsv_with_fsms(), level, None)
            .expect("first run");
        let (r2, m2, t2) = e
            .try_run_traced(&params(), SystemConfig::vsv_with_fsms(), level, None)
            .expect("second run");
        assert_eq!(r1, r2, "results diverged at {level:?}");
        assert_eq!(m1, m2, "metrics diverged at {level:?}");
        assert!(!t1.is_empty(), "no trace bytes at {level:?}");
        assert_eq!(t1, t2, "trace bytes diverged at {level:?}");
    }
}

#[test]
fn traced_sweep_is_worker_count_independent() {
    let sweep = Sweep::over_grid(
        experiment(),
        &[params(), twin("gzip").expect("gzip exists")],
        &[SystemConfig::baseline(), SystemConfig::vsv_with_fsms()],
    );
    let (mut rep1, traces1) = sweep.report_traced(1, TraceLevel::Events);
    let (mut rep4, traces4) = sweep.report_traced(4, TraceLevel::Events);
    assert_eq!(traces1.len(), 4);
    assert_eq!(traces1, traces4, "per-job trace buffers depend on workers");
    assert_eq!(
        traces1.concat(),
        traces4.concat(),
        "concatenated trace bytes depend on workers"
    );
    // The reports agree too, up to host timing.
    rep1.wall_ns = 0;
    rep4.wall_ns = 0;
    rep1.workers = 0;
    rep4.workers = 0;
    for r in rep1.records.iter_mut().chain(rep4.records.iter_mut()) {
        r.wall_ns = 0;
    }
    assert_eq!(rep1, rep4);
}

#[test]
fn null_sink_is_transparent() {
    let e = experiment();
    for cfg in [SystemConfig::baseline(), SystemConfig::vsv_with_fsms()] {
        let plain = e.try_run(&params(), cfg).expect("plain run");
        let (instrumented, metrics) = e
            .try_run_instrumented(
                &params(),
                cfg,
                Some((TraceLevel::Events, Box::new(NullSink), None)),
            )
            .expect("instrumented run");
        assert_eq!(plain, instrumented, "NullSink changed simulated results");
        assert_ne!(metrics, MetricsRegistry::default(), "no metrics collected");
    }
}

#[test]
fn metrics_ride_along_without_changing_results() {
    let e = experiment();
    let plain = e
        .try_run(&params(), SystemConfig::vsv_with_fsms())
        .expect("plain");
    let (with_metrics, metrics) = e
        .try_run_with_metrics(&params(), SystemConfig::vsv_with_fsms())
        .expect("metrics run");
    assert_eq!(plain, with_metrics);
    // The counters agree with the result's own accounting.
    assert_eq!(
        metrics.get(vsv::CounterId::DownTransitions),
        with_metrics.mode.down_transitions
    );
    assert_eq!(
        metrics.get(vsv::CounterId::UpTransitions),
        with_metrics.mode.up_transitions
    );
    assert_eq!(metrics.get(vsv::CounterId::Windows), 1);
}

#[test]
fn every_line_parses_and_the_stream_is_well_formed() {
    let e = experiment();
    let (result, _, bytes) = e
        .try_run_traced(
            &params(),
            SystemConfig::vsv_with_fsms(),
            TraceLevel::Events,
            None,
        )
        .expect("traced run");
    let text = String::from_utf8(bytes).expect("trace is UTF-8");
    assert!(text.ends_with('\n'), "trace ends with a newline");
    let events: Vec<TraceEvent> = text
        .lines()
        .enumerate()
        .map(|(i, line)| {
            serde_json::from_str(line)
                .unwrap_or_else(|err| panic!("line {}: {err:?}: {line}", i + 1))
        })
        .collect();
    assert!(
        matches!(events.first(), Some(TraceEvent::ModeEntered { at, .. }) if *at > 0),
        "stream starts with the seeding ModeEntered, got {:?}",
        events.first()
    );
    match events.last() {
        Some(TraceEvent::WindowClosed { instructions, .. }) => {
            assert_eq!(*instructions, result.instructions);
        }
        other => panic!("stream ends with WindowClosed, got {other:?}"),
    }
    let kinds: std::collections::BTreeSet<&str> = events.iter().map(TraceEvent::kind).collect();
    for kind in [
        "ModeEntered",
        "MissDetected",
        "MissReturned",
        "FsmArmed",
        "FsmFired",
    ] {
        assert!(kinds.contains(kind), "mcf trace missing {kind}: {kinds:?}");
    }
    // Times never decrease: the stream is a timeline.
    let mut last = 0;
    for e in &events {
        let at = event_time(e);
        assert!(at >= last, "time went backwards: {e:?} after {last}");
        last = at;
    }
}

/// The timestamp of an event, for monotonicity checking.
fn event_time(e: &TraceEvent) -> u64 {
    match *e {
        // `CoreStart` restarts the clock: each core's stream is its
        // own timeline (single-core streams never carry it, so it is
        // a no-op marker for this suite).
        TraceEvent::JobStart { .. } | TraceEvent::CoreStart { .. } => 0,
        TraceEvent::ModeEntered { at, .. }
        | TraceEvent::FsmArmed { at, .. }
        | TraceEvent::FsmFired { at, .. }
        | TraceEvent::FsmExpired { at, .. }
        | TraceEvent::MissDetected { at, .. }
        | TraceEvent::MissReturned { at, .. }
        | TraceEvent::WindowClosed { at, .. }
        | TraceEvent::ReadError { at, .. }
        | TraceEvent::RetryExhausted { at, .. }
        | TraceEvent::BackoffEngaged { at }
        | TraceEvent::RequestArrived { at, .. }
        | TraceEvent::RequestCompleted { at, .. }
        | TraceEvent::BurstStart { at }
        | TraceEvent::Sample { at, .. } => at,
        TraceEvent::FastForward { from, .. } => from,
    }
}
