//! The N-level voltage ladder's backward-compatibility contract: the
//! paper's two-rail configuration is the depth-2 ladder, *bit for
//! bit*. `ladder-fsm` on a depth-2 ladder must reproduce the dual-FSM
//! controller exactly — same cycles, same energy, same per-nanosecond
//! mode trace, same sweep-report digest — serially, under any worker
//! count, and with quiescent fast-forward on or off. There is no
//! legacy two-rail code path to fall back on, so this suite is what
//! keeps the generalization honest.
//!
//! Malformed ladders are rejected up front by
//! [`SystemConfig::validate`] as typed [`SimError::InvalidConfig`]
//! errors; the negative half of this suite pins that.

use vsv::{
    Experiment, ModeTrace, PolicySpec, RunResult, SimError, Sweep, SweepReport, System,
    SystemConfig, VoltageLadder,
};
use vsv_workloads::{twin, Generator, WorkloadParams};

const TRACE_CAP: usize = 1 << 16;

/// Twins spanning memory-bound (mcf, art, ammp) to compute-bound
/// (gzip, mesa) behaviour — the same mix `tests/policy_equivalence.rs`
/// pins the policy layer on.
const TWIN_MIX: [&str; 5] = ["mcf", "art", "ammp", "gzip", "mesa"];

/// The dual-FSM reference configuration (the paper's controller).
fn dual_fsm() -> SystemConfig {
    SystemConfig::vsv_with_fsms()
}

/// `ladder-fsm` on the uniform depth-2 ladder — which *is* the paper's
/// two rails ([`VoltageLadder::uniform`] pins the endpoints exactly).
fn ladder_depth_2() -> SystemConfig {
    SystemConfig::with_policy(PolicySpec::LadderFsm).with_ladder_depth(2)
}

fn run(params: &WorkloadParams, cfg: SystemConfig) -> RunResult {
    Experiment::quick().run(params, cfg)
}

/// Runs with mode tracing on and the given fast-forward setting.
fn run_traced(
    params: WorkloadParams,
    cfg: SystemConfig,
    fast_forward: bool,
) -> (RunResult, ModeTrace) {
    let e = Experiment::quick();
    let mut sys = System::new(cfg.with_fast_forward(fast_forward), Generator::new(params));
    sys.set_workload_name(params.name);
    sys.enable_trace(TRACE_CAP);
    sys.warm_up(e.warmup_instructions);
    let result = sys.run(e.instructions);
    let trace = sys.take_trace().expect("tracing was on");
    (result, trace)
}

/// Cycles and energy: the depth-2 ladder reproduces the dual-FSM
/// controller exactly on every twin in the mix.
#[test]
fn depth_2_ladder_is_bit_identical_to_dual_fsm() {
    for name in TWIN_MIX {
        let params = twin(name).expect("twin exists");
        let dual = run(&params, dual_fsm());
        let ladder = run(&params, ladder_depth_2());
        assert_eq!(
            dual, ladder,
            "depth-2 ladder diverged from dual-fsm on {name}"
        );
    }
}

/// The per-nanosecond mode trace matches too — the transitions happen
/// at the same instants, not merely with the same totals — with
/// fast-forward both on and off.
#[test]
fn depth_2_ladder_mode_trace_matches_dual_fsm() {
    for fast_forward in [true, false] {
        let params = twin("mcf").expect("twin exists");
        let (dual, dual_trace) = run_traced(params, dual_fsm(), fast_forward);
        let (ladder, ladder_trace) = run_traced(params, ladder_depth_2(), fast_forward);
        assert_eq!(
            dual, ladder,
            "RunResult diverged (fast_forward = {fast_forward})"
        );
        assert_eq!(
            dual_trace, ladder_trace,
            "ModeTrace diverged (fast_forward = {fast_forward})"
        );
    }
}

/// An explicitly-constructed two-rail ladder behaves identically to
/// the default ladder on the dual-FSM path (no parallel legacy path:
/// the default *is* a ladder).
#[test]
fn explicit_paper_rails_match_the_default_configuration() {
    let params = twin("ammp").expect("twin exists");
    let default_cfg = dual_fsm();
    let mut explicit = dual_fsm();
    explicit.vsv = explicit
        .vsv
        .with_ladder(VoltageLadder::from_points(&[1.8, 1.2]));
    assert_eq!(run(&params, default_cfg), run(&params, explicit));
}

// ---- sweep-report digest --------------------------------------------

/// FNV-1a over a serialized report (the digest
/// `tests/sweep_report_golden.rs` pins its golden with).
fn digest(json: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Normalizes a report for cross-policy comparison: host wall-clock
/// zeroed (non-deterministic), the worker count blanked (an input, not
/// a result), policy names and config digests blanked (they differ by
/// construction — `"ladder-fsm"` vs `"dual-fsm"` — while everything
/// *simulated* must not).
fn normalized_json(mut report: SweepReport) -> String {
    report.wall_ns = 0;
    report.workers = 0;
    for r in &mut report.records {
        r.wall_ns = 0;
        r.policy = String::new();
        r.config_digest = String::new();
    }
    serde_json::to_string_pretty(&report).expect("report serializes")
}

fn mix_params() -> Vec<WorkloadParams> {
    TWIN_MIX
        .iter()
        .map(|n| twin(n).expect("twin exists"))
        .collect()
}

/// The full sweep report — outcomes, metrics registries, ladder depth
/// fields — digests identically for the two constructions, serially
/// and under four workers.
#[test]
fn sweep_report_digest_matches_dual_fsm_at_any_worker_count() {
    let params = mix_params();
    let dual = Sweep::over_grid(Experiment::quick(), &params, &[dual_fsm()]);
    let ladder = Sweep::over_grid(Experiment::quick(), &params, &[ladder_depth_2()]);
    let dual_serial = normalized_json(dual.report(1));
    let ladder_serial = normalized_json(ladder.report(1));
    assert_eq!(
        digest(&dual_serial),
        digest(&ladder_serial),
        "serial sweep reports diverged"
    );
    let ladder_parallel = normalized_json(ladder.report(4));
    assert_eq!(
        digest(&ladder_serial),
        digest(&ladder_parallel),
        "worker count changed the ladder sweep report"
    );
}

// ---- malformed ladders are typed configuration errors ---------------

/// Builds the dual-FSM configuration on an arbitrary (possibly bad)
/// ladder.
fn cfg_with_ladder(points: &[f64]) -> SystemConfig {
    let mut cfg = SystemConfig::vsv_with_fsms();
    cfg.vsv = cfg.vsv.with_ladder(VoltageLadder::from_points(points));
    cfg
}

#[test]
fn malformed_ladders_are_rejected_as_invalid_config() {
    let bad: [(&str, &[f64]); 5] = [
        ("depth 0", &[]),
        ("unsorted", &[1.8, 1.4, 1.6, 1.2]),
        ("duplicate", &[1.8, 1.5, 1.5, 1.2]),
        ("top off VDDH", &[1.7, 1.2]),
        ("below VDDL", &[1.8, 1.5, 0.9]),
    ];
    for (what, points) in bad {
        let cfg = cfg_with_ladder(points);
        let err = cfg.validate().expect_err(what);
        assert!(
            matches!(err, SimError::InvalidConfig { .. }),
            "{what}: expected InvalidConfig, got {err:?}"
        );
        // The fallible constructor surfaces the same typed error.
        let params = twin("gzip").expect("twin exists");
        let built = System::try_new(cfg, Generator::new(params));
        assert!(
            matches!(built, Err(SimError::InvalidConfig { .. })),
            "{what}: System::try_new must reject the ladder"
        );
    }
}

#[test]
fn well_formed_ladders_pass_validation_at_every_depth() {
    for depth in 1..=vsv::MAX_LADDER_DEPTH {
        let cfg = SystemConfig::vsv_with_fsms().with_ladder_depth(depth);
        cfg.validate().expect("uniform ladders are always valid");
    }
}
