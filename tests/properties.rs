//! Property-style tests over the public APIs of the substrate crates:
//! invariants that must hold for *any* input, not just the scripted
//! cases in the unit tests.
//!
//! These originally ran under proptest. The workspace must build with
//! no network access (see DESIGN.md), so the properties are now driven
//! by the in-repo `XorShift64` PRNG over fixed seeds: every property
//! is checked against `CASES` independently-seeded random inputs.
//! This trades proptest's shrinking for determinism — a failure
//! reports the case seed, which reproduces the exact input.

use vsv::{Comparison, DownFsm, DownPolicy, ModeStats, RunResult, UpFsm, UpPolicy};
use vsv_isa::{Addr, ArchReg, Inst, Pc};
use vsv_mem::{Bus, BusConfig, Cache, CacheConfig, EventQueue, MshrFile, MshrOutcome};
use vsv_power::{ActivitySample, PowerAccountant, PowerConfig};
use vsv_uarch::Ruu;
use vsv_workloads::{Generator, WorkloadParams, XorShift64};

/// Random cases per property. Each case derives its own seed so a
/// failure message identifies the reproducing input.
const CASES: u64 = 64;

/// Deterministic per-(property, case) PRNG.
fn rng(property: &str, case: u64) -> XorShift64 {
    // FNV-1a over the property name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in property.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    XorShift64::new(h ^ (case.wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1)
}

// ---------- caches ---------------------------------------------------

/// A fill makes the block resident; residency only leaves via a
/// conflicting fill or invalidation. Model-checked against a naive
/// set model.
#[test]
fn cache_matches_naive_lru_model() {
    for case in 0..CASES {
        let mut r = rng("cache_matches_naive_lru_model", case);
        let n_ops = 1 + r.below(199) as usize;
        // 2 sets x 2 ways x 32B blocks.
        let cfg = CacheConfig {
            capacity_bytes: 128,
            assoc: 2,
            block_bytes: 32,
            hit_latency: 1,
        };
        let mut cache = Cache::new(cfg);
        // Naive model: per set, a vec of blocks, most recently used last.
        let mut model: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        for _ in 0..n_ops {
            let block_idx = r.below(64);
            let is_fill = r.chance(0.5);
            let addr = Addr(block_idx * 32);
            let set = (block_idx % 2) as usize;
            if is_fill {
                cache.fill(addr);
                if let Some(pos) = model[set].iter().position(|b| *b == block_idx) {
                    model[set].remove(pos);
                } else if model[set].len() == 2 {
                    model[set].remove(0); // evict LRU
                }
                model[set].push(block_idx);
            } else {
                let hit = cache.access(addr, false);
                let model_hit = model[set].contains(&block_idx);
                assert_eq!(hit, model_hit, "case {case}: access {block_idx} mismatch");
                if model_hit {
                    let pos = model[set]
                        .iter()
                        .position(|b| *b == block_idx)
                        .expect("hit");
                    let b = model[set].remove(pos);
                    model[set].push(b); // refresh LRU
                }
            }
        }
    }
}

/// Occupancy never exceeds capacity, and the fill/eviction ledger
/// balances: every fill either made a block resident, displaced a
/// victim, or refreshed an already-resident block.
#[test]
fn cache_occupancy_and_stat_balance() {
    for case in 0..CASES {
        let mut r = rng("cache_occupancy_and_stat_balance", case);
        let n = 1 + r.below(299);
        let cfg = CacheConfig {
            capacity_bytes: 1024,
            assoc: 4,
            block_bytes: 32,
            hit_latency: 1,
        };
        let mut cache = Cache::new(cfg);
        for _ in 0..n {
            cache.fill(Addr(r.below(4096) * 32));
        }
        let s = cache.stats();
        assert!(cache.resident_blocks() <= 32, "case {case}");
        assert_eq!(s.fills, n, "case {case}");
        assert!(
            cache.resident_blocks() as u64 + s.evictions <= s.fills,
            "case {case}: resident {} + evictions {} must not exceed fills {}",
            cache.resident_blocks(),
            s.evictions,
            s.fills
        );
        assert!(s.writebacks <= s.evictions, "case {case}");
    }
}

// ---------- MSHRs ----------------------------------------------------

/// Every allocated target is returned exactly once by complete(),
/// in FIFO order per block, and occupancy tracks live entries.
#[test]
fn mshr_targets_conserved() {
    for case in 0..CASES {
        let mut r = rng("mshr_targets_conserved", case);
        let n_reqs = 1 + r.below(99) as usize;
        let mut mshrs = MshrFile::new(4, 4);
        let mut expected: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        for _ in 0..n_reqs {
            let block_idx = r.below(8);
            let target = r.below(1000);
            let block = Addr(block_idx * 64);
            match mshrs.allocate(block, target, true) {
                MshrOutcome::Primary | MshrOutcome::Merged => {
                    expected.entry(block_idx).or_default().push(target);
                }
                MshrOutcome::Full => {}
            }
        }
        assert_eq!(mshrs.occupancy(), expected.len(), "case {case}");
        for (block_idx, targets) in expected {
            let (got, demand) = mshrs.complete(Addr(block_idx * 64)).expect("entry exists");
            assert_eq!(got, targets, "case {case}: FIFO order per block");
            assert!(demand, "case {case}");
        }
        assert_eq!(mshrs.occupancy(), 0, "case {case}");
    }
}

// ---------- bus -------------------------------------------------------

/// Grants never overlap and never start before the request time;
/// total busy time equals the sum of grant durations.
#[test]
fn bus_grants_are_serialised() {
    for case in 0..CASES {
        let mut r = rng("bus_grants_are_serialised", case);
        let n_reqs = 1 + r.below(99) as usize;
        let mut bus = Bus::new(BusConfig::baseline());
        let mut last_end = 0u64;
        let mut busy = 0u64;
        let mut now = 0u64;
        for _ in 0..n_reqs {
            now += r.below(500);
            let bytes = r.below(256);
            let (start, end) = bus.schedule(now, bytes);
            assert!(start >= now, "case {case}");
            assert!(start >= last_end, "case {case}: grants must not overlap");
            assert!(end > start, "case {case}");
            busy += end - start;
            last_end = end;
        }
        assert_eq!(bus.busy_ns(), busy, "case {case}");
    }
}

// ---------- event queue ----------------------------------------------

/// Events pop in (time, insertion) order regardless of push order.
#[test]
fn event_queue_is_stable_priority() {
    for case in 0..CASES {
        let mut r = rng("event_queue_is_stable_priority", case);
        let n_events = 1 + r.below(199) as usize;
        let events: Vec<u64> = (0..n_events).map(|_| r.below(100)).collect();
        let mut q = EventQueue::new();
        for (i, t) in events.iter().enumerate() {
            q.push(*t, (*t, i));
        }
        let popped = q.pop_ready(100);
        assert_eq!(popped.len(), events.len(), "case {case}");
        for w in popped.windows(2) {
            assert!(
                w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1),
                "case {case}"
            );
        }
    }
}

// ---------- RUU -------------------------------------------------------

/// Any interleaving of dispatch/complete keeps in-order commit:
/// popped sequence numbers are dense and increasing, and occupancy
/// never exceeds capacity.
#[test]
fn ruu_commits_in_order() {
    for case in 0..CASES {
        let mut r = rng("ruu_commits_in_order", case);
        let n_steps = 1 + r.below(299) as usize;
        let mut ruu = Ruu::new(16, 8);
        let mut issued: Vec<u64> = Vec::new();
        let mut next_commit = 0u64;
        let mut pc = 0u64;
        for _ in 0..n_steps {
            if r.chance(0.5) {
                let inst = Inst::alu(Pc(pc), ArchReg::int((pc % 30) as u8 + 1), &[]);
                pc += 4;
                if ruu.can_dispatch(&inst) {
                    let seq = ruu.dispatch(inst, false);
                    issued.push(seq);
                }
            } else if let Some(seq) = issued.pop() {
                ruu.mark_issued(seq, 0);
                ruu.complete(seq);
            }
            assert!(ruu.occupancy() <= 16, "case {case}");
            while ruu.commit_ready().is_some() {
                let e = ruu.pop_commit();
                assert_eq!(
                    e.seq, next_commit,
                    "case {case}: commit order must be program order"
                );
                next_commit += 1;
            }
        }
    }
}

// ---------- FSMs ------------------------------------------------------

/// A higher down-threshold never triggers earlier than a lower one
/// on the same issue trace.
#[test]
fn down_threshold_monotonicity() {
    for case in 0..CASES {
        let mut r = rng("down_threshold_monotonicity", case);
        let n = 10 + r.below(50) as usize;
        let trace: Vec<u32> = (0..n).map(|_| r.below(4) as u32).collect();
        let fire_index = |threshold: u32| {
            let mut f = DownFsm::new(DownPolicy::Monitor {
                threshold,
                period: 10,
            });
            f.arm();
            trace.iter().position(|&i| {
                f.refresh();
                f.on_cycle(i)
            })
        };
        let t1 = fire_index(1);
        let t3 = fire_index(3);
        match (t1, t3) {
            (Some(a), Some(b)) => assert!(a <= b, "case {case}"),
            (None, Some(_)) => panic!("case {case}: t3 fired but t1 did not"),
            _ => {}
        }
    }
}

/// The up-FSM never fires while the pipeline stays fully idle with
/// misses outstanding; Last-R never fires before outstanding hits 0.
#[test]
fn up_policies_respect_their_definitions() {
    for case in 0..CASES {
        let mut r = rng("up_policies_respect_their_definitions", case);
        let n = 1 + r.below(29) as usize;
        let outs: Vec<usize> = (0..n).map(|_| 1 + r.below(4) as usize).collect();
        let mut monitor = UpFsm::new(UpPolicy::Monitor {
            threshold: 3,
            period: 10,
        });
        let mut last_r = UpFsm::new(UpPolicy::LastReturn);
        for &o in &outs {
            assert!(
                !last_r.on_return(o),
                "case {case}: Last-R with outstanding {o}"
            );
            assert!(
                !monitor.on_return(o),
                "case {case}: monitor cannot fire straight from a return with outstanding > 0"
            );
            // Idle cycles: monitor must not fire.
            for _ in 0..12 {
                assert!(!monitor.on_cycle(0), "case {case}");
            }
        }
        assert!(last_r.on_return(0), "case {case}");
    }
}

// ---------- power model ----------------------------------------------

/// Energy is finite, non-negative, and monotone in both activity
/// and voltage.
#[test]
fn power_energy_monotonicity() {
    for case in 0..CASES {
        let mut r = rng("power_energy_monotonicity", case);
        let volts = [1.2, 1.4, 1.6, 1.8];
        let v = volts[r.below(4) as usize];
        let mut sample: ActivitySample = Default::default();
        for slot in sample.iter_mut() {
            *slot = r.below(32) as u32;
        }
        let mut acc = PowerAccountant::new(PowerConfig::baseline());
        acc.record_cycle(&sample, v);
        let e = acc.total_energy_pj();
        assert!(e.is_finite() && e >= 0.0, "case {case}");

        // More activity can only cost more.
        let mut bigger = sample;
        bigger[0] += 1;
        let mut acc2 = PowerAccountant::new(PowerConfig::baseline());
        acc2.record_cycle(&bigger, v);
        assert!(acc2.total_energy_pj() >= e, "case {case}");

        // Higher voltage can only cost more.
        if v < 1.8 {
            let mut acc3 = PowerAccountant::new(PowerConfig::baseline());
            acc3.record_cycle(&sample, v + 0.2);
            assert!(acc3.total_energy_pj() + 1e-9 >= e, "case {case}");
        }
    }
}

// ---------- workload generator ----------------------------------------

/// For any valid parameter point, the generated trace respects
/// control flow (each instruction sits at its predecessor's next
/// PC) and PCs stay inside the code footprint.
#[test]
fn generator_traces_follow_control_flow() {
    use vsv_isa::InstStream;
    let mut checked = 0;
    for case in 0..CASES {
        let mut r = rng("generator_traces_follow_control_flow", case);
        let mut p = WorkloadParams::compute_bound("prop");
        p.seed = r.next_u64();
        p.far_fraction = 0.3 * r.unit();
        p.branch_fraction = 0.25 * r.unit();
        p.ilp_chains = 1 + r.below(8) as usize;
        p.miss_burst = 1 + r.below(16) as usize;
        if p.validate().is_err() {
            continue; // proptest's prop_assume!: skip invalid points
        }
        checked += 1;
        let mut g = Generator::new(p);
        let mut prev: Option<Inst> = None;
        for _ in 0..2_000 {
            let inst = g.next_inst().expect("infinite stream");
            assert!(inst.pc().0 < p.code_footprint_bytes, "case {case}");
            if let Some(prev) = prev {
                assert_eq!(inst.pc(), prev.next_pc(), "case {case}: {prev} then {inst}");
            }
            prev = Some(inst);
        }
    }
    assert!(checked > CASES / 2, "too many invalid parameter points");
}

/// The PRNG's bounded sampler stays in range for any bound.
#[test]
fn rng_below_stays_in_range() {
    for case in 0..CASES {
        let mut r = rng("rng_below_stays_in_range", case);
        let seed = r.next_u64();
        let bound = 1 + r.below(999_999);
        let mut s = XorShift64::new(seed);
        for _ in 0..100 {
            assert!(s.below(bound) < bound, "case {case}");
        }
    }
}

// ---------- report maths ----------------------------------------------

/// Comparison percentages are consistent with their definitions.
#[test]
fn comparison_math() {
    for case in 0..CASES {
        let mut r = rng("comparison_math", case);
        let base_ns = 1_000 + r.below(999_000);
        let vsv_ns = 1_000 + r.below(999_000);
        let base_w = 1.0 + 99.0 * r.unit();
        let vsv_w = 1.0 + 99.0 * r.unit();
        let mk = |ns: u64, w: f64| RunResult {
            workload: String::new(),
            instructions: 1,
            elapsed_ns: ns,
            pipeline_cycles: ns,
            ipc: 0.0,
            mpki: 0.0,
            prefetch_mpki: 0.0,
            energy_pj: w * ns as f64 * 1e3,
            energy: vsv_power::EnergyBreakdown {
                per_structure_pj: [0.0; 14],
                ramp_pj: 0.0,
                level_converter_pj: 0.0,
                uncore_pj: 0.0,
                leakage_pj: 0.0,
                cycles: 0,
            },
            avg_power_w: w,
            mode: ModeStats::default(),
            down_triggers: 0,
            down_expiries: 0,
            up_triggers: 0,
            up_expiries: 0,
            zero_issue_cycles: 0,
            mispredicts: 0,
            branches: 0,
            issue_histogram: Default::default(),
            read_errors: 0,
            read_retries: 0,
            requests_arrived: 0,
            requests_completed: 0,
            request_backlog: 0,
            request_p50_ns: 0,
            request_p99_ns: 0,
            request_p999_ns: 0,
            slo: None,
            core_results: Vec::new(),
        };
        let c = Comparison::of(&mk(base_ns, base_w), &mk(vsv_ns, vsv_w));
        assert!(
            (c.perf_degradation_pct > 0.0) == (vsv_ns > base_ns),
            "case {case}"
        );
        assert!(
            (c.power_saving_pct > 0.0) == (vsv_w < base_w),
            "case {case}"
        );
    }
}
