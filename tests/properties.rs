//! Property-based tests (proptest) over the public APIs of the
//! substrate crates: invariants that must hold for *any* input, not
//! just the scripted cases in the unit tests.

use proptest::prelude::*;

use vsv::{Comparison, DownFsm, DownPolicy, ModeStats, RunResult, UpFsm, UpPolicy};
use vsv_isa::{Addr, ArchReg, Inst, Pc};
use vsv_mem::{Bus, BusConfig, Cache, CacheConfig, EventQueue, MshrFile, MshrOutcome};
use vsv_power::{ActivitySample, PowerAccountant, PowerConfig};
use vsv_uarch::Ruu;
use vsv_workloads::{Generator, WorkloadParams, XorShift64};

// ---------- caches ---------------------------------------------------

proptest! {
    /// A fill makes the block resident; residency only leaves via a
    /// conflicting fill or invalidation. Model-checked against a naive
    /// set model.
    #[test]
    fn cache_matches_naive_lru_model(ops in prop::collection::vec((0u64..64, any::<bool>()), 1..200)) {
        // 2 sets x 2 ways x 32B blocks.
        let cfg = CacheConfig { capacity_bytes: 128, assoc: 2, block_bytes: 32, hit_latency: 1 };
        let mut cache = Cache::new(cfg);
        // Naive model: per set, a vec of (block, last_use), most recent last.
        let mut model: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        for (block_idx, is_fill) in ops {
            let addr = Addr(block_idx * 32);
            let set = (block_idx % 2) as usize;
            if is_fill {
                cache.fill(addr);
                if let Some(pos) = model[set].iter().position(|b| *b == block_idx) {
                    model[set].remove(pos);
                } else if model[set].len() == 2 {
                    model[set].remove(0); // evict LRU
                }
                model[set].push(block_idx);
            } else {
                let hit = cache.access(addr, false);
                let model_hit = model[set].contains(&block_idx);
                prop_assert_eq!(hit, model_hit, "access {} mismatch", block_idx);
                if model_hit {
                    let pos = model[set].iter().position(|b| *b == block_idx).expect("hit");
                    let b = model[set].remove(pos);
                    model[set].push(b); // refresh LRU
                }
            }
        }
    }

    /// Occupancy never exceeds capacity, and the fill/eviction ledger
    /// balances: every fill either made a block resident, displaced a
    /// victim, or refreshed an already-resident block.
    #[test]
    fn cache_occupancy_and_stat_balance(blocks in prop::collection::vec(0u64..4096, 1..300)) {
        let cfg = CacheConfig { capacity_bytes: 1024, assoc: 4, block_bytes: 32, hit_latency: 1 };
        let mut cache = Cache::new(cfg);
        let n = blocks.len() as u64;
        for b in blocks {
            cache.fill(Addr(b * 32));
        }
        let s = cache.stats();
        prop_assert!(cache.resident_blocks() <= 32);
        prop_assert_eq!(s.fills, n);
        prop_assert!(
            cache.resident_blocks() as u64 + s.evictions <= s.fills,
            "resident {} + evictions {} must not exceed fills {}",
            cache.resident_blocks(),
            s.evictions,
            s.fills
        );
        prop_assert!(s.writebacks <= s.evictions);
    }
}

// ---------- MSHRs ----------------------------------------------------

proptest! {
    /// Every allocated target is returned exactly once by complete(),
    /// in FIFO order per block, and occupancy tracks live entries.
    #[test]
    fn mshr_targets_conserved(reqs in prop::collection::vec((0u64..8, 0u64..1000), 1..100)) {
        let mut mshrs = MshrFile::new(4, 4);
        let mut expected: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        for (block_idx, target) in reqs {
            let block = Addr(block_idx * 64);
            match mshrs.allocate(block, target, true) {
                MshrOutcome::Primary | MshrOutcome::Merged => {
                    expected.entry(block_idx).or_default().push(target);
                }
                MshrOutcome::Full => {}
            }
        }
        prop_assert_eq!(mshrs.occupancy(), expected.len());
        for (block_idx, targets) in expected {
            let (got, demand) = mshrs.complete(Addr(block_idx * 64)).expect("entry exists");
            prop_assert_eq!(got, targets, "FIFO order per block");
            prop_assert!(demand);
        }
        prop_assert_eq!(mshrs.occupancy(), 0);
    }
}

// ---------- bus -------------------------------------------------------

proptest! {
    /// Grants never overlap and never start before the request time;
    /// total busy time equals the sum of grant durations.
    #[test]
    fn bus_grants_are_serialised(reqs in prop::collection::vec((0u64..500, 0u64..256), 1..100)) {
        let mut bus = Bus::new(BusConfig::baseline());
        let mut last_end = 0u64;
        let mut busy = 0u64;
        let mut now = 0u64;
        for (advance, bytes) in reqs {
            now += advance;
            let (start, end) = bus.schedule(now, bytes);
            prop_assert!(start >= now);
            prop_assert!(start >= last_end, "grants must not overlap");
            prop_assert!(end > start);
            busy += end - start;
            last_end = end;
        }
        prop_assert_eq!(bus.busy_ns(), busy);
    }
}

// ---------- event queue ----------------------------------------------

proptest! {
    /// Events pop in (time, insertion) order regardless of push order.
    #[test]
    fn event_queue_is_stable_priority(events in prop::collection::vec(0u64..100, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in events.iter().enumerate() {
            q.push(*t, (*t, i));
        }
        let popped = q.pop_ready(100);
        prop_assert_eq!(popped.len(), events.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }
}

// ---------- RUU -------------------------------------------------------

proptest! {
    /// Any interleaving of dispatch/complete keeps in-order commit:
    /// popped sequence numbers are dense and increasing, and occupancy
    /// never exceeds capacity.
    #[test]
    fn ruu_commits_in_order(plan in prop::collection::vec(any::<bool>(), 1..300)) {
        let mut ruu = Ruu::new(16, 8);
        let mut issued: Vec<u64> = Vec::new();
        let mut next_commit = 0u64;
        let mut pc = 0u64;
        for dispatch in plan {
            if dispatch {
                let inst = Inst::alu(Pc(pc), ArchReg::int((pc % 30) as u8 + 1), &[]);
                pc += 4;
                if ruu.can_dispatch(&inst) {
                    let seq = ruu.dispatch(inst, false);
                    issued.push(seq);
                }
            } else if let Some(seq) = issued.pop() {
                ruu.mark_issued(seq, 0);
                ruu.complete(seq);
            }
            prop_assert!(ruu.occupancy() <= 16);
            while ruu.commit_ready().is_some() {
                let e = ruu.pop_commit();
                prop_assert_eq!(e.seq, next_commit, "commit order must be program order");
                next_commit += 1;
            }
        }
    }
}

// ---------- FSMs ------------------------------------------------------

proptest! {
    /// A higher down-threshold never triggers earlier than a lower one
    /// on the same issue trace.
    #[test]
    fn down_threshold_monotonicity(trace in prop::collection::vec(0u32..4, 10..60)) {
        let fire_index = |threshold: u32| {
            let mut f = DownFsm::new(DownPolicy::Monitor { threshold, period: 10 });
            f.arm();
            trace.iter().position(|&i| {
                f.refresh();
                f.on_cycle(i)
            })
        };
        let t1 = fire_index(1);
        let t3 = fire_index(3);
        match (t1, t3) {
            (Some(a), Some(b)) => prop_assert!(a <= b),
            (None, Some(_)) => prop_assert!(false, "t3 fired but t1 did not"),
            _ => {}
        }
    }

    /// The up-FSM never fires while the pipeline stays fully idle with
    /// misses outstanding; Last-R never fires before outstanding hits 0.
    #[test]
    fn up_policies_respect_their_definitions(outs in prop::collection::vec(1usize..5, 1..30)) {
        let mut monitor = UpFsm::new(UpPolicy::Monitor { threshold: 3, period: 10 });
        let mut last_r = UpFsm::new(UpPolicy::LastReturn);
        for &o in &outs {
            prop_assert!(!last_r.on_return(o), "Last-R with outstanding {o}");
            if monitor.on_return(o) {
                prop_assert!(false, "monitor cannot fire straight from a return with outstanding > 0");
            }
            // Idle cycles: monitor must not fire.
            for _ in 0..12 {
                prop_assert!(!monitor.on_cycle(0));
            }
        }
        prop_assert!(last_r.on_return(0));
    }
}

// ---------- power model ----------------------------------------------

proptest! {
    /// Energy is finite, non-negative, and monotone in both activity
    /// and voltage.
    #[test]
    fn power_energy_monotonicity(
        counts in prop::collection::vec(0u32..32, 14),
        v_idx in 0usize..4,
    ) {
        let volts = [1.2, 1.4, 1.6, 1.8];
        let v = volts[v_idx];
        let mut sample: ActivitySample = Default::default();
        sample.copy_from_slice(&counts);
        let mut acc = PowerAccountant::new(PowerConfig::baseline());
        acc.record_cycle(&sample, v);
        let e = acc.total_energy_pj();
        prop_assert!(e.is_finite() && e >= 0.0);

        // More activity can only cost more.
        let mut bigger = sample;
        bigger[0] += 1;
        let mut acc2 = PowerAccountant::new(PowerConfig::baseline());
        acc2.record_cycle(&bigger, v);
        prop_assert!(acc2.total_energy_pj() >= e);

        // Higher voltage can only cost more.
        if v < 1.8 {
            let mut acc3 = PowerAccountant::new(PowerConfig::baseline());
            acc3.record_cycle(&sample, v + 0.2);
            prop_assert!(acc3.total_energy_pj() + 1e-9 >= e);
        }
    }
}

// ---------- workload generator ----------------------------------------

proptest! {
    /// For any valid parameter point, the generated trace respects
    /// control flow (each instruction sits at its predecessor's next
    /// PC) and PCs stay inside the code footprint.
    #[test]
    fn generator_traces_follow_control_flow(
        seed in any::<u64>(),
        far in 0.0f64..0.3,
        branch in 0.0f64..0.25,
        ilp in 1usize..9,
        burst in 1usize..17,
    ) {
        use vsv_isa::InstStream;
        let mut p = WorkloadParams::compute_bound("prop");
        p.seed = seed;
        p.far_fraction = far;
        p.branch_fraction = branch;
        p.ilp_chains = ilp;
        p.miss_burst = burst;
        prop_assume!(p.validate().is_ok());
        let mut g = Generator::new(p);
        let mut prev: Option<Inst> = None;
        for _ in 0..2_000 {
            let inst = g.next_inst().expect("infinite stream");
            prop_assert!(inst.pc().0 < p.code_footprint_bytes);
            if let Some(prev) = prev {
                prop_assert_eq!(inst.pc(), prev.next_pc(), "{} then {}", prev, inst);
            }
            prev = Some(inst);
        }
    }

    /// The PRNG's bounded sampler stays in range for any bound.
    #[test]
    fn rng_below_stays_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = XorShift64::new(seed);
        for _ in 0..100 {
            prop_assert!(r.below(bound) < bound);
        }
    }
}

// ---------- report maths ----------------------------------------------

proptest! {
    /// Comparison percentages are consistent with their definitions.
    #[test]
    fn comparison_math(base_ns in 1_000u64..1_000_000, vsv_ns in 1_000u64..1_000_000,
                       base_w in 1.0f64..100.0, vsv_w in 1.0f64..100.0) {
        let mk = |ns: u64, w: f64| RunResult {
            workload: String::new(),
            instructions: 1,
            elapsed_ns: ns,
            pipeline_cycles: ns,
            ipc: 0.0,
            mpki: 0.0,
            prefetch_mpki: 0.0,
            energy_pj: w * ns as f64 * 1e3,
            energy: vsv_power::EnergyBreakdown {
                per_structure_pj: [0.0; 14],
                ramp_pj: 0.0,
                level_converter_pj: 0.0,
                uncore_pj: 0.0,
                leakage_pj: 0.0,
                cycles: 0,
            },
            avg_power_w: w,
            mode: ModeStats::default(),
            down_triggers: 0,
            down_expiries: 0,
            up_triggers: 0,
            up_expiries: 0,
            zero_issue_cycles: 0,
            mispredicts: 0,
            branches: 0,
            issue_histogram: Default::default(),
        };
        let c = Comparison::of(&mk(base_ns, base_w), &mk(vsv_ns, vsv_w));
        prop_assert!((c.perf_degradation_pct > 0.0) == (vsv_ns > base_ns));
        prop_assert!((c.power_saving_pct > 0.0) == (vsv_w < base_w));
    }
}
