//! The multicore backward-compatibility contract: a one-core
//! [`MulticoreSystem`] — one voltage domain over the shared fabric —
//! reproduces the plain single-core [`System`] *bit for bit* (same
//! cycles, same energy, same per-nanosecond mode trace), and the
//! runner's `--cores 1` path is byte-identical to the pre-multicore
//! path with fast-forward on or off. There is no legacy single-core
//! fabric to fall back on when `cores == 1` reaches the shared code,
//! so this suite is what keeps the lift honest.
//!
//! The N = 2 half pins the new behaviour: lockstep runs are
//! deterministic, chip results carry one window per core, and two
//! memory-bound co-runners on one L2 really do contend (each core's
//! window is no shorter than its solo run).

use vsv::{
    Experiment, ModeTrace, MulticoreSystem, PolicySpec, RunResult, SimError, Sweep, SweepReport,
    System, SystemConfig,
};
use vsv_workloads::{twin, Generator, WorkloadParams};

const TRACE_CAP: usize = 1 << 16;

/// Memory-bound and compute-bound twins, the mix the policy and
/// ladder equivalence suites pin on.
const TWIN_MIX: [&str; 5] = ["mcf", "art", "ammp", "gzip", "mesa"];

/// The policies whose decision state must survive the lift untouched:
/// the paper's dual FSMs, the N-level generalization, and the oracle
/// upper bound.
fn policies() -> [SystemConfig; 3] {
    [
        SystemConfig::vsv_with_fsms(),
        SystemConfig::with_policy(PolicySpec::LadderFsm).with_ladder_depth(3),
        SystemConfig::with_policy(PolicySpec::OracleDown),
    ]
}

/// Plain single-core reference: trace on, nanosecond-stepped
/// (the multicore lockstep loop never fast-forwards, so the
/// bit-identity claim is against the stepped path).
fn run_plain(params: WorkloadParams, cfg: SystemConfig) -> (RunResult, ModeTrace) {
    let e = Experiment::quick();
    let mut sys = System::new(cfg.with_fast_forward(false), Generator::new(params));
    sys.set_workload_name(params.name);
    sys.enable_trace(TRACE_CAP);
    sys.warm_up(e.warmup_instructions);
    let result = sys.run(e.instructions);
    let trace = sys.take_trace().expect("tracing was on");
    (result, trace)
}

/// The same run through a one-domain chip.
fn run_chip_of_1(params: &WorkloadParams, cfg: SystemConfig) -> (RunResult, ModeTrace) {
    let e = Experiment::quick();
    let mut chip = MulticoreSystem::try_new(cfg.with_fast_forward(false).with_cores(1), params)
        .expect("valid one-core config");
    chip.enable_traces(TRACE_CAP);
    chip.try_warm_up(e.warmup_instructions).expect("warm-up");
    let result = chip.try_run(e.instructions).expect("run");
    let trace = chip
        .take_traces()
        .pop()
        .flatten()
        .expect("tracing was on for core 0");
    (result, trace)
}

/// Strips the two fields that differ *by construction* at N = 1: the
/// chip aggregate carries the per-core window vector, and per-core
/// streams are suffixed `#0`. Everything simulated must match.
fn normalized(mut r: RunResult) -> RunResult {
    r.core_results.clear();
    r.workload = r.workload.replace("#0", "");
    r
}

/// Cycles, energy, mode residency, histograms: the one-core chip
/// reproduces the plain system exactly under every policy whose
/// decisions could have been perturbed by the shared fabric.
#[test]
fn one_core_chip_is_bit_identical_to_plain_system() {
    for cfg in policies() {
        for name in TWIN_MIX {
            let params = twin(name).expect("twin exists");
            let (plain, plain_trace) = run_plain(params, cfg);
            let (chip, chip_trace) = run_chip_of_1(&params, cfg);
            assert_eq!(chip.core_results.len(), 1, "one window per core");
            assert_eq!(
                normalized(chip.core_results[0].clone()),
                normalized(plain.clone()),
                "core-0 window diverged from the plain system on {name} ({:?})",
                cfg.vsv.policy
            );
            assert_eq!(
                normalized(chip),
                normalized(plain),
                "chip aggregate diverged from the plain system on {name} ({:?})",
                cfg.vsv.policy
            );
            assert_eq!(
                chip_trace, plain_trace,
                "per-nanosecond mode trace diverged on {name} ({:?})",
                cfg.vsv.policy
            );
        }
    }
}

/// The runner's dispatch: `--cores 1` takes the pre-multicore path,
/// so results are byte-identical with fast-forward on or off.
#[test]
fn runner_with_cores_1_is_byte_identical() {
    for fast_forward in [true, false] {
        for name in ["mcf", "gzip"] {
            let params = twin(name).expect("twin exists");
            let cfg = SystemConfig::vsv_with_fsms().with_fast_forward(fast_forward);
            let before = Experiment::quick().run(&params, cfg);
            let after = Experiment::quick().run(&params, cfg.with_cores(1));
            assert_eq!(
                before, after,
                "cores = 1 changed the runner output on {name} (fast_forward = {fast_forward})"
            );
        }
    }
}

// ---- sweep-report digest --------------------------------------------

/// FNV-1a over a serialized report (the digest
/// `tests/sweep_report_golden.rs` pins its golden with).
fn digest(json: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Host wall-clock and the worker count are inputs, not results.
fn normalized_json(mut report: SweepReport) -> String {
    report.wall_ns = 0;
    report.workers = 0;
    for r in &mut report.records {
        r.wall_ns = 0;
    }
    serde_json::to_string_pretty(&report).expect("report serializes")
}

/// A multicore sweep — every record tagged with its `cores` — digests
/// identically serially and under four workers.
#[test]
fn multicore_sweep_digest_is_worker_count_independent() {
    let params: Vec<WorkloadParams> = TWIN_MIX
        .iter()
        .map(|n| twin(n).expect("twin exists"))
        .collect();
    let sweep = Sweep::over_cores(
        Experiment::quick(),
        &params,
        SystemConfig::vsv_with_fsms(),
        &[1, 2],
    );
    let serial = normalized_json(sweep.report(1));
    let parallel = normalized_json(sweep.report(4));
    assert_eq!(
        digest(&serial),
        digest(&parallel),
        "worker count changed the multicore sweep report"
    );
    assert!(
        serial.contains("\"cores\": 2"),
        "records must carry the cores axis"
    );
}

// ---- N = 2: determinism and real contention -------------------------

/// Two identical lockstep runs produce identical chips, and the chip
/// carries one window per core.
#[test]
fn two_core_runs_are_deterministic() {
    let params = twin("mcf").expect("twin exists");
    let e = Experiment::quick();
    let run = || -> RunResult {
        let cfg = SystemConfig::vsv_with_fsms().with_cores(2);
        let mut chip = MulticoreSystem::try_new(cfg, &params).expect("valid config");
        chip.try_warm_up(e.warmup_instructions).expect("warm-up");
        chip.try_run(e.instructions).expect("run")
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "lockstep must be deterministic");
    assert_eq!(a.core_results.len(), 2, "one window per core");
    assert_eq!(
        a.instructions,
        a.core_results.iter().map(|c| c.instructions).sum::<u64>(),
        "chip instructions are the sum of the per-core windows"
    );
}

/// Sharing one L2 is not free: each memory-bound co-runner's measured
/// window is at least as long as its solo (one-core chip) run, and
/// the pair's combined L2 pressure shows somewhere (at least one core
/// strictly slower than solo).
#[test]
fn two_memory_bound_cores_contend_on_the_shared_l2() {
    let params = twin("mcf").expect("twin exists");
    let e = Experiment::quick();
    let cfg = SystemConfig::vsv_with_fsms().with_fast_forward(false);
    let (solo, _) = run_chip_of_1(&params, cfg);
    let mut chip =
        MulticoreSystem::try_new(cfg.with_cores(2), &params).expect("valid two-core config");
    chip.try_warm_up(e.warmup_instructions).expect("warm-up");
    let shared = chip.try_run(e.instructions).expect("run");
    // Core 0 of the pair runs the *same stream* as the solo chip
    // (per-core reseeding starts at the base seed), so its window is
    // directly comparable.
    let core0 = &shared.core_results[0];
    assert!(
        core0.elapsed_ns >= solo.elapsed_ns,
        "contended core finished faster than solo ({} < {} ns)",
        core0.elapsed_ns,
        solo.elapsed_ns
    );
    assert!(
        shared
            .core_results
            .iter()
            .any(|c| c.elapsed_ns > solo.elapsed_ns),
        "two mcf streams on one L2 showed no contention at all"
    );
}

/// The typed rejection: a heterogeneous chip needs exactly one
/// parameter point per core.
#[test]
fn heterogeneous_chip_rejects_mismatched_parameter_lists() {
    let cfg = SystemConfig::vsv_with_fsms().with_cores(2);
    let one = [twin("mcf").expect("twin exists")];
    let err = MulticoreSystem::try_new_heterogeneous(cfg, &one).expect_err("1 point, 2 cores");
    assert!(
        matches!(err, SimError::InvalidConfig { .. }),
        "expected InvalidConfig, got {err:?}"
    );
}
