//! Golden regression for the `SweepReport` JSON wire format: the
//! report of a fixed 2-job quick sweep, with its (non-deterministic)
//! wall-clock fields zeroed, must serialize to a pinned digest. A
//! change to the report schema, to the JSON encoder, or to the
//! simulation itself must show up here as a deliberate golden update,
//! not a silent drift — same contract as `tests/golden_workloads.rs`.

use vsv::{Experiment, Sweep, SweepReport, SystemConfig};
use vsv_workloads::twin;

/// The fixed 2-job sweep: gzip under baseline and VSV-with-FSMs at
/// the quick scale.
fn quick_report() -> SweepReport {
    let sweep = Sweep::over_grid(
        Experiment::quick(),
        &[twin("gzip").expect("gzip exists")],
        &[SystemConfig::baseline(), SystemConfig::vsv_with_fsms()],
    );
    sweep.report(2)
}

/// Zeroes every wall-clock field: host timing is the only
/// non-deterministic part of a report.
fn strip_wall_clock(report: &mut SweepReport) {
    report.wall_ns = 0;
    for r in &mut report.records {
        r.wall_ns = 0;
    }
}

/// FNV-1a over the serialized report.
fn digest(json: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn pinned_json() -> String {
    let mut report = quick_report();
    strip_wall_clock(&mut report);
    serde_json::to_string_pretty(&report).expect("report serializes")
}

/// The pinned digest. If a simulation or schema change is *intended*,
/// regenerate with:
/// `cargo test -p vsv-repro --test sweep_report_golden -- --nocapture --ignored print_digest`
/// and update this constant.
// History:
// * reliability PR: `RunResult` gained `read_errors`/`read_retries`/
//   `slo` and `JobRecord` gained `slo` — all zero/null here (the
//   quick sweep runs with error rate 0 and no SLO), so the churn was
//   schema-only (0xb7f4_49f1_cc92_a476).
// * service-traffic PR: `RunResult` gained the six request fields
//   (`requests_arrived`/`requests_completed`/`request_backlog` and
//   the p50/p99/p999 latency percentiles) — all zero here (the quick
//   sweep attaches no traffic stream), so the churn is again
//   schema-only; every pre-existing value is bit-identical, pinned by
//   `tests/determinism.rs` and `tests/campaign_equivalence.rs`.
//   (0x306c_5cec_daae_1c1b)
// * multicore PR: `SystemConfig` gained the `cores` axis (part of the
//   config digest, so both digests changed), `JobRecord` gained the
//   `cores` field (1 here) and `RunResult` the `core_results` vector
//   (empty here — the quick sweep is single-core, which never routes
//   through the multicore path); every simulated value is
//   bit-identical, pinned by `tests/multicore_equivalence.rs`.
const PINNED_DIGEST: u64 = 0xca6d_6445_370e_ad75;

#[test]
fn report_json_matches_pinned_digest() {
    let got = digest(&pinned_json());
    assert_eq!(
        got, PINNED_DIGEST,
        "SweepReport JSON changed — deliberate schema/simulation change? \
         (new digest: {got:#018x})"
    );
}

#[test]
fn report_json_round_trips() {
    let mut report = quick_report();
    strip_wall_clock(&mut report);
    let json = serde_json::to_string(&report).expect("serializes");
    let back: SweepReport = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(report, back);
}

#[test]
fn report_shape_is_stable() {
    let report = quick_report();
    assert_eq!(report.jobs, 2);
    assert_eq!(report.workers, 2);
    assert_eq!(report.records.len(), 2);
    assert_eq!(report.records[0].workload, "gzip");
    assert_eq!(report.records[1].workload, "gzip");
    assert_ne!(
        report.records[0].config_digest, report.records[1].config_digest,
        "baseline and VSV configs must digest differently"
    );
    let v: serde_json::Value =
        serde_json::from_str(&serde_json::to_string(&report).expect("json")).expect("parses");
    for key in ["jobs", "workers", "wall_ns", "metrics", "records"] {
        assert!(v.get(key).is_some(), "missing top-level key {key}");
    }
    let first = &v
        .get("records")
        .and_then(|r| r.as_array())
        .expect("records")[0];
    for key in [
        "job",
        "workload",
        "config_digest",
        "policy",
        "ladder",
        "cores",
        "outcome",
        "metrics",
        "wall_ns",
    ] {
        assert!(first.get(key).is_some(), "missing record key {key}");
    }
    assert_eq!(
        first.get("policy").and_then(|p| p.as_str()),
        Some("disabled")
    );
    assert_eq!(
        first.get("ladder").and_then(|l| l.as_u64()),
        Some(2),
        "both jobs run the paper's two-rail (depth-2) ladder"
    );
    assert_eq!(
        v.get("records")
            .and_then(|r| r.as_array())
            .expect("records")[1]
            .get("policy")
            .and_then(|p| p.as_str()),
        Some("dual-fsm")
    );
}

#[test]
#[ignore = "helper: prints the digest for updating PINNED_DIGEST"]
fn print_digest() {
    println!("PINNED_DIGEST: {:#018x}", digest(&pinned_json()));
}
