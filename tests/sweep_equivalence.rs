//! Serial/parallel equivalence for the sweep engine: a [`Sweep`] with
//! one worker, a sweep with many workers, and a plain serial loop over
//! [`Experiment::run`] must produce bit-identical results, in the same
//! (grid) order, regardless of how the scheduler interleaves jobs.
//! This is the determinism guarantee DESIGN.md documents for the
//! engine; the field list matches `tests/determinism.rs`.

use vsv::{Experiment, RunResult, Sweep, SystemConfig};
use vsv_workloads::twin;

fn grid() -> (
    Experiment,
    Vec<vsv_workloads::WorkloadParams>,
    Vec<SystemConfig>,
) {
    let e = Experiment {
        warmup_instructions: 2_000,
        instructions: 8_000,
    };
    let twins = vec![
        twin("ammp").expect("ammp exists"),
        twin("gzip").expect("gzip exists"),
        twin("mcf").expect("mcf exists"),
    ];
    let configs = vec![
        SystemConfig::baseline(),
        SystemConfig::vsv_with_fsms(),
        SystemConfig::vsv_with_fsms().with_timekeeping(true),
    ];
    (e, twins, configs)
}

/// The bit-exactness contract from `tests/determinism.rs`.
fn assert_identical(a: &RunResult, b: &RunResult) {
    assert_eq!(a.elapsed_ns, b.elapsed_ns);
    assert_eq!(a.pipeline_cycles, b.pipeline_cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.mode, b.mode);
    assert_eq!(a.zero_issue_cycles, b.zero_issue_cycles);
    assert_eq!(a.mispredicts, b.mispredicts);
    assert!((a.energy_pj - b.energy_pj).abs() < 1e-6);
    assert!((a.mpki - b.mpki).abs() < 1e-12);
}

#[test]
fn one_worker_matches_serial_loop() {
    let (e, twins, configs) = grid();
    // The reference: a plain serial loop in grid (params-major) order.
    let mut serial = Vec::new();
    for p in &twins {
        for c in &configs {
            serial.push(e.run(p, *c));
        }
    }
    let swept = Sweep::over_grid(e, &twins, &configs).run(1);
    assert_eq!(serial.len(), swept.len());
    for (s, w) in serial.iter().zip(&swept) {
        assert_eq!(s.workload, w.workload, "grid order must match serial order");
        assert_identical(s, w);
    }
    // The derived structs are fully comparable too: nothing about
    // engine execution may perturb any field.
    assert_eq!(serial, swept);
}

#[test]
fn many_workers_match_one_worker() {
    let (e, twins, configs) = grid();
    let sweep = Sweep::over_grid(e, &twins, &configs);
    let one = sweep.run(1);
    for workers in [2, 4, 9] {
        let many = sweep.run(workers);
        assert_eq!(one.len(), many.len());
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(a.workload, b.workload, "order is scheduling-independent");
            assert_identical(a, b);
        }
        assert_eq!(one, many, "{workers} workers must be bit-identical to 1");
    }
}

/// Acceptance check for multi-core hosts: 4 workers must finish a
/// headline-shaped grid at least 2x faster than 1 worker. Ignored by
/// default because single-core CI boxes cannot demonstrate it; run
/// with `cargo test --test sweep_equivalence -- --ignored` on a
/// >= 4-core machine.
#[test]
#[ignore = "wall-clock speedup needs a >= 4-core host"]
fn four_workers_beat_one_by_2x() {
    assert!(
        std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get) >= 4,
        "this check is only meaningful on a >= 4-core host"
    );
    let e = Experiment {
        warmup_instructions: 10_000,
        instructions: 40_000,
    };
    let twins: Vec<_> = vsv_workloads::spec2k_twins();
    let configs = [SystemConfig::baseline(), SystemConfig::vsv_with_fsms()];
    let sweep = Sweep::over_grid(e, &twins, &configs);
    let serial_ns = sweep.report(1).wall_ns;
    let parallel_ns = sweep.report(4).wall_ns;
    assert!(
        parallel_ns * 2 <= serial_ns,
        "4 workers took {parallel_ns} ns vs {serial_ns} ns on 1 worker \
         (speedup {:.2}x < 2x)",
        serial_ns as f64 / parallel_ns as f64
    );
}

#[test]
fn reports_agree_on_everything_but_wall_clock() {
    let (e, twins, configs) = grid();
    let sweep = Sweep::over_grid(e, &twins, &configs);
    let a = sweep.report(1);
    let b = sweep.report(4);
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.workers, 1);
    assert_eq!(b.workers, 4);
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.job, rb.job);
        assert_eq!(ra.workload, rb.workload);
        assert_eq!(ra.config_digest, rb.config_digest);
        let (a, b) = (
            ra.result().expect("cell succeeded"),
            rb.result().expect("cell succeeded"),
        );
        assert_identical(a, b);
    }
}
