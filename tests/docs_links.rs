//! Link checker for the repository's markdown documentation: every
//! relative link target in the tracked docs must exist on disk. Keeps
//! cross-references (README ⇄ DESIGN ⇄ EXPERIMENTS ⇄
//! `docs/observability.md`) from silently rotting as files move —
//! part of the CI docs job. External (`://`, `mailto:`) links and
//! in-page `#anchors` are out of scope.

use std::path::{Path, PathBuf};

/// The documents whose links are checked, relative to the repo root.
const DOCS: &[&str] = &[
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGELOG.md",
];

/// Extracts inline markdown link targets — the `(target)` of
/// `[text](target)` — from one line. Deliberately simple: no nested
/// parentheses, no reference-style links (the docs use neither).
fn link_targets(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(close) = rest.find("](") {
        let after = &rest[close + 2..];
        if let Some(end) = after.find(')') {
            out.push(&after[..end]);
            rest = &after[end + 1..];
        } else {
            break;
        }
    }
    out
}

/// Checks every relative link in `doc` (a path relative to the repo
/// root), returning a list of broken-link descriptions.
fn broken_links(root: &Path, doc: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(root.join(doc))
        .unwrap_or_else(|e| panic!("read {}: {e}", doc.display()));
    let dir = doc.parent().unwrap_or_else(|| Path::new(""));
    let mut broken = Vec::new();
    let mut in_code_block = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_code_block = !in_code_block;
            continue;
        }
        if in_code_block {
            continue;
        }
        for target in link_targets(line) {
            // External links and pure in-page anchors are not checked.
            if target.contains("://") || target.starts_with("mailto:") {
                continue;
            }
            let path_part = target.split('#').next().unwrap_or("");
            if path_part.is_empty() {
                continue;
            }
            let resolved = root.join(dir).join(path_part);
            if !resolved.exists() {
                broken.push(format!(
                    "{}:{}: broken link `{target}` (resolved {})",
                    doc.display(),
                    lineno + 1,
                    resolved.display()
                ));
            }
        }
    }
    broken
}

#[test]
fn relative_links_in_docs_resolve() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut docs: Vec<PathBuf> = DOCS.iter().map(PathBuf::from).collect();
    // Everything under docs/ is checked without being listed by hand.
    let docs_dir = root.join("docs");
    let entries = std::fs::read_dir(&docs_dir).expect("docs/ exists");
    for entry in entries {
        let entry = entry.expect("readable docs/ entry");
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "md") {
            docs.push(PathBuf::from("docs").join(path.file_name().expect("file name")));
        }
    }
    let mut broken = Vec::new();
    for doc in &docs {
        broken.extend(broken_links(&root, doc));
    }
    assert!(
        broken.is_empty(),
        "broken documentation links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn link_extraction_handles_the_common_shapes() {
    assert_eq!(
        link_targets("see [a](x.md) and [b](y.md#sec), not (z.md)"),
        vec!["x.md", "y.md#sec"]
    );
    assert!(link_targets("no links here").is_empty());
}

#[test]
fn observability_doc_is_linked_from_readme_and_design() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    for doc in ["README.md", "DESIGN.md"] {
        let text = std::fs::read_to_string(root.join(doc)).expect("doc exists");
        assert!(
            text.contains("docs/observability.md"),
            "{doc} does not link docs/observability.md"
        );
    }
}
