//! Proves the quiescent-stall fast-forward is an *exact* optimisation:
//! with `SystemConfig::fast_forward` on or off, every workload in the
//! suite produces bit-identical [`RunResult`]s and bit-identical
//! per-nanosecond [`ModeTrace`]s, across the configuration grids of
//! all the bench bins (figure4/5/6/7, headline, table2, ablations) and
//! both FSM-threshold variants. Also pins the batch catch-up
//! primitives (FSM window drain, idle-cycle power accounting, leakage
//! span, controller edge math) against their per-cycle references.

use vsv::{DownPolicy, ModeTrace, RunResult, System, SystemConfig, UpPolicy, VsvController};
use vsv_power::{ActivitySample, PowerAccountant, PowerConfig};
use vsv_workloads::{high_mr_names, spec2k_twins, twin, WorkloadParams};

const WARMUP: u64 = 5_000;
const INSTS: u64 = 15_000;
const TRACE_CAP: usize = 1 << 16;

/// Runs `params` under `cfg` with the given fast-forward setting and
/// returns the measured window plus the full mode trace.
fn run_one(
    params: WorkloadParams,
    cfg: SystemConfig,
    fast_forward: bool,
) -> (RunResult, ModeTrace) {
    let mut sys = System::new(
        cfg.with_fast_forward(fast_forward),
        vsv_workloads::Generator::new(params),
    );
    sys.set_workload_name(params.name);
    sys.enable_trace(TRACE_CAP);
    sys.warm_up(WARMUP);
    let result = sys.run(INSTS);
    let trace = sys.take_trace().expect("tracing was on");
    (result, trace)
}

/// Asserts bit-identical results and traces for one (workload, config)
/// cell.
fn assert_equivalent(params: WorkloadParams, cfg: SystemConfig, label: &str) {
    let (on, trace_on) = run_one(params, cfg, true);
    let (off, trace_off) = run_one(params, cfg, false);
    assert_eq!(
        on, off,
        "RunResult diverged for {} under {label}",
        params.name
    );
    assert_eq!(
        trace_on, trace_off,
        "ModeTrace diverged for {} under {label}",
        params.name
    );
}

/// Figure 4 / headline / table2 grid: every SPEC2K twin under the
/// baseline and both FSM variants.
#[test]
fn all_twins_equivalent_under_core_configs() {
    for params in spec2k_twins() {
        assert_equivalent(params, SystemConfig::baseline(), "baseline");
        assert_equivalent(params, SystemConfig::vsv_without_fsms(), "vsv-without-fsms");
        assert_equivalent(params, SystemConfig::vsv_with_fsms(), "vsv-with-fsms");
    }
}

/// Figure 5 grid: down-policy thresholds 0/1/3/5 on high-MR twins.
#[test]
fn down_policy_grid_equivalent() {
    let twins: Vec<_> = high_mr_names()
        .iter()
        .take(3)
        .map(|n| twin(n).expect("high-MR twin exists"))
        .collect();
    let downs = [
        DownPolicy::Immediate,
        DownPolicy::Monitor {
            threshold: 1,
            period: 10,
        },
        DownPolicy::Monitor {
            threshold: 3,
            period: 10,
        },
        DownPolicy::Monitor {
            threshold: 5,
            period: 10,
        },
    ];
    for params in &twins {
        for down in downs {
            let mut cfg = SystemConfig::vsv_with_fsms();
            cfg.vsv.down = down;
            assert_equivalent(*params, cfg, &format!("down={down:?}"));
        }
    }
}

/// Figure 6 grid: up-policies First-R / Last-R / monitored 1/3/5 on
/// high-MR twins.
#[test]
fn up_policy_grid_equivalent() {
    let twins: Vec<_> = high_mr_names()
        .iter()
        .take(3)
        .map(|n| twin(n).expect("high-MR twin exists"))
        .collect();
    let ups = [
        UpPolicy::FirstReturn,
        UpPolicy::LastReturn,
        UpPolicy::Monitor {
            threshold: 1,
            period: 10,
        },
        UpPolicy::Monitor {
            threshold: 3,
            period: 10,
        },
        UpPolicy::Monitor {
            threshold: 5,
            period: 10,
        },
    ];
    for params in &twins {
        for up in ups {
            let mut cfg = SystemConfig::vsv_with_fsms();
            cfg.vsv.up = up;
            assert_equivalent(*params, cfg, &format!("up={up:?}"));
        }
    }
}

/// Figure 7 grid: Time-Keeping prefetching on, baseline and VSV. The
/// prefetch-harvest cap is what this exercises: skips must never jump
/// a decay-table scan.
#[test]
fn timekeeping_configs_equivalent() {
    let names = ["mcf", "art", "gzip"];
    for name in names {
        let params = twin(name).expect("twin exists");
        assert_equivalent(
            params,
            SystemConfig::baseline().with_timekeeping(true),
            "baseline+tk",
        );
        assert_equivalent(
            params,
            SystemConfig::vsv_with_fsms().with_timekeeping(true),
            "vsv+tk",
        );
    }
}

/// Ablations grid corners: nonzero leakage (per-ns accounting must
/// batch exactly) and DCG off (idle cycles charge full clock energy).
#[test]
fn ablation_configs_equivalent() {
    let params = twin("mcf").expect("twin exists");
    let mut leaky = SystemConfig::vsv_with_fsms();
    leaky.power = leaky.power.with_leakage(4.0);
    assert_equivalent(params, leaky, "leakage-4w");

    let mut no_dcg = SystemConfig::vsv_with_fsms();
    no_dcg.power.dcg_enabled = false;
    assert_equivalent(params, no_dcg, "dcg-off");

    let mut per_unit = SystemConfig::vsv_with_fsms();
    per_unit.power.dcg_model = vsv_power::DcgModel::PerUnit;
    assert_equivalent(params, per_unit, "dcg-per-unit");
}

// ---- batch catch-up primitives vs per-cycle references -------------

/// `UpFsm::skip_idle_cycles(n)` must equal `n` calls to `on_cycle(0)`
/// whenever the caller-side guard (`would_trigger_on_idle`) holds.
#[test]
fn up_fsm_batch_matches_loop() {
    use vsv::UpFsm;
    for threshold in [1u32, 3, 5] {
        for outstanding in [1usize, 4] {
            for n in [1u64, 5, 9, 10, 11, 200] {
                let policy = UpPolicy::Monitor {
                    threshold,
                    period: 10,
                };
                let mut batched = UpFsm::new(policy);
                let mut stepped = UpFsm::new(policy);
                assert!(!batched.on_return(outstanding));
                assert!(!stepped.on_return(outstanding));
                assert!(!batched.would_trigger_on_idle());
                batched.skip_idle_cycles(n);
                for _ in 0..n {
                    assert!(!stepped.on_cycle(0), "threshold>0 never fires on idle");
                }
                assert_eq!(
                    batched.is_armed(),
                    stepped.is_armed(),
                    "t={threshold} n={n}"
                );
                assert_eq!(
                    batched.expiries(),
                    stepped.expiries(),
                    "t={threshold} n={n}"
                );
                assert_eq!(batched.triggers(), stepped.triggers());
                // Post-skip behaviour must also agree: feed an issuing
                // burst and compare trigger decisions cycle by cycle.
                for issued in [1u32, 1, 1, 1, 1] {
                    assert_eq!(batched.on_cycle(issued), stepped.on_cycle(issued));
                }
            }
        }
    }
}

/// `PowerAccountant::record_idle_cycles(n, vdd)` must equal `n` calls
/// to `record_cycle` with an all-zero activity sample, bit for bit.
#[test]
fn idle_cycle_power_batch_matches_loop() {
    for vdd in [1.8f64, 1.2] {
        for n in [1u64, 7, 64, 1000] {
            let mut batched = PowerAccountant::new(PowerConfig::baseline());
            let mut stepped = PowerAccountant::new(PowerConfig::baseline());
            let zero: ActivitySample = Default::default();
            batched.record_idle_cycles(n, vdd);
            for _ in 0..n {
                stepped.record_cycle(&zero, vdd);
            }
            assert_eq!(
                batched.total_energy_pj().to_bits(),
                stepped.total_energy_pj().to_bits(),
                "vdd={vdd} n={n}"
            );
            assert_eq!(batched.breakdown(), stepped.breakdown());
        }
    }
    // DCG off: idle cycles charge the full clock energy.
    let mut cfg = PowerConfig::baseline();
    cfg.dcg_enabled = false;
    let mut batched = PowerAccountant::new(cfg);
    let mut stepped = PowerAccountant::new(cfg);
    let zero: ActivitySample = Default::default();
    batched.record_idle_cycles(500, 1.2);
    for _ in 0..500 {
        stepped.record_cycle(&zero, 1.2);
    }
    assert_eq!(
        batched.total_energy_pj().to_bits(),
        stepped.total_energy_pj().to_bits()
    );
}

/// `PowerAccountant::record_leakage_span(ns, vdd)` must equal `ns`
/// calls to `record_leakage_ns`, bit for bit — including the nonzero
/// leakage extension.
#[test]
fn leakage_span_batch_matches_loop() {
    for watts in [0.0f64, 4.0, 8.0] {
        for vdd in [1.8f64, 1.2, 1.456] {
            let cfg = PowerConfig::baseline().with_leakage(watts);
            let mut batched = PowerAccountant::new(cfg);
            let mut stepped = PowerAccountant::new(cfg);
            batched.record_leakage_span(777, vdd);
            for _ in 0..777 {
                stepped.record_leakage_ns(vdd);
            }
            assert_eq!(
                batched.total_energy_pj().to_bits(),
                stepped.total_energy_pj().to_bits(),
                "watts={watts} vdd={vdd}"
            );
        }
    }
}

/// `VsvController::skip_quiescent` must advance the edge schedule,
/// residency counters and (in low mode) the up-FSM window exactly as a
/// per-nanosecond tick/on-cycle loop over the same idle window would.
#[test]
fn controller_skip_matches_ticked_loop() {
    use vsv::VsvConfig;
    // A controller held in Low with one miss outstanding and an open
    // up window: drive both copies to the same state, then batch one
    // and step the other.
    let into_low = |cfg: VsvConfig| {
        let mut c = VsvController::new(cfg);
        c.observe(&vsv_mem::VsvSignal::L2MissDetected {
            demand: true,
            at: 0,
            earliest_return: None,
        });
        for now in 0..40 {
            let plan = c.tick(now, 2);
            if plan.pipeline_edge {
                c.on_cycle(now, 0);
            }
        }
        c.observe(&vsv_mem::VsvSignal::L2MissReturned {
            demand: true,
            at: 40,
            outstanding_demand: 1,
        });
        c
    };
    for ns in [1u64, 2, 3, 17, 40] {
        let mut batched = into_low(VsvConfig::with_fsms());
        let mut stepped = batched.clone();
        assert!(batched.quiescent_skip_allowed(1));
        let from = 40u64;
        let (edges, vdd) = batched.skip_quiescent(from, ns);
        let mut stepped_edges = 0u64;
        for now in from..from + ns {
            let plan = stepped.tick(now, 1);
            assert_eq!(plan.vdd.to_bits(), vdd.to_bits());
            if plan.pipeline_edge {
                stepped_edges += 1;
                stepped.on_cycle(now, 0);
            }
        }
        assert_eq!(edges, stepped_edges, "ns={ns}");
        assert_eq!(batched.next_edge(), stepped.next_edge(), "ns={ns}");
        assert_eq!(batched.stats(), stepped.stats(), "ns={ns}");
        assert_eq!(batched.mode(), stepped.mode());
        assert_eq!(
            batched.policy_stats().up_expiries,
            stepped.policy_stats().up_expiries
        );
    }
    // Disabled controller (the baseline): pure edge arithmetic.
    for ns in [1u64, 9, 100] {
        let mut batched = VsvController::new(VsvConfig::disabled());
        let mut stepped = VsvController::new(VsvConfig::disabled());
        // Consume a few ticks so next_edge is mid-schedule.
        for now in 0..5 {
            let _ = batched.tick(now, 0);
            let _ = stepped.tick(now, 0);
        }
        assert!(batched.quiescent_skip_allowed(0));
        let (edges, _) = batched.skip_quiescent(5, ns);
        let mut stepped_edges = 0u64;
        for now in 5..5 + ns {
            if stepped.tick(now, 0).pipeline_edge {
                stepped_edges += 1;
            }
        }
        assert_eq!(edges, stepped_edges, "ns={ns}");
        assert_eq!(batched.next_edge(), stepped.next_edge());
        assert_eq!(batched.stats(), stepped.stats());
    }
}
