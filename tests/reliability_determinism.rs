//! Determinism contract for the low-voltage reliability layer
//! (`DESIGN.md` §13): the counter-based error PRNG keys every draw on
//! the read's (address, time) coordinates, never on execution order,
//! so
//!
//! 1. a fixed seed reproduces bit-identical results — including
//!    `read_errors`/`read_retries` and the SLO judgment — across
//!    repeated runs and across sweep worker counts;
//! 2. quiescent-stall fast-forward stays an *exact* optimisation with
//!    the error model on: results and JSONL trace bytes agree with
//!    the non-skipping run;
//! 3. error rate 0 is free: the run (and its trace) is bit-identical
//!    to one that never heard of the error model.

use vsv::{Experiment, PolicySpec, SloSpec, Sweep, SystemConfig, TraceLevel};
use vsv_workloads::twin;

const ERROR_RATE: f64 = 0.05;
const ERROR_SEED: u64 = 7;

fn experiment() -> Experiment {
    Experiment {
        warmup_instructions: 10_000,
        instructions: 30_000,
    }
}

/// Memory-bound twin: plenty of low-voltage residency, so the error
/// path actually fires.
fn params() -> vsv_workloads::WorkloadParams {
    twin("mcf").expect("mcf exists")
}

fn slo() -> SloSpec {
    SloSpec::new(10_000, 8)
}

/// A VSV config with the error model armed.
fn erroring(cfg: SystemConfig) -> SystemConfig {
    cfg.with_error_rate(ERROR_RATE)
        .with_error_seed(ERROR_SEED)
        .with_slo(Some(slo()))
}

#[test]
fn fixed_seed_reproduces_retry_counts_and_trace_bytes() {
    let e = experiment();
    let cfg = erroring(SystemConfig::vsv_with_fsms());
    let (r1, m1, t1) = e
        .try_run_traced(&params(), cfg, TraceLevel::Events, None)
        .expect("first run");
    let (r2, m2, t2) = e
        .try_run_traced(&params(), cfg, TraceLevel::Events, None)
        .expect("second run");
    assert!(r1.read_errors > 0, "error path never fired — dead test");
    assert!(r1.read_retries >= r1.read_errors);
    assert!(r1.slo.is_some(), "SLO judgment missing");
    assert_eq!(r1, r2, "results diverged under a fixed error seed");
    assert_eq!(m1, m2, "metrics diverged under a fixed error seed");
    assert_eq!(t1, t2, "trace bytes diverged under a fixed error seed");
}

#[test]
fn erroring_sweep_is_worker_count_independent() {
    let sweep = Sweep::over_grid(
        experiment(),
        &[params(), twin("ammp").expect("ammp exists")],
        &[
            erroring(SystemConfig::vsv_with_fsms()),
            erroring(SystemConfig::with_policy(PolicySpec::ErrorBackoff)),
        ],
    );
    let (mut rep1, traces1) = sweep.report_traced(1, TraceLevel::Events);
    let (mut rep4, traces4) = sweep.report_traced(4, TraceLevel::Events);
    assert_eq!(traces1, traces4, "per-job trace bytes depend on workers");
    rep1.wall_ns = 0;
    rep4.wall_ns = 0;
    rep1.workers = 0;
    rep4.workers = 0;
    for r in rep1.records.iter_mut().chain(rep4.records.iter_mut()) {
        r.wall_ns = 0;
    }
    assert_eq!(rep1, rep4, "reports diverged across worker counts");
    let retried = rep1
        .into_results()
        .iter()
        .map(|r| r.read_retries)
        .fold(0u64, u64::saturating_add);
    assert!(retried > 0, "no cell ever retried — dead test");
}

#[test]
fn fast_forward_is_exact_under_errors() {
    let e = experiment();
    for (label, cfg) in [
        ("dual-fsm", erroring(SystemConfig::vsv_with_fsms())),
        (
            "error-backoff",
            erroring(SystemConfig::with_policy(PolicySpec::ErrorBackoff)),
        ),
    ] {
        let (on, m_on, t_on) = e
            .try_run_traced(
                &params(),
                cfg.with_fast_forward(true),
                TraceLevel::Events,
                None,
            )
            .expect("ff-on run");
        let (off, m_off, t_off) = e
            .try_run_traced(
                &params(),
                cfg.with_fast_forward(false),
                TraceLevel::Events,
                None,
            )
            .expect("ff-off run");
        assert!(on.read_errors > 0, "{label}: error path never fired");
        assert_eq!(on, off, "{label}: results diverged with fast-forward");
        // The ff-on stream differs only in fast-forward's own
        // artifacts, both pre-dating the error model: `FastForward`
        // marker events, and `FsmExpired{Up}` timestamps quantized
        // to batch boundaries. The error model must contribute zero
        // divergence: every reliability event byte-identical.
        let reliability_lines = |bytes: &[u8]| -> String {
            String::from_utf8(bytes.to_vec())
                .expect("trace is UTF-8")
                .lines()
                .filter(|l| {
                    ["ReadError", "RetryExhausted", "BackoffEngaged"]
                        .iter()
                        .any(|k| l.starts_with(&format!("{{\"{k}\"")))
                })
                .fold(String::new(), |mut s, l| {
                    s.push_str(l);
                    s.push('\n');
                    s
                })
        };
        let (rel_on, rel_off) = (reliability_lines(&t_on), reliability_lines(&t_off));
        assert!(
            !rel_on.is_empty(),
            "{label}: no reliability events traced — dead test"
        );
        assert_eq!(
            rel_on, rel_off,
            "{label}: reliability trace bytes diverged with fast-forward"
        );
        // The registries differ only in the fast-forward accounting
        // itself; every reliability counter must agree exactly.
        for id in [
            vsv::CounterId::ReadErrors,
            vsv::CounterId::ReadRetries,
            vsv::CounterId::BackoffVetoes,
            vsv::CounterId::SloViolations,
        ] {
            assert_eq!(
                m_on.get(id),
                m_off.get(id),
                "{label}: {id:?} diverged with fast-forward"
            );
        }
    }
}

#[test]
fn error_rate_zero_is_the_unperturbed_run() {
    let e = experiment();
    let plain = SystemConfig::vsv_with_fsms();
    let zeroed = SystemConfig::vsv_with_fsms()
        .with_error_rate(0.0)
        .with_error_seed(ERROR_SEED);
    let (r_plain, m_plain, t_plain) = e
        .try_run_traced(&params(), plain, TraceLevel::Events, None)
        .expect("plain run");
    let (r_zero, m_zero, t_zero) = e
        .try_run_traced(&params(), zeroed, TraceLevel::Events, None)
        .expect("zero-rate run");
    assert_eq!(r_zero.read_errors, 0);
    assert_eq!(r_zero.read_retries, 0);
    assert_eq!(r_plain, r_zero, "error rate 0 perturbed the simulation");
    assert_eq!(m_plain, m_zero, "error rate 0 perturbed the metrics");
    assert_eq!(t_plain, t_zero, "error rate 0 perturbed the trace bytes");
}

#[test]
fn always_high_never_errors() {
    // `always-high` never leaves VDDH, where the error curve is
    // *exactly* zero — the structural reliability ceiling the
    // frontier bench leans on.
    let e = experiment();
    let r = e
        .try_run(
            &params(),
            erroring(SystemConfig::with_policy(PolicySpec::AlwaysHigh)),
        )
        .expect("always-high run");
    assert_eq!(r.read_errors, 0, "errors at VDDH");
    assert_eq!(r.read_retries, 0);
    let s = r.slo.expect("SLO judgment present");
    assert!(s.compliant, "a zero-exposure run must meet any SLO");
    assert_eq!(s.retry_rate_ppm, 0);
}
