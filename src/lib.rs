//! Umbrella crate for the VSV reproduction workspace.
//!
//! This package exists to host the cross-crate integration tests
//! (`tests/`) and the runnable examples (`examples/`); the library
//! surface is in the member crates, re-exported here for convenience:
//!
//! * [`vsv`] — the paper's contribution (FSMs, controller, system);
//! * [`vsv_workloads`] — the synthetic SPEC2K twins;
//! * [`vsv_uarch`], [`vsv_mem`], [`vsv_power`], [`vsv_prefetch`] — the
//!   substrates;
//! * [`vsv_viz`] — SVG figure rendering.
//!
//! Start from the [`vsv`] crate's documentation or the repository
//! README.

#![forbid(unsafe_code)]

pub use vsv;
pub use vsv_isa;
pub use vsv_mem;
pub use vsv_power;
pub use vsv_prefetch;
pub use vsv_uarch;
pub use vsv_viz;
pub use vsv_workloads;
