//! Build a *custom* workload (not one of the SPEC2K twins) and watch
//! VSV react as the workload walks into the memory wall.
//!
//! We sweep the far-access rate of a pointer-chasing kernel from
//! compute-bound to memory-bound and report, at each point, the
//! baseline stall fraction, VSV's low-power residency, and the
//! power/performance trade-off — the crossover the paper's Figure 4
//! shows between its left (high-MR) and right (low-MR) sections.
//!
//! ```text
//! cargo run --release --example memory_wall
//! ```

use vsv::{Comparison, Experiment, SystemConfig};
use vsv_workloads::{AccessPattern, WorkloadParams};

fn main() {
    println!("memory-wall sweep: pointer chase with rising far-access rate\n");
    println!(
        "{:>9} | {:>6} {:>6} {:>7} | {:>7} {:>8} {:>8}",
        "far frac", "IPC", "MR", "stall%", "lowres%", "power%", "perf%"
    );
    println!("{}", "-".repeat(66));

    let e = Experiment {
        warmup_instructions: 50_000,
        instructions: 150_000,
    };
    for step in 0..7 {
        let far = [0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2][step];
        let mut p = WorkloadParams::compute_bound("memory-wall");
        p.working_set_bytes = 32 * 1024 * 1024;
        p.pattern = AccessPattern::PermutationChase;
        p.far_fraction = far;
        p.chase_dependency = 0.8;
        p.miss_dependency = 1.0;
        p.ilp_chains = 2;

        let base = e.run(&p, SystemConfig::baseline());
        let vsv_run = e.run(&p, SystemConfig::vsv_with_fsms());
        let cmp = Comparison::of(&base, &vsv_run);
        println!(
            "{:>9.3} | {:>6.2} {:>6.1} {:>6.0}% | {:>6.0}% {:>7.1}% {:>7.1}%",
            far,
            base.ipc,
            base.mpki,
            base.zero_issue_fraction() * 100.0,
            vsv_run.mode.low_residency() * 100.0,
            cmp.power_saving_pct,
            cmp.perf_degradation_pct
        );
    }
    println!("{}", "-".repeat(66));
    println!(
        "\nreading: once the chase leaves the L2 (MR rises), the pipeline\n\
         stalls, VSV's residency tracks the stall fraction, and power\n\
         savings grow while degradation stays small — the paper's key\n\
         claim, reproduced on a workload of your own."
    );
}
