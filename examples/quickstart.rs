//! Quickstart: run one SPEC2K twin under the baseline and under VSV,
//! and print the paper's two metrics plus the Table 1 configuration.
//!
//! ```text
//! cargo run --release --example quickstart [twin-name]
//! ```

use vsv::{Comparison, Experiment, SystemConfig};
use vsv_workloads::twin;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ammp".to_owned());
    let Some(params) = twin(&name) else {
        eprintln!("unknown twin '{name}'; try one of the SPEC2K names (e.g. mcf, ammp, applu)");
        std::process::exit(1);
    };

    // Print the Table 1 baseline the simulator implements.
    let cfg = SystemConfig::baseline();
    println!("== Table 1 baseline ==");
    println!(
        "core   : {}-way issue, {} RUU, {} LSQ, {}+{} int / {}+{} fp units, {}-cycle mispredict",
        cfg.core.issue_width,
        cfg.core.ruu_entries,
        cfg.core.lsq_entries,
        cfg.core.int_alu_units,
        cfg.core.int_muldiv_units,
        cfg.core.fp_alu_units,
        cfg.core.fp_muldiv_units,
        cfg.core.mispredict_penalty
    );
    println!(
        "caches : {} KB L1 I/D ({}-cycle), {} MB L2 ({} ns), MSHRs {}/{}/{}",
        cfg.mem.l1d.capacity_bytes / 1024,
        cfg.mem.l1d.hit_latency,
        cfg.mem.l2.capacity_bytes / 1024 / 1024,
        cfg.mem.l2.hit_latency,
        cfg.mem.il1_mshrs,
        cfg.mem.dl1_mshrs,
        cfg.mem.l2_mshrs
    );
    println!(
        "memory : {} ns DRAM behind a {}-byte bus ({} ns occupancy)",
        cfg.mem.dram.latency_ns, cfg.mem.bus.width_bytes, cfg.mem.bus.occupancy_ns
    );
    println!(
        "vsv    : VDDH {} V / VDDL {} V, {} ns ramps, 66 nJ per ramp\n",
        cfg.power.tech.vddh,
        cfg.power.tech.vddl,
        cfg.power.tech.ramp_time_ns()
    );

    // Run the twin under the baseline and under VSV with the FSMs.
    let e = Experiment::standard();
    println!(
        "running '{name}' ({} warm-up + {} measured instructions)...",
        e.warmup_instructions, e.instructions
    );
    let base = e.run(&params, SystemConfig::baseline());
    let vsv_run = e.run(&params, SystemConfig::vsv_with_fsms());
    let cmp = Comparison::of(&base, &vsv_run);

    println!("\n== baseline ==");
    println!("IPC (full-speed cycles) : {:.2}", base.ipc);
    println!("L2 demand misses / 1k   : {:.1}", base.mpki);
    println!(
        "zero-issue cycles       : {:.0}%",
        base.zero_issue_fraction() * 100.0
    );
    println!("average power           : {:.1} W", base.avg_power_w);

    println!("\n== VSV (down-FSM 3/10, up-FSM 3/10) ==");
    println!("average power           : {:.1} W", vsv_run.avg_power_w);
    println!(
        "low-power residency     : {:.0}%",
        vsv_run.mode.low_residency() * 100.0
    );
    println!(
        "mode transitions        : {} down / {} up",
        vsv_run.mode.down_transitions, vsv_run.mode.up_transitions
    );

    println!("\n== VSV vs. baseline (the paper's Figure 4 metrics) ==");
    println!("power saving            : {:.1}%", cmp.power_saving_pct);
    println!("performance degradation : {:.1}%", cmp.perf_degradation_pct);

    println!("\n== where the energy goes (VSV run) ==");
    print!("{}", vsv_run.energy.table());

    println!("issue-rate distribution (baseline), the FSMs' raw signal:");
    for n in 0..=8 {
        let frac = base.issue_histogram.fraction(n);
        let bar = "#".repeat((frac * 50.0).round() as usize);
        println!("  {n} issued: {:>5.1}%  {bar}", frac * 100.0);
    }
}
