//! Drive the simulator below the `Experiment` convenience layer: build
//! a [`System`] by hand over a hand-written instruction stream, single
//! -step the nanosecond clock, and watch the VSV controller's mode
//! trajectory around one L2 miss — the paper's Figure 2/3 timelines,
//! live.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use vsv::{Mode, System, SystemConfig, UpPolicy};
use vsv_isa::{Addr, ArchReg, FnStream, Inst, Pc};

fn main() {
    // A tiny kernel: one cold load to far memory, then a dependent
    // chain, looping over fresh far blocks so every lap misses the L2.
    let mut i: u64 = 0;
    let stream = FnStream::new(move || {
        let n = i;
        i += 1;
        let lap = n / 64;
        let slot = n % 64;
        let pc = Pc(slot * 4);
        Some(match slot {
            0 => Inst::load(pc, ArchReg::int(1), Addr(0x1000_0000 + lap * 4096)),
            63 => Inst::nop(pc),
            _ => Inst::alu(pc, ArchReg::int(1), &[ArchReg::int(1)]),
        })
    });

    // Last-R keeps the processor low until every miss returns —
    // maximum savings, the aggressive end of Figure 6's spectrum.
    let mut cfg = SystemConfig::vsv_with_fsms();
    cfg.vsv.up = UpPolicy::LastReturn;
    let mut sys = System::new(cfg, stream);
    sys.set_workload_name("figure-2-3-live");

    // Warm the caches for a few laps, then single-step and narrate.
    sys.warm_up(2_000);
    println!("mode trajectory around one miss epoch (1 line per mode change):\n");
    let mut last_mode = sys.controller().mode();
    let t0 = sys.now();
    let mut changes = 0;
    while changes < 14 {
        sys.step_ns(); // one nanosecond at a time: no boundary is missed
        let mode = sys.controller().mode();
        if mode != last_mode {
            changes += 1;
            println!(
                "t = {:>5} ns : {:?} -> {:?}",
                sys.now() - t0,
                last_mode,
                mode
            );
            last_mode = mode;
        }
    }

    println!("\nFigure 2 says a down transition is: ≤10 cycles of monitoring,");
    println!("4 ns of control/clock-tree distribution (still full speed),");
    println!("then a 12 ns ramp at half speed; Figure 3's way up is 2 ns of");
    println!("distribution plus a 12 ns ramp, with the fast clock overlapped.");
    println!("The trajectory above walks exactly those states:");
    for m in Mode::ALL {
        println!("  {:?}: clock period {} ns", m, m.clock_period_ns());
    }
}
