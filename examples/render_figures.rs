//! Render publication-style artifacts without leaving Rust: a
//! Figure 4-style grouped bar chart over a few twins and a Figure 2/3
//! mode/voltage timeline, both as dependency-free SVG.
//!
//! ```text
//! cargo run --release --example render_figures [output-dir]
//! ```

use vsv::{Comparison, Experiment, System, SystemConfig};
use vsv_viz::{GroupedBarChart, TimelineChart};
use vsv_workloads::{twin, Generator};

fn main() {
    let out_dir = std::path::PathBuf::from(
        std::env::args()
            .nth(1)
            .unwrap_or_else(|| "target/figures".to_owned()),
    );
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    // --- a small Figure 4 over three representative twins ---
    let e = Experiment {
        warmup_instructions: 40_000,
        instructions: 80_000,
    };
    let mut rows = Vec::new();
    for name in ["mcf", "ammp", "applu", "gzip"] {
        let params = twin(name).expect("twin exists");
        let base = e.run(&params, SystemConfig::baseline());
        let no_fsm = e.run(&params, SystemConfig::vsv_without_fsms());
        let fsm = e.run(&params, SystemConfig::vsv_with_fsms());
        rows.push((
            name,
            Comparison::of(&base, &no_fsm).power_saving_pct,
            Comparison::of(&base, &fsm).power_saving_pct,
        ));
        println!("{name}: ran 3 configurations");
    }
    let chart = GroupedBarChart::new("CPU power savings (%)")
        .series(
            "without FSMs",
            &rows.iter().map(|(n, a, _)| (*n, *a)).collect::<Vec<_>>(),
        )
        .series(
            "with FSMs",
            &rows.iter().map(|(n, _, b)| (*n, *b)).collect::<Vec<_>>(),
        );
    let bar_path = out_dir.join("mini_figure4.svg");
    std::fs::write(&bar_path, chart.render()).expect("write svg");
    println!("wrote {}", bar_path.display());

    // --- a Figure 2/3 timeline from a live trace ---
    let mut sys = System::new(
        SystemConfig::vsv_with_fsms(),
        Generator::new(twin("ammp").expect("twin exists")),
    );
    sys.enable_trace(600);
    sys.warm_up(20_000);
    let _ = sys.run(20_000);
    let trace = sys.take_trace().expect("tracing enabled");
    let tl_path = out_dir.join("timeline.svg");
    std::fs::write(&tl_path, TimelineChart::new(&trace).render()).expect("write svg");
    println!("wrote {}", tl_path.display());
    println!(
        "\nthe timeline's coloured bands are the controller states; the\n\
         black curve is the pipeline-domain VDD walking the Figure 2/3\n\
         ramps between 1.8 V and 1.2 V."
    );
}
