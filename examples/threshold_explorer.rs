//! Explore the FSM threshold space on one workload: every combination
//! of down-threshold × up-policy, printed as a power/performance grid.
//! This generalises the paper's Figures 5 and 6 into a single view.
//!
//! ```text
//! cargo run --release --example threshold_explorer [twin-name]
//! ```

use vsv::{Comparison, DownPolicy, Experiment, SystemConfig, UpPolicy};
use vsv_viz::{TradeoffChart, TradeoffPoint};
use vsv_workloads::twin;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "lucas".to_owned());
    let Some(params) = twin(&name) else {
        eprintln!("unknown twin '{name}'");
        std::process::exit(1);
    };
    let e = Experiment {
        warmup_instructions: 50_000,
        instructions: 150_000,
    };
    let base = e.run(&params, SystemConfig::baseline());
    println!(
        "threshold grid for '{name}' (baseline IPC {:.2}, MR {:.1})\n",
        base.ipc, base.mpki
    );

    let downs = [
        ("down=imm", DownPolicy::Immediate),
        (
            "down=1",
            DownPolicy::Monitor {
                threshold: 1,
                period: 10,
            },
        ),
        (
            "down=3",
            DownPolicy::Monitor {
                threshold: 3,
                period: 10,
            },
        ),
        (
            "down=5",
            DownPolicy::Monitor {
                threshold: 5,
                period: 10,
            },
        ),
    ];
    let ups = [
        ("up=First-R", UpPolicy::FirstReturn),
        (
            "up=1",
            UpPolicy::Monitor {
                threshold: 1,
                period: 10,
            },
        ),
        (
            "up=3",
            UpPolicy::Monitor {
                threshold: 3,
                period: 10,
            },
        ),
        (
            "up=5",
            UpPolicy::Monitor {
                threshold: 5,
                period: 10,
            },
        ),
        ("up=Last-R", UpPolicy::LastReturn),
    ];

    print!("{:>10} |", "");
    for (ul, _) in &ups {
        print!(" {ul:>14}");
    }
    println!("\n{}", "-".repeat(12 + 15 * ups.len()));
    let mut chart = TradeoffChart::new();
    for (dl, down) in &downs {
        print!("{dl:>10} |");
        let mut curve = Vec::new();
        for (ul, up) in &ups {
            let mut cfg = SystemConfig::vsv_with_fsms();
            cfg.vsv.down = *down;
            cfg.vsv.up = *up;
            let run = e.run(&params, cfg);
            let c = Comparison::of(&base, &run);
            print!(
                " {:>6.1}w/{:>5.1}p",
                c.power_saving_pct, c.perf_degradation_pct
            );
            curve.push(TradeoffPoint {
                label: (*ul).to_owned(),
                perf_pct: c.perf_degradation_pct,
                power_pct: c.power_saving_pct,
            });
        }
        chart = chart.curve(*dl, curve);
        println!();
    }
    let svg_path = format!("target/{name}_tradeoff.svg");
    if std::fs::create_dir_all("target").is_ok()
        && std::fs::write(&svg_path, chart.render()).is_ok()
    {
        println!("\n(trade-off frontier written to {svg_path})");
    }
    println!(
        "\ncells are power-saving% / performance-degradation%. Expect power\n\
         to grow toward (down=imm, up=Last-R) and degradation to shrink\n\
         toward (down=5, up=First-R); the paper picks (3, 3)."
    );
}
