//! Always-on, allocation-free run metrics: a fixed catalog of
//! counters plus two small histograms, owned by one simulation and
//! merged deterministically across sweep workers.
//!
//! Every [`crate::System`] carries one [`MetricsRegistry`] and bumps
//! it at event sites only (an L2 miss, a supply ramp, a fast-forward
//! batch) — never per simulated nanosecond — so the registry costs
//! nothing on the hot path. The registry is plain data: no locks, no
//! atomics. Sweep parallelism gets "lock-free" aggregation by
//! *ownership*: each worker thread owns the registries of the jobs it
//! ran, and [`crate::Sweep`] merges them single-threaded, in grid
//! order, when it assembles the [`crate::SweepReport`] — so the
//! merged totals are bit-identical for any worker count.
//!
//! The full schema (units, emission sites) is documented in
//! `docs/observability.md`.

/// The fixed counter catalog. Adding a counter is a schema change:
/// update `docs/observability.md` and regenerate
/// `tests/sweep_report_golden.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterId {
    /// High→low transitions started (measured window).
    DownTransitions,
    /// Low→high transitions started (measured window).
    UpTransitions,
    /// Supply ramps begun (each pays the 66 nJ dual-network charge);
    /// counts both ramp directions.
    SupplyRamps,
    /// L2 *demand* misses detected (one hit-latency after reaching
    /// the L2).
    DemandMissDetects,
    /// L2 misses caused purely by prefetches.
    PrefetchMissDetects,
    /// L2 miss returns delivered to the processor.
    MissReturns,
    /// Ramp-down decisions the policy emitted
    /// ([`crate::PolicyStats::down_triggers`] over the window).
    PolicyDownFires,
    /// Ramp-down opportunities the policy examined and declined
    /// ([`crate::PolicyStats::down_expiries`] over the window).
    PolicyDownDeclines,
    /// Ramp-up decisions the policy emitted.
    PolicyUpFires,
    /// Ramp-up opportunities the policy examined and declined.
    PolicyUpDeclines,
    /// Quiescent-stall fast-forward batches taken.
    FastForwardBatches,
    /// Simulated nanoseconds covered by fast-forward batches.
    FastForwardNs,
    /// Trace events delivered to the attached
    /// [`crate::trace::TraceSink`] (0 when tracing is off).
    TraceEvents,
    /// Measurement windows closed.
    Windows,
    /// Low-voltage read errors detected (every failed delivery
    /// attempt, including the final attempt of an escalated read).
    ReadErrors,
    /// Retries issued after a detected read error.
    ReadRetries,
    /// Ramp-down decisions the `error-backoff` policy suppressed while
    /// engaged (dives vetoed to protect correctness).
    BackoffVetoes,
    /// Measurement windows that violated the configured
    /// [`crate::SloSpec`].
    SloViolations,
    /// Open-loop requests that arrived (traffic scenarios only).
    RequestsArrived,
    /// Open-loop requests that completed service.
    RequestsCompleted,
    /// MMPP ON (burst) phases begun.
    BurstStarts,
}

impl CounterId {
    /// Number of counters (the array length).
    pub const COUNT: usize = 21;

    /// All counters, in [`CounterId::index`] order.
    pub const ALL: [CounterId; CounterId::COUNT] = [
        CounterId::DownTransitions,
        CounterId::UpTransitions,
        CounterId::SupplyRamps,
        CounterId::DemandMissDetects,
        CounterId::PrefetchMissDetects,
        CounterId::MissReturns,
        CounterId::PolicyDownFires,
        CounterId::PolicyDownDeclines,
        CounterId::PolicyUpFires,
        CounterId::PolicyUpDeclines,
        CounterId::FastForwardBatches,
        CounterId::FastForwardNs,
        CounterId::TraceEvents,
        CounterId::Windows,
        CounterId::ReadErrors,
        CounterId::ReadRetries,
        CounterId::BackoffVetoes,
        CounterId::SloViolations,
        CounterId::RequestsArrived,
        CounterId::RequestsCompleted,
        CounterId::BurstStarts,
    ];

    /// Dense index into the counter array (declaration-order
    /// discriminant; pinned to [`CounterId::ALL`] by a compile-time
    /// assertion).
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, as rendered in reports and
    /// `docs/observability.md`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CounterId::DownTransitions => "down_transitions",
            CounterId::UpTransitions => "up_transitions",
            CounterId::SupplyRamps => "supply_ramps",
            CounterId::DemandMissDetects => "demand_miss_detects",
            CounterId::PrefetchMissDetects => "prefetch_miss_detects",
            CounterId::MissReturns => "miss_returns",
            CounterId::PolicyDownFires => "policy_down_fires",
            CounterId::PolicyDownDeclines => "policy_down_declines",
            CounterId::PolicyUpFires => "policy_up_fires",
            CounterId::PolicyUpDeclines => "policy_up_declines",
            CounterId::FastForwardBatches => "fast_forward_batches",
            CounterId::FastForwardNs => "fast_forward_ns",
            CounterId::TraceEvents => "trace_events",
            CounterId::Windows => "windows",
            CounterId::ReadErrors => "read_errors",
            CounterId::ReadRetries => "read_retries",
            CounterId::BackoffVetoes => "backoff_vetoes",
            CounterId::SloViolations => "slo_violations",
            CounterId::RequestsArrived => "requests_arrived",
            CounterId::RequestsCompleted => "requests_completed",
            CounterId::BurstStarts => "burst_starts",
        }
    }
}

// `CounterId::ALL` must enumerate every counter in index order.
const _: () = {
    let mut i = 0;
    while i < CounterId::COUNT {
        assert!(
            CounterId::ALL[i].index() == i,
            "CounterId::ALL out of order"
        );
        i += 1;
    }
};

/// Number of issue-width buckets (mirrors
/// `vsv_uarch::IssueHistogram`: exactly-`n` for `n < 8`, 8-or-wider
/// in the last bucket).
pub const ISSUE_BUCKETS: usize = 9;

/// Number of log2 buckets for fast-forward span lengths: bucket `i`
/// holds spans of `[2^i, 2^(i+1))` ns, the last bucket absorbing
/// anything longer.
pub const FF_SPAN_BUCKETS: usize = 16;

/// Number of log2 buckets for open-loop request latency: bucket `i`
/// holds latencies of `[2^i, 2^(i+1))` ns (bucket 0 also takes 0 ns),
/// the last bucket absorbing anything from `2^31` ns (~2.1 s) up.
pub const REQ_LATENCY_BUCKETS: usize = 32;

/// The per-run metrics registry: counters plus two histograms, all
/// fixed-size plain data.
///
/// # Examples
///
/// ```
/// use vsv::metrics::{CounterId, MetricsRegistry};
///
/// let mut a = MetricsRegistry::default();
/// a.inc(CounterId::SupplyRamps);
/// let mut b = MetricsRegistry::default();
/// b.add(CounterId::SupplyRamps, 2);
/// a.merge(&b);
/// assert_eq!(a.get(CounterId::SupplyRamps), 3);
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsRegistry {
    /// Counter values, indexed by [`CounterId::index`].
    pub counters: [u64; CounterId::COUNT],
    /// Pipeline cycles by instructions issued (`[8]` = 8 or wider),
    /// folded from the window's issue histogram.
    pub issue_width: [u64; ISSUE_BUCKETS],
    /// Fast-forward batch lengths, log2-bucketed
    /// (see [`FF_SPAN_BUCKETS`]).
    pub ff_span_log2: [u64; FF_SPAN_BUCKETS],
    /// Open-loop request latencies (arrival → completion),
    /// log2-bucketed (see [`REQ_LATENCY_BUCKETS`]). All-zero unless a
    /// traffic scenario is configured.
    pub req_latency_log2: [u64; REQ_LATENCY_BUCKETS],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            counters: [0; CounterId::COUNT],
            issue_width: [0; ISSUE_BUCKETS],
            ff_span_log2: [0; FF_SPAN_BUCKETS],
            req_latency_log2: [0; REQ_LATENCY_BUCKETS],
        }
    }
}

impl MetricsRegistry {
    /// Increments a counter by one.
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.index()] += 1;
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.index()] += n;
    }

    /// Reads a counter.
    #[must_use]
    pub fn get(&self, id: CounterId) -> u64 {
        self.counters[id.index()]
    }

    /// Records one fast-forward batch of `ns` simulated nanoseconds
    /// into the log2 span histogram (and nothing else — the caller
    /// bumps the batch/ns counters).
    pub fn observe_ff_span(&mut self, ns: u64) {
        let bucket = (63 - u64::leading_zeros(ns.max(1)) as usize).min(FF_SPAN_BUCKETS - 1);
        self.ff_span_log2[bucket] += 1;
    }

    /// Records one completed request's latency (arrival → completion,
    /// in ns) into the log2 latency histogram.
    pub fn observe_request_latency(&mut self, ns: u64) {
        let bucket = (63 - u64::leading_zeros(ns.max(1)) as usize).min(REQ_LATENCY_BUCKETS - 1);
        self.req_latency_log2[bucket] += 1;
    }

    /// Exact rank extraction from the request-latency histogram: the
    /// inclusive upper edge (`2^(i+1) - 1` ns) of the bucket holding
    /// the `ceil(total * numer / denom)`-th smallest latency. p50 is
    /// `(50, 100)`, p99 `(99, 100)`, p999 `(999, 1000)`. Returns 0
    /// when no request has completed.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is zero.
    #[must_use]
    pub fn request_latency_percentile(&self, numer: u64, denom: u64) -> u64 {
        assert!(denom > 0, "denom must be nonzero");
        let total: u64 = self.req_latency_log2.iter().sum();
        if total == 0 {
            return 0;
        }
        let need = (total * numer).div_ceil(denom).max(1);
        let mut cum = 0;
        for (i, &count) in self.req_latency_log2.iter().enumerate() {
            cum += count;
            if cum >= need {
                return (1u64 << (i + 1)) - 1;
            }
        }
        u64::MAX
    }

    /// Folds a window's issue-width bucket counts (the delta of
    /// `vsv_uarch::IssueHistogram::buckets` over the window) into the
    /// registry.
    pub fn fold_issue_buckets(&mut self, buckets: &[u64; ISSUE_BUCKETS]) {
        for (mine, theirs) in self.issue_width.iter_mut().zip(buckets) {
            *mine += theirs;
        }
    }

    /// Adds every counter and histogram bucket of `other` into `self`.
    /// Merging is commutative and associative, and [`crate::Sweep`]
    /// always merges in grid order, so aggregate metrics are
    /// bit-identical for any worker count.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (mine, theirs) in self.counters.iter_mut().zip(&other.counters) {
            *mine += theirs;
        }
        for (mine, theirs) in self.issue_width.iter_mut().zip(&other.issue_width) {
            *mine += theirs;
        }
        for (mine, theirs) in self.ff_span_log2.iter_mut().zip(&other.ff_span_log2) {
            *mine += theirs;
        }
        for (mine, theirs) in self
            .req_latency_log2
            .iter_mut()
            .zip(&other.req_latency_log2)
        {
            *mine += theirs;
        }
    }

    /// Whether every counter and bucket is zero (a failed job's
    /// record carries an empty registry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.issue_width.iter().all(|&c| c == 0)
            && self.ff_span_log2.iter().all(|&c| c == 0)
            && self.req_latency_log2.iter().all(|&c| c == 0)
    }

    /// The nonzero counters as `(name, value)` rows, in catalog
    /// order — the human-rendering entry point.
    #[must_use]
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        CounterId::ALL
            .into_iter()
            .filter(|id| self.get(*id) != 0)
            .map(|id| (id.name(), self.get(id)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_index_matches_all_ordering() {
        for (i, id) in CounterId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i, "{id:?}");
        }
        // Names are unique.
        let names: std::collections::HashSet<_> =
            CounterId::ALL.iter().map(|id| id.name()).collect();
        assert_eq!(names.len(), CounterId::COUNT);
    }

    #[test]
    fn inc_add_get_round_trip() {
        let mut m = MetricsRegistry::default();
        assert!(m.is_empty());
        m.inc(CounterId::Windows);
        m.add(CounterId::FastForwardNs, 41);
        m.inc(CounterId::FastForwardNs);
        assert_eq!(m.get(CounterId::Windows), 1);
        assert_eq!(m.get(CounterId::FastForwardNs), 42);
        assert!(!m.is_empty());
    }

    #[test]
    fn ff_span_buckets_are_log2() {
        let mut m = MetricsRegistry::default();
        m.observe_ff_span(0); // clamped to 1 -> bucket 0
        m.observe_ff_span(1); // bucket 0
        m.observe_ff_span(2); // bucket 1
        m.observe_ff_span(3); // bucket 1
        m.observe_ff_span(1024); // bucket 10
        m.observe_ff_span(u64::MAX); // clamped to the last bucket
        assert_eq!(m.ff_span_log2[0], 2);
        assert_eq!(m.ff_span_log2[1], 2);
        assert_eq!(m.ff_span_log2[10], 1);
        assert_eq!(m.ff_span_log2[FF_SPAN_BUCKETS - 1], 1);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = MetricsRegistry::default();
        a.inc(CounterId::SupplyRamps);
        a.observe_ff_span(8);
        a.fold_issue_buckets(&[1, 0, 0, 0, 0, 0, 0, 0, 2]);
        let mut b = a.clone();
        b.add(CounterId::SupplyRamps, 10);
        a.merge(&b);
        assert_eq!(a.get(CounterId::SupplyRamps), 12);
        assert_eq!(a.issue_width[0], 2);
        assert_eq!(a.issue_width[8], 4);
        assert_eq!(a.ff_span_log2[3], 2);
    }

    #[test]
    fn request_latency_percentiles_walk_bucket_edges() {
        let mut m = MetricsRegistry::default();
        assert_eq!(m.request_latency_percentile(99, 100), 0);
        // 99 fast requests in bucket 9 (512..=1023 ns), one slow one
        // in bucket 12 (4096..=8191 ns).
        for _ in 0..99 {
            m.observe_request_latency(600);
        }
        m.observe_request_latency(5000);
        assert_eq!(m.request_latency_percentile(50, 100), 1023);
        assert_eq!(m.request_latency_percentile(99, 100), 1023);
        assert_eq!(m.request_latency_percentile(999, 1000), 8191);
        // Zero-latency completions land in bucket 0 (edge 1 ns).
        let mut z = MetricsRegistry::default();
        z.observe_request_latency(0);
        assert_eq!(z.request_latency_percentile(50, 100), 1);
    }

    #[test]
    fn rows_skip_zero_counters() {
        let mut m = MetricsRegistry::default();
        assert!(m.rows().is_empty());
        m.add(CounterId::MissReturns, 7);
        assert_eq!(m.rows(), vec![("miss_returns", 7)]);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn registry_round_trips_through_json() {
        let mut m = MetricsRegistry::default();
        m.inc(CounterId::DownTransitions);
        m.observe_ff_span(100);
        let json = serde_json::to_string(&m).expect("serializes");
        let back: MetricsRegistry = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(m, back);
    }
}
