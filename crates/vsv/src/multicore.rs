//! Multicore VSV: N per-core voltage domains over one shared fabric.
//!
//! The paper's controller is single-core; this module lifts the
//! [`System`] — one core plus its private hierarchy slice — into a
//! replicated unit behind an arbitrated shared uncore
//! ([`vsv_mem::SharedFabric`]: one L2, one bus, one DRAM, one L2-MSHR
//! slot pool). Every core keeps its **own** [`VsvController`] and
//! policy instance, so each is an independent voltage domain: core 0
//! can sit at VDDL riding out a miss storm while core 1 runs flat out
//! at VDDH.
//!
//! # Lockstep determinism
//!
//! The driver advances all cores by exactly one nanosecond per
//! iteration, in core-index order. Shared-fabric arbitration (bus
//! FIFO, DRAM banking, MSHR admission) therefore resolves identically
//! on every run: same configuration, same streams, same interleaving
//! — bit for bit. Quiescent-stall fast-forward is *not* used here
//! (a core can only skip when the whole chip is provably inert, which
//! contention makes rare and correlated); multicore runs are always
//! ns-stepped. Single-core runs never construct a [`MulticoreSystem`]
//! at all — the runner dispatches here only when
//! [`SystemConfig::cores`] > 1 — so the N=1 path stays bit-identical
//! to the pre-multicore simulator.
//!
//! # Windows
//!
//! Warm-up and measurement mirror the single-core contract per core:
//! each core warms until *it* has committed the warm-up target, keeps
//! executing (to preserve contention) until every core has, and then
//! all measurement anchors reset at the same instant. In the measured
//! window each core's result is captured the moment it reaches its
//! own commit target — its window, its elapsed time — while it keeps
//! running as background load until the last core finishes. The
//! chip-level [`RunResult`] aggregates per-core windows (summed work
//! and energy over the longest window) and carries them in
//! [`RunResult::core_results`].

use std::cell::RefCell;
use std::rc::Rc;

use vsv_mem::{FabricCoreStats, SharedFabric, SharedHandle};
use vsv_workloads::{Generator, WorkloadParams};

use crate::error::SimError;
use crate::metrics::MetricsRegistry;
use crate::report::{RunResult, SloOutcome};
use crate::system::{System, SystemConfig, DEADLOCK_WINDOW_NS};
use crate::trace::ModeTrace;

/// N replicated cores — private L1s, prefetcher, controller, policy —
/// over one shared, arbitrated L2/bus/DRAM fabric, stepped in
/// nanosecond lockstep. See the module docs for the determinism and
/// window contracts.
#[derive(Debug)]
pub struct MulticoreSystem {
    cores: Vec<System<Generator>>,
    names: Vec<String>,
    workload: String,
    fabric: Rc<RefCell<SharedFabric>>,
}

impl MulticoreSystem {
    /// Builds a homogeneous chip: every core runs `params`' twin,
    /// reseeded per core (`seed + core`) so the streams are
    /// phase-decorrelated copies of the same program — the rate-style
    /// multiprogrammed setup the multicore bench measures. Core 0
    /// keeps the original seed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `cfg` fails
    /// [`SystemConfig::validate`].
    pub fn try_new(cfg: SystemConfig, params: &WorkloadParams) -> Result<Self, SimError> {
        cfg.validate()?;
        let per_core: Vec<WorkloadParams> = (0..cfg.cores)
            .map(|i| {
                let mut p = *params;
                p.seed = p.seed.wrapping_add(i as u64);
                p
            })
            .collect();
        Self::try_new_heterogeneous(cfg, &per_core)
    }

    /// Builds a chip with one explicit parameter point per core
    /// (`params.len()` must equal [`SystemConfig::cores`]) — the
    /// asymmetric co-runner setup used for shared-L2 fairness studies.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `cfg` fails validation
    /// or the parameter count does not match the core count.
    pub fn try_new_heterogeneous(
        cfg: SystemConfig,
        params: &[WorkloadParams],
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        if params.len() != cfg.cores {
            return Err(SimError::invalid_config(format!(
                "multicore needs one parameter point per core: {} cores, {} points",
                cfg.cores,
                params.len()
            )));
        }
        let fabric = SharedFabric::new(cfg.mem, cfg.cores).into_shared();
        let mut cores = Vec::with_capacity(cfg.cores);
        let mut names = Vec::with_capacity(cfg.cores);
        for (i, p) in params.iter().enumerate() {
            let mut sys = System::try_new(cfg, Generator::new(*p))?;
            let name = format!("{}#{i}", p.name);
            sys.set_workload_name(name.clone());
            sys.attach_shared_fabric(SharedHandle::new(Rc::clone(&fabric), i));
            cores.push(sys);
            names.push(name);
        }
        let workload = params.first().map_or("", |p| p.name).to_owned();
        Ok(MulticoreSystem {
            cores,
            names,
            workload,
            fabric,
        })
    }

    /// Number of cores (voltage domains).
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Current simulated time, ns (identical on every core — the
    /// lockstep invariant).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.cores.first().map_or(0, System::now)
    }

    /// Starts per-nanosecond mode/voltage tracing on every core (see
    /// [`System::enable_trace`]); the traces are what cross-core
    /// miss-storm correlation is computed from.
    pub fn enable_traces(&mut self, capacity: usize) {
        for sys in &mut self.cores {
            sys.enable_trace(capacity);
        }
    }

    /// Stops tracing and returns each core's trace, by core index.
    pub fn take_traces(&mut self) -> Vec<Option<ModeTrace>> {
        self.cores.iter_mut().map(System::take_trace).collect()
    }

    /// Each core's shared-fabric statistics (bus transactions and
    /// queueing, DRAM accesses, shared-MSHR admission stalls), by core
    /// index.
    #[must_use]
    pub fn fabric_stats(&self) -> Vec<FabricCoreStats> {
        let fabric = self.fabric.borrow();
        (0..self.cores.len())
            .map(|i| fabric.core_stats(i))
            .collect()
    }

    /// Mutable access to the per-core systems, for the runner to
    /// attach trace sinks. Stepping a core directly would break the
    /// lockstep invariant — keep this inside the crate.
    pub(crate) fn systems_mut(&mut self) -> &mut [System<Generator>] {
        &mut self.cores
    }

    /// Runs every core for `instructions` committed instructions (per
    /// core) to warm caches, predictors and the shared L2, then
    /// re-anchors all measurement counters at the same instant.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] any core raises (deadlock,
    /// exhausted budget, injected fault, unrecoverable read).
    pub fn try_warm_up(&mut self, instructions: u64) -> Result<(), SimError> {
        let _ = self.run_lockstep(instructions)?;
        // Early finishers kept executing until the slowest core hit
        // the target, accruing into a partial window; close and
        // discard it so every core's anchors sit at the same "now".
        for sys in &mut self.cores {
            let _ = sys.finish_window_now();
        }
        Ok(())
    }

    /// Runs every core for `instructions` committed instructions and
    /// reports the chip-wide measured window (per-core windows in
    /// [`RunResult::core_results`]).
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] any core raises.
    pub fn try_run(&mut self, instructions: u64) -> Result<RunResult, SimError> {
        self.try_run_with_metrics(instructions).map(|(r, _)| r)
    }

    /// [`MulticoreSystem::try_run`] plus the chip-wide metrics
    /// registry (every core's measured-window registry merged in core
    /// order).
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] any core raises.
    pub fn try_run_with_metrics(
        &mut self,
        instructions: u64,
    ) -> Result<(RunResult, MetricsRegistry), SimError> {
        let windows = self.run_lockstep(instructions)?;
        // Re-anchor the early finishers' background spans (mirrors
        // `try_warm_up`) so a subsequent window starts clean.
        for sys in &mut self.cores {
            let _ = sys.finish_window_now();
        }
        let mut metrics = MetricsRegistry::default();
        let mut per_core = Vec::with_capacity(windows.len());
        for (result, window) in windows {
            metrics.merge(&window);
            per_core.push(result);
        }
        Ok((aggregate(&self.workload, per_core), metrics))
    }

    /// The lockstep engine: advances all cores one nanosecond at a
    /// time (core-index order) until every core has committed its
    /// target, capturing each core's window — result plus metrics
    /// registry — the moment that core finishes. Finished cores keep
    /// stepping as background load so contention on the shared fabric
    /// persists until the last core is done.
    fn run_lockstep(
        &mut self,
        instructions: u64,
    ) -> Result<Vec<(RunResult, MetricsRegistry)>, SimError> {
        let n = self.cores.len();
        for sys in &mut self.cores {
            sys.begin_window_faults()?;
        }
        let window_start = self.now();
        let targets: Vec<u64> = self
            .cores
            .iter()
            .map(|s| s.core().committed() + instructions)
            .collect();
        let mut open = vec![true; n];
        let mut windows: Vec<Option<(RunResult, MetricsRegistry)>> = (0..n).map(|_| None).collect();
        let mut last_committed: Vec<u64> =
            self.cores.iter().map(|s| s.core().committed()).collect();
        let mut last_progress_at = vec![window_start; n];
        let mut remaining = n;
        while remaining > 0 {
            for sys in &mut self.cores {
                sys.step_ns();
            }
            let now = self.now();
            for i in 0..n {
                let sys = &mut self.cores[i];
                if let Some(err) = sys.take_unrecoverable_error() {
                    return Err(err);
                }
                if !open[i] {
                    continue;
                }
                if let Some(limit) = sys.sim_budget_ns() {
                    if now - window_start >= limit {
                        return Err(SimError::BudgetExhausted {
                            limit_ns: limit,
                            at: now,
                            committed: sys.core().committed(),
                            workload: self.names[i].clone(),
                        });
                    }
                }
                let committed = sys.core().committed();
                if committed != last_committed[i] {
                    last_committed[i] = committed;
                    last_progress_at[i] = now;
                } else if now - last_progress_at[i] >= DEADLOCK_WINDOW_NS {
                    return Err(sys.deadlock_err());
                }
                if committed >= targets[i] || sys.core().done() {
                    let result = sys.finish_window_now();
                    let window = sys.window_metrics().clone();
                    windows[i] = Some((result, window));
                    open[i] = false;
                    remaining -= 1;
                }
            }
        }
        // Every slot was filled exactly when its core closed
        // (`remaining` reaches 0 only once all windows are `Some`).
        let mut closed = Vec::with_capacity(windows.len());
        for (i, w) in windows.into_iter().enumerate() {
            match w {
                Some(v) => closed.push(v),
                None => {
                    return Err(SimError::Panic {
                        message: format!("core {i} window never closed"),
                    })
                }
            }
        }
        Ok(closed)
    }
}

/// Folds per-core windows into the chip-wide [`RunResult`]: work,
/// energy and event counts sum; time is the longest core's window;
/// rates (IPC, MPKI, average power) are recomputed from the summed
/// numerators over that longest window; SLO outcomes AND together
/// with worst-case observed values.
fn aggregate(workload: &str, per_core: Vec<RunResult>) -> RunResult {
    assert!(!per_core.is_empty(), "aggregate needs at least one core");
    let elapsed_ns = per_core.iter().map(|r| r.elapsed_ns).max().unwrap_or(0);
    let instructions: u64 = per_core.iter().map(|r| r.instructions).sum();
    let demand_misses: f64 = per_core
        .iter()
        .map(|r| r.mpki * r.instructions as f64 / 1000.0)
        .sum();
    let prefetch_misses: f64 = per_core
        .iter()
        .map(|r| r.prefetch_mpki * r.instructions as f64 / 1000.0)
        .sum();
    let energy_pj: f64 = per_core.iter().map(|r| r.energy_pj).sum();
    let mut energy = per_core[0].energy;
    for r in &per_core[1..] {
        for (acc, v) in energy
            .per_structure_pj
            .iter_mut()
            .zip(r.energy.per_structure_pj)
        {
            *acc += v;
        }
        energy.ramp_pj += r.energy.ramp_pj;
        energy.level_converter_pj += r.energy.level_converter_pj;
        energy.uncore_pj += r.energy.uncore_pj;
        energy.leakage_pj += r.energy.leakage_pj;
        energy.cycles += r.energy.cycles;
    }
    let mut mode = per_core[0].mode;
    for r in &per_core[1..] {
        for (acc, v) in mode.ns_in_mode.iter_mut().zip(r.mode.ns_in_mode) {
            *acc += v;
        }
        mode.down_transitions += r.mode.down_transitions;
        mode.up_transitions += r.mode.up_transitions;
    }
    let mut issue_histogram = per_core[0].issue_histogram;
    for r in &per_core[1..] {
        for (acc, v) in issue_histogram
            .buckets
            .iter_mut()
            .zip(r.issue_histogram.buckets)
        {
            *acc += v;
        }
    }
    let slo = per_core.iter().any(|r| r.slo.is_some()).then(|| {
        let outcomes: Vec<&SloOutcome> = per_core.iter().filter_map(|r| r.slo.as_ref()).collect();
        SloOutcome {
            retry_rate_ppm: outcomes.iter().map(|o| o.retry_rate_ppm).max().unwrap_or(0),
            added_latency_p99_ns: outcomes
                .iter()
                .map(|o| o.added_latency_p99_ns)
                .max()
                .unwrap_or(0),
            request_p99_ns: outcomes.iter().filter_map(|o| o.request_p99_ns).max(),
            request_p999_ns: outcomes.iter().filter_map(|o| o.request_p999_ns).max(),
            compliant: outcomes.iter().all(|o| o.compliant),
        }
    });
    let sum = |f: &dyn Fn(&RunResult) -> u64| per_core.iter().map(f).sum::<u64>();
    RunResult {
        workload: workload.to_owned(),
        instructions,
        elapsed_ns,
        pipeline_cycles: sum(&|r| r.pipeline_cycles),
        ipc: if elapsed_ns == 0 {
            0.0
        } else {
            instructions as f64 / elapsed_ns as f64
        },
        mpki: if instructions == 0 {
            0.0
        } else {
            demand_misses * 1000.0 / instructions as f64
        },
        prefetch_mpki: if instructions == 0 {
            0.0
        } else {
            prefetch_misses * 1000.0 / instructions as f64
        },
        energy_pj,
        energy,
        // pJ / ns = mW; the chip burns the summed energy over the
        // longest core's window. Same expression as
        // `PowerAccountant::average_power_w` so N = 1 is bit-identical.
        avg_power_w: if elapsed_ns == 0 {
            0.0
        } else {
            energy_pj / elapsed_ns as f64 * 1e-3
        },
        mode,
        down_triggers: sum(&|r| r.down_triggers),
        down_expiries: sum(&|r| r.down_expiries),
        up_triggers: sum(&|r| r.up_triggers),
        up_expiries: sum(&|r| r.up_expiries),
        zero_issue_cycles: sum(&|r| r.zero_issue_cycles),
        mispredicts: sum(&|r| r.mispredicts),
        branches: sum(&|r| r.branches),
        issue_histogram,
        read_errors: sum(&|r| r.read_errors),
        read_retries: sum(&|r| r.read_retries),
        requests_arrived: sum(&|r| r.requests_arrived),
        requests_completed: sum(&|r| r.requests_completed),
        request_backlog: sum(&|r| r.request_backlog),
        request_p50_ns: per_core.iter().map(|r| r.request_p50_ns).max().unwrap_or(0),
        request_p99_ns: per_core.iter().map(|r| r.request_p99_ns).max().unwrap_or(0),
        request_p999_ns: per_core
            .iter()
            .map(|r| r.request_p999_ns)
            .max()
            .unwrap_or(0),
        slo,
        core_results: per_core,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsv_workloads::twin;

    fn quick(cores: usize) -> SystemConfig {
        SystemConfig::vsv_with_fsms().with_cores(cores)
    }

    #[test]
    fn lockstep_is_deterministic() {
        let p = twin("mcf").expect("mcf exists");
        let run = || {
            let mut sys = MulticoreSystem::try_new(quick(2), &p).expect("valid");
            sys.try_warm_up(5_000).expect("warm-up");
            sys.try_run(15_000).expect("run")
        };
        assert_eq!(run(), run(), "lockstep multicore must be bit-identical");
    }

    #[test]
    fn chip_aggregates_per_core_windows() {
        let p = twin("ammp").expect("ammp exists");
        let mut sys = MulticoreSystem::try_new(quick(2), &p).expect("valid");
        sys.try_warm_up(5_000).expect("warm-up");
        let r = sys.try_run(15_000).expect("run");
        assert_eq!(r.core_results.len(), 2);
        assert_eq!(
            r.instructions,
            r.core_results.iter().map(|c| c.instructions).sum::<u64>()
        );
        assert_eq!(
            r.elapsed_ns,
            r.core_results.iter().map(|c| c.elapsed_ns).max().unwrap()
        );
        assert!(r.core_results.iter().all(|c| c.avg_power_w > 0.0));
        assert_eq!(r.core_results[0].workload, "ammp#0");
    }

    #[test]
    fn heterogeneous_needs_one_point_per_core() {
        let p = twin("mcf").expect("mcf exists");
        let err =
            MulticoreSystem::try_new_heterogeneous(quick(2), &[p]).expect_err("count mismatch");
        assert_eq!(err.kind(), "invalid-config");
    }
}
