//! # VSV: L2-miss-driven variable supply-voltage scaling
//!
//! A from-scratch reproduction of *"VSV: L2-Miss-Driven Variable
//! Supply-Voltage Scaling for Low Power"* (Li, Cher, Vijaykumar, Roy —
//! MICRO-36, 2003).
//!
//! VSV observes that after an L2 miss an out-of-order pipeline almost
//! always runs out of independent work, and drops the pipeline's
//! supply voltage (1.8 V → 1.2 V) and clock (1 GHz → 500 MHz) for the
//! duration of the miss. Two issue-rate-monitoring state machines
//! ([`DownFsm`], [`UpFsm`]) gate the transitions so high-ILP programs
//! keep their speed and clustered misses keep their savings. Circuit
//! constraints are modeled throughout: 12 ns supply ramps at
//! 0.05 V/ns, 2+2 ns control/clock-tree distribution, a 66 nJ
//! dual-supply-network charge per ramp, VDDH-pinned RAM structures
//! with level-converting latches, and an asynchronous L2 interface.
//!
//! ## Crate map
//!
//! * [`fsm`] — the down/up monitors and their policies;
//! * [`policy`] — the pluggable [`DvsPolicy`] decision layer
//!   (the paper's dual FSMs, naive baselines, an oracle upper
//!   bound, and the N-level `ladder-fsm`, selectable by
//!   [`PolicySpec`]);
//! * [`controller`] — the mode state machine with the Figure 2/3
//!   transition timelines, sequencing steps along the configured
//!   [`VoltageLadder`] (the paper's two rails are the depth-2
//!   special case);
//! * [`system`] — the composed simulator (core + memory + prefetcher +
//!   power + controller on one nanosecond clock);
//! * [`runner`]/[`report`] — experiment driving and the paper's
//!   metrics (performance degradation %, power saving %);
//! * [`sweep`] — parallel deterministic execution of experiment
//!   grids (every table/figure is one [`Sweep`]), with per-cell
//!   fault isolation and JSONL checkpoint/resume;
//! * [`campaign`] — multi-process scale-out of a sweep: a grid
//!   partitioned into K interleaved shards, each run as an ordinary
//!   checkpointed sweep process, stream-merged back into a report
//!   bit-identical to the single-process run with O(1) merge memory;
//! * [`error`] — the typed failure taxonomy ([`SimError`]) behind
//!   the fault-tolerant sweep contract;
//! * [`trace`]/[`metrics`] — structured observability: typed
//!   [`TraceEvent`]s delivered to pluggable [`TraceSink`]s, and the
//!   always-on [`MetricsRegistry`] of counters/histograms that merges
//!   deterministically across sweep workers (schema reference:
//!   `docs/observability.md`).
//!
//! The substrates live in sibling crates: `vsv-uarch` (8-way OoO
//! core), `vsv-mem` (caches/MSHRs/bus/DRAM), `vsv-power`
//! (Wattch-style model), `vsv-prefetch` (Time-Keeping), and
//! `vsv-workloads` (synthetic SPEC2K twins).
//!
//! ## Quickstart
//!
//! ```
//! use vsv::{Comparison, Experiment, SystemConfig};
//! use vsv_workloads::twin;
//!
//! let ammp = twin("ammp").expect("part of the suite");
//! let e = Experiment::quick();
//! let (base, vsv_run, cmp) =
//!     e.compare(&ammp, SystemConfig::baseline(), SystemConfig::vsv_with_fsms());
//! assert!(base.mpki > 1.0);           // a memory-bound twin
//! assert!(cmp.power_saving_pct > 0.0); // VSV saves power on it
//! let _ = vsv_run;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code reports failures as typed `SimError`s (or reaches a
// deliberate `panic!` in a documented thin wrapper); `.unwrap()` and
// `.expect()` are reserved for test code. CI runs clippy with
// `-D warnings`, promoting these to errors.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

#[cfg(feature = "serde")]
pub mod campaign;
pub mod controller;
pub mod error;
pub mod fsm;
pub mod metrics;
pub mod multicore;
pub mod policy;
pub mod report;
pub mod runner;
pub mod sweep;
pub mod system;
pub mod trace;

#[cfg(feature = "serde")]
pub use campaign::{Campaign, CampaignError, MergeOptions, MergeSummary};
pub use controller::{Mode, ModeStats, TickPlan, VsvConfig, VsvController};
pub use error::{FaultKind, ModeTransition, SimError};
pub use fsm::{DownFsm, DownPolicy, UpFsm, UpPolicy};
pub use metrics::{CounterId, MetricsRegistry};
pub use multicore::MulticoreSystem;
pub use policy::{
    Decision, DvsPolicy, ErrorBackoffPolicy, LadderFsmPolicy, PolicySpec, PolicyStats,
    BACKOFF_COOLDOWN_NS, BACKOFF_RETRY_THRESHOLD, BACKOFF_WINDOW_NS,
};
pub use report::{mean_comparison, Comparison, RunResult, SloOutcome, SloSpec};
pub use runner::{ComparisonSpread, Experiment};
#[cfg(feature = "serde")]
pub use sweep::CheckpointError;
pub use sweep::{
    config_digest, default_workers, resolve_workers, JobOutcome, JobRecord, ReportAggregator,
    Sweep, SweepJob, SweepReport,
};
pub use system::{System, SystemConfig, MAX_CORES};
#[cfg(feature = "serde")]
pub use trace::JsonlSink;
pub use trace::{
    vdd_mv, FsmId, ModeTrace, NullSink, RingSink, SharedBuf, TraceEvent, TraceLevel, TraceSample,
    TraceSink,
};
pub use vsv_power::{ErrorCurve, VoltageCurve, VoltageLadder, MAX_LADDER_DEPTH};
pub use vsv_workloads::{TrafficModel, TrafficSpec};
