//! The full-system simulator: core + hierarchy + prefetcher + power
//! model + VSV controller, advanced on a shared nanosecond clock.

use vsv_isa::InstStream;
use vsv_mem::{
    Hierarchy, HierarchyConfig, HierarchyStats, ReadErrorEvent, VsvSignal, READ_ERROR_DETECT_NS,
    READ_ERROR_RETRY_NS,
};
use vsv_power::{ActivitySample, ErrorCurve, PowerAccountant, PowerConfig, StructureId};
use vsv_prefetch::{TimeKeeping, TimeKeepingConfig};
use vsv_uarch::{Core, CoreConfig, CoreStats, CycleActivity};
use vsv_workloads::{TrafficEventKind, TrafficSpec, TrafficStream};

use crate::controller::{Mode, ModeStats, VsvConfig, VsvController};
use crate::error::{FaultKind, ModeTransition, SimError};
use crate::metrics::{CounterId, MetricsRegistry};
use crate::policy::{PolicySpec, PolicyStats};
use crate::report::{RunResult, SloSpec};
use crate::trace::{vdd_mv, ModeTrace, TraceEvent, TraceLevel, TraceSample, TraceSink};

/// Simulated nanoseconds without a commit before the watchdog
/// declares a model deadlock (2 ms of simulated time).
pub(crate) const DEADLOCK_WINDOW_NS: u64 = 2_000_000;

/// How many controller mode transitions the always-on diagnostic ring
/// retains for deadlock reports.
const TRANSITION_RING_LEN: usize = 8;

/// Configuration of the whole simulated system.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Out-of-order core parameters (Table 1).
    pub core: CoreConfig,
    /// Memory-hierarchy parameters (Table 1).
    pub mem: HierarchyConfig,
    /// Power-model parameters (§5.2).
    pub power: PowerConfig,
    /// VSV parameters (§4).
    pub vsv: VsvConfig,
    /// Whether the Time-Keeping prefetcher is attached (§5.1).
    pub timekeeping: bool,
    /// Quiescent-stall fast-forward: when the core is provably unable
    /// to do any work until the next scheduled memory event, advance
    /// time in one batch instead of nanosecond by nanosecond. Results
    /// are bit-identical either way (the equivalence suite proves it);
    /// the flag exists so tests can pin the ns-stepped reference path.
    pub fast_forward: bool,
    /// Watchdog budget: hard ceiling on *simulated* nanoseconds per
    /// [`System::run`]/[`System::warm_up`] window. A window that
    /// exceeds it fails with [`SimError::BudgetExhausted`] instead of
    /// simulating forever. `None` (the default) means unlimited;
    /// `Some(0)` is rejected by [`SystemConfig::validate`].
    pub max_sim_ns: Option<u64>,
    /// Test-only fault injection: forces the next run window to fail
    /// with the given [`FaultKind`], so sweep-engine error paths can
    /// be exercised deterministically and end to end. `None` (the
    /// default) in production.
    pub inject_fault: Option<FaultKind>,
    /// Per-read error probability at VDDL — the anchor of the
    /// low-voltage timing-error model ([`ErrorCurve`]). The
    /// probability is exactly 0 at VDDH and scales quadratically with
    /// the undervolt toward this value at VDDL, so a rate of `0.0`
    /// (the default) keeps every run bit-identical to the model being
    /// absent.
    pub error_rate: f64,
    /// Seed of the error model's counter-based draw stream. Runs with
    /// the same seed (and configuration) err on exactly the same
    /// reads, independent of worker count or fast-forward.
    pub error_seed: u64,
    /// Reliability service-level objective, checked per measurement
    /// window ([`RunResult::slo`]). `None` (the default) reports no
    /// outcome and counts no violations.
    pub slo: Option<SloSpec>,
    /// Open-loop service-traffic scenario: requests arrive on the
    /// spec's deterministic train and are served as bounded slices of
    /// the twin's committed-instruction stream, queueing while the
    /// core works off earlier requests. Pure accounting on top of the
    /// simulation — the instruction stream, timing, and energy are
    /// bit-identical with the scenario on or off. `None` (the
    /// default) runs closed-loop, exactly as before the subsystem
    /// existed. The arrival clock re-anchors at every measurement
    /// reset, so each measured window sees the same train relative to
    /// its own start regardless of warm-up length or policy.
    pub traffic: Option<TrafficSpec>,
    /// Number of cores (voltage domains) the configuration simulates.
    /// `1` (the default) is the paper's single-core machine and takes
    /// exactly the pre-multicore code path. For `N > 1` the run layer
    /// builds a [`MulticoreSystem`](crate::MulticoreSystem): N
    /// replicated cores — each with its private L1s, prefetcher,
    /// controller and [`DvsPolicy`](crate::DvsPolicy) instance — over
    /// one shared, arbitrated L2/bus/DRAM fabric, stepped in
    /// nanosecond lockstep. A [`System`] itself always simulates one
    /// core; this field is consumed by the runner/sweep layers.
    pub cores: usize,
}

/// Hard ceiling on [`SystemConfig::cores`] — far above anything the
/// lockstep driver simulates in reasonable time, low enough to catch
/// typos (`--cores 100`) at validation instead of after an OOM.
pub const MAX_CORES: usize = 16;

impl SystemConfig {
    /// The paper's baseline: Table 1 core with DCG and software
    /// prefetching (in the workloads), VSV disabled.
    #[must_use]
    pub fn baseline() -> Self {
        SystemConfig {
            core: CoreConfig::baseline(),
            mem: HierarchyConfig::baseline(),
            power: PowerConfig::baseline(),
            vsv: VsvConfig::disabled(),
            timekeeping: false,
            fast_forward: true,
            max_sim_ns: None,
            inject_fault: None,
            error_rate: 0.0,
            error_seed: 0,
            slo: None,
            traffic: None,
            cores: 1,
        }
    }

    /// Baseline plus VSV with both FSMs (the paper's headline
    /// configuration, black bars in Figure 4).
    #[must_use]
    pub fn vsv_with_fsms() -> Self {
        SystemConfig {
            vsv: VsvConfig::with_fsms(),
            ..Self::baseline()
        }
    }

    /// Baseline plus VSV without the FSMs (white bars in Figure 4).
    #[must_use]
    pub fn vsv_without_fsms() -> Self {
        SystemConfig {
            vsv: VsvConfig::without_fsms(),
            ..Self::baseline()
        }
    }

    /// Baseline plus VSV under a named decision policy (FSM
    /// thresholds and circuit timing at the defaults; for
    /// [`PolicySpec::DualFsm`] this is [`SystemConfig::vsv_with_fsms`]).
    #[must_use]
    pub fn with_policy(policy: PolicySpec) -> Self {
        SystemConfig {
            vsv: VsvConfig::with_policy(policy),
            ..Self::baseline()
        }
    }

    /// The policy name this configuration runs under, for report
    /// schemas: `"disabled"` for the baseline, the
    /// [`PolicySpec::name`] otherwise.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        if self.vsv.enabled {
            self.vsv.policy.name()
        } else {
            "disabled"
        }
    }

    /// Enables or disables Time-Keeping prefetching (§6.4), adjusting
    /// the hierarchy's prefetch buffer to match.
    #[must_use]
    pub fn with_timekeeping(mut self, on: bool) -> Self {
        self.timekeeping = on;
        self.mem = if on {
            HierarchyConfig::with_prefetch_buffer()
        } else {
            HierarchyConfig::baseline()
        };
        self
    }

    /// Enables or disables the quiescent-stall fast-forward (on by
    /// default; the ns-stepped path is the reference for equivalence
    /// testing).
    #[must_use]
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Sets the per-window simulated-time watchdog budget (`None`
    /// disables it — the default).
    #[must_use]
    pub fn with_max_sim_ns(mut self, limit: Option<u64>) -> Self {
        self.max_sim_ns = limit;
        self
    }

    /// Arms the test-only fault-injection hook: the next run window
    /// fails with `kind` (see [`SystemConfig::inject_fault`]).
    #[must_use]
    pub fn with_injected_fault(mut self, kind: FaultKind) -> Self {
        self.inject_fault = Some(kind);
        self
    }

    /// Sets the low-voltage read-error probability at VDDL (see
    /// [`SystemConfig::error_rate`]; `0.0` disables the model).
    #[must_use]
    pub fn with_error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate;
        self
    }

    /// Seeds the error model's deterministic draw stream (see
    /// [`SystemConfig::error_seed`]).
    #[must_use]
    pub fn with_error_seed(mut self, seed: u64) -> Self {
        self.error_seed = seed;
        self
    }

    /// Sets (or clears) the per-window reliability SLO (see
    /// [`SystemConfig::slo`]).
    #[must_use]
    pub fn with_slo(mut self, slo: Option<SloSpec>) -> Self {
        self.slo = slo;
        self
    }

    /// Sets (or clears) the open-loop traffic scenario (see
    /// [`SystemConfig::traffic`]).
    #[must_use]
    pub fn with_traffic(mut self, traffic: Option<TrafficSpec>) -> Self {
        self.traffic = traffic;
        self
    }

    /// The error curve this configuration runs under, if the model is
    /// enabled: anchored at the VSV technology's rails, reaching
    /// [`SystemConfig::error_rate`] at VDDL.
    #[must_use]
    pub fn error_curve(&self) -> Option<ErrorCurve> {
        (self.error_rate > 0.0)
            .then(|| ErrorCurve::new(self.vsv.tech.vddh, self.vsv.tech.vddl, self.error_rate))
    }

    /// Replaces the VSV voltage ladder with a uniform `depth`-level
    /// one between the technology's rails (depth 2 is the paper's
    /// two-rail configuration; see [`vsv_power::VoltageLadder`]).
    #[must_use]
    pub fn with_ladder_depth(mut self, depth: usize) -> Self {
        self.vsv = self.vsv.with_ladder_depth(depth);
        self
    }

    /// Sets the number of cores (voltage domains); see
    /// [`SystemConfig::cores`]. Values outside `1..=MAX_CORES` are
    /// rejected by [`SystemConfig::validate`].
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Validates the whole configuration tree.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] describing the first
    /// inconsistency (core widths/structures, power-model ranges, a
    /// malformed voltage ladder, a zero watchdog budget).
    pub fn validate(&self) -> Result<(), SimError> {
        self.core.validate().map_err(SimError::invalid_config)?;
        self.power.validate().map_err(SimError::invalid_config)?;
        self.vsv
            .ladder
            .validate(&self.vsv.tech)
            .map_err(SimError::invalid_config)?;
        if self.max_sim_ns == Some(0) {
            return Err(SimError::invalid_config(
                "max_sim_ns must be nonzero when set (Some(0) exhausts instantly)",
            ));
        }
        if self.error_rate != 0.0 {
            ErrorCurve::new(self.vsv.tech.vddh, self.vsv.tech.vddl, self.error_rate)
                .validate()
                .map_err(SimError::invalid_config)?;
        }
        if let Some(traffic) = self.traffic {
            traffic.validate().map_err(SimError::invalid_config)?;
        }
        if self.cores == 0 || self.cores > MAX_CORES {
            return Err(SimError::invalid_config(format!(
                "cores must be in 1..={MAX_CORES}, got {}",
                self.cores
            )));
        }
        Ok(())
    }
}

/// Runtime of one open-loop traffic scenario: the deterministic
/// arrival train plus the request FIFO and service-attribution state.
///
/// Service is pure accounting: the core always executes the twin
/// stream, and a request is the span of committed instructions between
/// its service start and completion. Commits while the queue is empty
/// are background work, attributed to no request — so latency is
/// genuine queueing plus service at the twin's measured throughput,
/// while the simulation itself (timing, energy, every existing
/// counter) is untouched by the scenario.
#[derive(Debug)]
struct TrafficState {
    spec: TrafficSpec,
    stream: TrafficStream,
    /// Simulation time the stream's relative clock is anchored to.
    origin: u64,
    /// Absolute time of the next un-processed train event.
    next_at: u64,
    next_kind: TrafficEventKind,
    /// Arrival timestamps of queued requests, oldest first (the front
    /// request is in service).
    queue: std::collections::VecDeque<u64>,
    /// When the front request's service began (its queue wait is
    /// `front_started_at - arrival`).
    front_started_at: u64,
    /// Committed instructions credited to the front request so far.
    served: u64,
    /// Core commit count at the last attribution, for delta tracking.
    last_committed: u64,
}

impl TrafficState {
    fn new(spec: TrafficSpec, origin: u64, committed: u64) -> Self {
        let mut stream = TrafficStream::new(spec);
        let first = stream.next_event();
        TrafficState {
            spec,
            origin,
            next_at: origin.saturating_add(first.at),
            next_kind: first.kind,
            stream,
            queue: std::collections::VecDeque::new(),
            front_started_at: 0,
            served: 0,
            last_committed: committed,
        }
    }

    /// Pulls the train's next event into `next_at`/`next_kind`.
    fn advance(&mut self) {
        let ev = self.stream.next_event();
        self.next_at = self.origin.saturating_add(ev.at);
        self.next_kind = ev.kind;
    }
}

/// Snapshot of every counter we difference across a measurement
/// window.
#[derive(Debug, Clone, Copy)]
struct Anchors {
    now: u64,
    core: CoreStats,
    mem: HierarchyStats,
    l2_accesses: u64,
    dram_accesses: u64,
    bus_transactions: u64,
    mode: ModeStats,
    policy: PolicyStats,
}

/// The composed simulator.
///
/// # Examples
///
/// ```
/// use vsv::{System, SystemConfig};
/// use vsv_workloads::{Generator, WorkloadParams};
///
/// let stream = Generator::new(WorkloadParams::compute_bound("demo"));
/// let mut sys = System::new(SystemConfig::baseline(), stream);
/// let result = sys.run(5_000);
/// assert!(result.instructions >= 5_000); // 8-wide commit may overshoot
/// assert!(result.avg_power_w > 0.0);
/// ```
#[derive(Debug)]
pub struct System<S> {
    core: Core<S>,
    controller: VsvController,
    power: PowerAccountant,
    now: u64,
    anchors: Anchors,
    workload: String,
    trace: Option<ModeTrace>,
    // Structured observability (see `crate::trace` / `crate::metrics`):
    // the always-on registry plus an optional event sink. `metrics`
    // accumulates the in-progress window; `window_metrics` holds the
    // last closed window's registry (what reports consume). With no
    // sink attached, the whole layer costs one branch per step.
    metrics: MetricsRegistry,
    window_metrics: MetricsRegistry,
    event_sink: Option<(TraceLevel, Box<dyn TraceSink>)>,
    fast_forward: bool,
    max_sim_ns: Option<u64>,
    inject_fault: Option<FaultKind>,
    // Low-voltage reliability (see `vsv_power::ErrorCurve` and the
    // retry path in `vsv_mem`). `error_curve` is `None` — and the
    // whole layer costs one branch per step — unless
    // `SystemConfig::error_rate` is nonzero. `last_vdd` caches the
    // voltage whose threshold the hierarchy currently holds, so the
    // curve is re-evaluated only when the supply actually moves.
    error_curve: Option<ErrorCurve>,
    last_vdd: f64,
    slo: Option<SloSpec>,
    // An exhausted retry budget recorded by the hierarchy, awaiting
    // escalation to `SimError::UnrecoverableRead` at the window loop.
    pending_unrecoverable: Option<(u64, u8)>,
    read_error_scratch: Vec<ReadErrorEvent>,
    // Open-loop traffic scenario (see `TrafficState`); `None` — and
    // one branch per step — unless `SystemConfig::traffic` is set.
    traffic: Option<TrafficState>,
    // Always-on diagnostic ring: the last few controller mode
    // transitions, so a deadlock error is a self-contained bug report
    // even when full tracing is off. Bounded at TRANSITION_RING_LEN.
    last_mode: Mode,
    recent_transitions: std::collections::VecDeque<ModeTransition>,
}

impl<S: InstStream> System<S> {
    /// Builds the system over `stream`.
    ///
    /// # Panics
    ///
    /// Panics if any sub-configuration is invalid; the fallible form
    /// is [`System::try_new`].
    #[must_use]
    pub fn new(cfg: SystemConfig, stream: S) -> Self {
        Self::try_new(cfg, stream).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the system over `stream`, validating the configuration
    /// first.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any sub-configuration
    /// fails [`SystemConfig::validate`].
    pub fn try_new(cfg: SystemConfig, stream: S) -> Result<Self, SimError> {
        cfg.validate()?;
        let mut core = Core::new(cfg.core, Hierarchy::new(cfg.mem), stream);
        let error_curve = cfg.error_curve();
        if error_curve.is_some() {
            // The threshold starts at VDDH's (exactly 0) and follows
            // the supply from `step`.
            core.mem_mut().enable_read_error_model(cfg.error_seed);
        }
        if cfg.timekeeping {
            let l1d = cfg.mem.l1d;
            core.attach_prefetcher(TimeKeeping::new(TimeKeepingConfig {
                l1_block_bytes: l1d.block_bytes,
                l1_sets: l1d.sets() as u64,
                ..TimeKeepingConfig::baseline()
            }));
        }
        let controller = VsvController::new(cfg.vsv);
        let anchors = Anchors {
            now: 0,
            core: core.stats(),
            mem: core.mem().stats(),
            l2_accesses: 0,
            dram_accesses: 0,
            bus_transactions: 0,
            mode: controller.stats(),
            policy: controller.policy_stats(),
        };
        let last_mode = controller.mode();
        let mut recent_transitions = std::collections::VecDeque::with_capacity(TRANSITION_RING_LEN);
        recent_transitions.push_back(ModeTransition {
            at_ns: 0,
            mode: last_mode,
        });
        Ok(System {
            core,
            controller,
            power: PowerAccountant::new(cfg.power),
            now: 0,
            anchors,
            workload: String::new(),
            trace: None,
            metrics: MetricsRegistry::default(),
            window_metrics: MetricsRegistry::default(),
            event_sink: None,
            fast_forward: cfg.fast_forward,
            max_sim_ns: cfg.max_sim_ns,
            inject_fault: cfg.inject_fault,
            error_curve,
            last_vdd: cfg.vsv.tech.vddh,
            slo: cfg.slo,
            pending_unrecoverable: None,
            read_error_scratch: Vec::new(),
            traffic: cfg.traffic.map(|spec| TrafficState::new(spec, 0, 0)),
            last_mode,
            recent_transitions,
        })
    }

    /// Names the workload in produced [`RunResult`]s.
    pub fn set_workload_name(&mut self, name: impl Into<String>) {
        self.workload = name.into();
    }

    /// Starts recording a per-nanosecond mode/voltage trace, keeping
    /// the most recent `capacity` samples (a ring buffer). Costs a few
    /// bytes per simulated nanosecond while enabled.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(ModeTrace::new(capacity));
    }

    /// Stops tracing and returns what was recorded, if tracing was on.
    pub fn take_trace(&mut self) -> Option<ModeTrace> {
        self.trace.take()
    }

    /// The trace recorded so far, if tracing is on.
    #[must_use]
    pub fn trace(&self) -> Option<&ModeTrace> {
        self.trace.as_ref()
    }

    /// Attaches a structured [`TraceSink`] at `level`: from now on the
    /// simulation delivers typed [`TraceEvent`]s to it (schema:
    /// `docs/observability.md`). The stream is seeded with a
    /// `mode_entered` event for the current mode. Replaces any sink
    /// already attached (discarding it unflushed); detach with
    /// [`System::take_event_sink`].
    pub fn set_event_sink(&mut self, level: TraceLevel, sink: Box<dyn TraceSink>) {
        self.controller.set_tracing(Some(level), self.now);
        self.event_sink = Some((level, sink));
        self.flush_trace_events();
    }

    /// Delivers `event` to the attached sink, if any — the hook
    /// callers use for out-of-band events such as
    /// [`TraceEvent::JobStart`] headers. A no-op with no sink.
    pub fn emit_trace_event(&mut self, event: &TraceEvent) {
        if let Some((_, sink)) = self.event_sink.as_mut() {
            self.metrics.inc(CounterId::TraceEvents);
            sink.record(event);
        }
    }

    /// Detaches and returns the structured event sink, flushing it and
    /// turning event emission off. `None` if no sink was attached.
    pub fn take_event_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.flush_trace_events();
        self.controller.set_tracing(None, self.now);
        self.event_sink.take().map(|(_, mut sink)| {
            sink.flush();
            sink
        })
    }

    /// The metrics registry of the last closed measurement window
    /// (what [`System::run`] measured); empty before the first window
    /// closes.
    #[must_use]
    pub fn window_metrics(&self) -> &MetricsRegistry {
        &self.window_metrics
    }

    /// The metrics registry of the window in progress (accumulating
    /// since the last window closed).
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Drains the controller's buffered structured events into the
    /// attached sink. A no-op with no sink; with one, called at every
    /// step and window boundary so sink output stays in emission
    /// order.
    fn flush_trace_events(&mut self) {
        let Some((_, sink)) = self.event_sink.as_mut() else {
            return;
        };
        if !self.controller.has_trace_events() {
            return;
        }
        for ev in self.controller.drain_trace_events() {
            self.metrics.inc(CounterId::TraceEvents);
            sink.record(&ev);
        }
    }

    /// Current simulated time (ns).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The core (stats, hierarchy access).
    #[must_use]
    pub fn core(&self) -> &Core<S> {
        &self.core
    }

    /// The VSV controller (mode, FSM stats).
    #[must_use]
    pub fn controller(&self) -> &VsvController {
        &self.controller
    }

    /// Runs `instructions` committed instructions to warm the caches
    /// and predictors, then re-anchors all measurement counters so the
    /// next [`System::run`] reports steady-state numbers (the paper
    /// warms caches during fast-forward, §5).
    pub fn warm_up(&mut self, instructions: u64) {
        self.try_warm_up(instructions)
            .unwrap_or_else(|e| panic!("warm-up failed: {e}"));
    }

    /// Fallible form of [`System::warm_up`].
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] that ended the warm-up window early
    /// (deadlock, exhausted budget, injected fault).
    pub fn try_warm_up(&mut self, instructions: u64) -> Result<(), SimError> {
        let _ = self.run_internal(instructions)?;
        self.reset_measurement();
        Ok(())
    }

    /// Runs `instructions` committed instructions and reports the
    /// measured window.
    ///
    /// # Panics
    ///
    /// Panics if the machine stops making forward progress (a model
    /// deadlock — indicates a simulator bug) or exceeds its
    /// [`SystemConfig::max_sim_ns`] budget; the fallible form is
    /// [`System::try_run`].
    pub fn run(&mut self, instructions: u64) -> RunResult {
        self.run_internal(instructions)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs `instructions` committed instructions and reports the
    /// measured window, returning failures as typed [`SimError`]s
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] if no instruction commits for 2 ms of
    /// simulated time; [`SimError::BudgetExhausted`] if the window
    /// exceeds [`SystemConfig::max_sim_ns`]; the injected error when
    /// [`SystemConfig::inject_fault`] is armed.
    pub fn try_run(&mut self, instructions: u64) -> Result<RunResult, SimError> {
        self.run_internal(instructions)
    }

    fn run_internal(&mut self, instructions: u64) -> Result<RunResult, SimError> {
        if let Some(kind) = self.inject_fault {
            match kind {
                // Same construction path as the real detector below,
                // so the injected error is shaped exactly like a
                // genuine one.
                FaultKind::Deadlock => return Err(self.deadlock_error()),
                FaultKind::Panic => panic!(
                    "injected panic fault (SystemConfig::inject_fault) at t={}",
                    self.now
                ),
                // Unlike the terminal kinds above, this one arms the
                // hierarchy and lets the window run: every delivery
                // errs until one read exhausts its budget, so the
                // escalation below is exercised through the real
                // retry machinery.
                FaultKind::UnrecoverableRead => self.core.mem_mut().arm_forced_read_error(),
            }
        }
        let window_start = self.now;
        let target = self.core.committed() + instructions;
        let mut last_committed = self.core.committed();
        let mut last_progress_at = self.now;
        while self.core.committed() < target && !self.core.done() {
            if self.fast_forward {
                self.try_fast_forward();
            }
            self.step();
            if let Some((at, retries)) = self.pending_unrecoverable.take() {
                return Err(SimError::UnrecoverableRead {
                    at,
                    committed: self.core.committed(),
                    workload: self.workload.clone(),
                    retries,
                    mode: self.controller.mode(),
                });
            }
            if let Some(limit) = self.max_sim_ns {
                if self.now - window_start >= limit {
                    return Err(SimError::BudgetExhausted {
                        limit_ns: limit,
                        at: self.now,
                        committed: self.core.committed(),
                        workload: self.workload.clone(),
                    });
                }
            }
            let committed = self.core.committed();
            if committed != last_committed {
                last_committed = committed;
                last_progress_at = self.now;
            } else if self.now - last_progress_at >= DEADLOCK_WINDOW_NS {
                return Err(self.deadlock_error());
            }
        }
        Ok(self.finish_window())
    }

    /// Builds a [`SimError::Deadlock`] for the current machine state,
    /// attaching the diagnostic transition ring.
    fn deadlock_error(&self) -> SimError {
        SimError::Deadlock {
            at: self.now,
            committed: self.core.committed(),
            workload: self.workload.clone(),
            mode: self.controller.mode(),
            recent_transitions: self.recent_transitions.iter().copied().collect(),
        }
    }

    /// Jumps `self.now` forward to the next scheduled memory event (or
    /// Time-Keeping harvest) if — and only if — every component is
    /// provably inert for the whole window, batch-applying the skipped
    /// zero-issue cycles so all counters match the ns-stepped path bit
    /// for bit. A no-op whenever any eligibility condition fails.
    fn try_fast_forward(&mut self) {
        let mem = self.core.mem();
        // Buffered work would be consumed by the very next step; an
        // empty event queue means the machine is either done or about
        // to be declared deadlocked — never skip over either.
        if mem.retry_pending()
            || mem.has_buffered_completions()
            || mem.has_buffered_vsv_signals()
            || mem.has_buffered_read_errors()
        {
            return;
        }
        let Some(event_at) = mem.next_event_time() else {
            return;
        };
        let outstanding = mem.outstanding_demand_misses();
        if !self.core.quiescent() || !self.controller.quiescent_skip_allowed(outstanding) {
            return;
        }
        // TimeKeeping::tick is a pure no-op strictly before its next
        // harvest time, so cap the skip there. Traffic events cap it
        // too: an arrival or burst boundary must be processed at its
        // exact nanosecond, never skipped over (no commits happen in a
        // skippable span, so landing on the event is exact).
        let target = event_at
            .min(self.core.prefetch_harvest_at().unwrap_or(u64::MAX))
            .min(self.traffic.as_ref().map_or(u64::MAX, |t| t.next_at));
        if target <= self.now {
            return;
        }
        let from = self.now;
        let ns = target - from;
        // Snapshot the edge schedule before the controller batches it,
        // so the trace replay below sees the pre-skip timeline.
        let mode = self.controller.mode();
        let period = self.controller.current_period_ns();
        let mut next_edge = self.controller.next_edge();
        let next_edge0 = next_edge;
        let (edges, vdd) = self.controller.skip_quiescent(from, ns);
        self.metrics.inc(CounterId::FastForwardBatches);
        self.metrics.add(CounterId::FastForwardNs, ns);
        self.metrics.observe_ff_span(ns);
        self.power.record_leakage_span(ns, vdd);
        self.power.record_idle_cycles(edges, vdd);
        self.core.skip_idle_cycles(edges);
        if let Some(trace) = self.trace.as_mut() {
            for t in from..target {
                let edge = t >= next_edge;
                if edge {
                    next_edge += period;
                }
                trace.push(TraceSample {
                    ns: t,
                    mode,
                    vdd,
                    edge,
                });
            }
        }
        if self.event_sink.is_some() {
            if let Some((level, sink)) = self.event_sink.as_mut() {
                if *level >= TraceLevel::Events {
                    self.metrics.inc(CounterId::TraceEvents);
                    sink.record(&TraceEvent::FastForward {
                        from,
                        to: target,
                        edges,
                    });
                }
            }
            // FSM windows that expired inside the batch were stamped at
            // the batch end by the controller; deliver them after the
            // batch marker.
            self.flush_trace_events();
            if let Some((TraceLevel::Full, sink)) = self.event_sink.as_mut() {
                // Replay the skipped span sample by sample, mirroring
                // the ModeTrace replay above.
                let mut e = next_edge0;
                for t in from..target {
                    let edge = t >= e;
                    if edge {
                        e += period;
                    }
                    self.metrics.inc(CounterId::TraceEvents);
                    sink.record(&TraceEvent::Sample {
                        at: t,
                        mode,
                        vdd_mv: vdd_mv(vdd),
                        edge,
                    });
                }
            }
        }
        self.now = target;
    }

    /// Advances the simulation by exactly one nanosecond without any
    /// completion criterion — the single-stepping primitive under
    /// [`System::run`], exposed for tools that want to observe the
    /// controller's mode trajectory cycle by cycle.
    pub fn step_ns(&mut self) {
        self.step();
    }

    /// One nanosecond of simulated time.
    fn step(&mut self) {
        let now = self.now;
        if self.traffic.is_some() {
            self.traffic_arrivals(now);
        }
        self.core.tick_mem(now);
        if self.core.mem().has_buffered_read_errors() {
            self.drain_read_errors(now);
        }
        let controller = &mut self.controller;
        let metrics = &mut self.metrics;
        self.core.mem_mut().visit_vsv_signals(|sig| {
            match *sig {
                VsvSignal::L2MissDetected { demand, .. } => metrics.inc(if demand {
                    CounterId::DemandMissDetects
                } else {
                    CounterId::PrefetchMissDetects
                }),
                VsvSignal::L2MissReturned { .. } => metrics.inc(CounterId::MissReturns),
            }
            controller.observe(sig);
        });
        let outstanding = self.core.mem().outstanding_demand_misses();
        let plan = self.controller.tick(now, outstanding);
        if let Some(curve) = self.error_curve {
            // Follow the supply: deliveries at t use the voltage the
            // controller planned at t-1 (a fixed 1 ns sampling lag,
            // identical on the fast-forward and ns-stepped paths —
            // skippable spans hold the voltage constant).
            if plan.vdd != self.last_vdd {
                self.last_vdd = plan.vdd;
                self.core
                    .mem_mut()
                    .set_read_error_threshold(curve.threshold(plan.vdd));
            }
        }
        let mode = self.controller.mode();
        if mode != self.last_mode {
            self.last_mode = mode;
            if self.recent_transitions.len() == TRANSITION_RING_LEN {
                self.recent_transitions.pop_front();
            }
            self.recent_transitions
                .push_back(ModeTransition { at_ns: now, mode });
        }
        let ramps = self.controller.take_ramps();
        if ramps > 0 {
            self.metrics.add(CounterId::SupplyRamps, ramps);
            let power = &mut self.power;
            self.controller
                .drain_ramp_scales(|scale| power.record_ramp_scaled(scale));
        }
        self.power.record_leakage_ns(plan.vdd);
        if plan.pipeline_edge {
            let act = self.core.cycle(now);
            self.controller.on_cycle(now, act.issued);
            self.power.record_cycle(&sample_from(&act), plan.vdd);
            if self.traffic.is_some() {
                self.traffic_completions(now);
            }
        }
        if let Some(trace) = self.trace.as_mut() {
            trace.push(TraceSample {
                ns: now,
                mode: self.controller.mode(),
                vdd: plan.vdd,
                edge: plan.pipeline_edge,
            });
        }
        if self.event_sink.is_some() {
            self.flush_trace_events();
            self.emit_sample(now, plan.vdd, plan.pipeline_edge);
        }
        self.now += 1;
    }

    /// Consumes the read-error events the hierarchy recorded during
    /// `tick_mem`: counts them, emits trace events, feeds the retry
    /// stream to the policy (graceful degradation), and parks an
    /// exhausted budget for escalation at the window loop.
    fn drain_read_errors(&mut self, now: u64) {
        let mut events = std::mem::take(&mut self.read_error_scratch);
        self.core.mem_mut().take_read_error_events_into(&mut events);
        for ev in &events {
            self.metrics.inc(CounterId::ReadErrors);
            if ev.exhausted {
                if let Some((level, sink)) = self.event_sink.as_mut() {
                    if *level >= TraceLevel::Events {
                        self.metrics.inc(CounterId::TraceEvents);
                        sink.record(&TraceEvent::RetryExhausted {
                            at: ev.at,
                            retries: ev.attempt,
                        });
                    }
                }
                self.pending_unrecoverable = Some((ev.at, ev.attempt));
            } else {
                self.metrics.inc(CounterId::ReadRetries);
                if let Some((level, sink)) = self.event_sink.as_mut() {
                    if *level >= TraceLevel::Events {
                        self.metrics.inc(CounterId::TraceEvents);
                        sink.record(&TraceEvent::ReadError {
                            at: ev.at,
                            attempt: ev.attempt,
                        });
                    }
                }
                // After the event, so an engagement the retry causes
                // lands later in the stream than its cause.
                self.controller.on_read_retry(now);
            }
        }
        events.clear();
        self.read_error_scratch = events;
    }

    /// Processes every traffic-train event due by `now`: arrivals join
    /// the request FIFO (starting service immediately when it was
    /// empty), burst boundaries are counted and traced. Called at the
    /// top of every step; fast-forward caps its skips at the next
    /// train event, so events are always handled at their exact
    /// nanosecond.
    fn traffic_arrivals(&mut self, now: u64) {
        loop {
            let Some(tr) = self.traffic.as_mut() else {
                return;
            };
            if tr.next_at > now {
                return;
            }
            let at = tr.next_at;
            match tr.next_kind {
                TrafficEventKind::Arrival => {
                    if tr.queue.is_empty() {
                        tr.front_started_at = at;
                        tr.served = 0;
                    }
                    tr.queue.push_back(at);
                    let queued = tr.queue.len() as u64;
                    tr.advance();
                    self.metrics.inc(CounterId::RequestsArrived);
                    if let Some((level, sink)) = self.event_sink.as_mut() {
                        if *level >= TraceLevel::Events {
                            self.metrics.inc(CounterId::TraceEvents);
                            sink.record(&TraceEvent::RequestArrived { at, queued });
                        }
                    }
                }
                TrafficEventKind::BurstStart => {
                    tr.advance();
                    self.metrics.inc(CounterId::BurstStarts);
                    if let Some((level, sink)) = self.event_sink.as_mut() {
                        if *level >= TraceLevel::Events {
                            self.metrics.inc(CounterId::TraceEvents);
                            sink.record(&TraceEvent::BurstStart { at });
                        }
                    }
                }
            }
        }
    }

    /// Attributes this step's commit delta to the front request and
    /// completes every request whose instruction budget is now served.
    /// Commits with an empty queue are background work, credited to no
    /// request; leftover progress when the queue drains is discarded
    /// (an idle server banks nothing).
    fn traffic_completions(&mut self, now: u64) {
        let committed = self.core.committed();
        let Some(tr) = self.traffic.as_mut() else {
            return;
        };
        let delta = committed - tr.last_committed;
        tr.last_committed = committed;
        if delta == 0 || tr.queue.is_empty() {
            return;
        }
        tr.served += delta;
        while tr.served >= tr.spec.request_instructions {
            let Some(arrived) = tr.queue.pop_front() else {
                break;
            };
            tr.served -= tr.spec.request_instructions;
            let wait_ns = tr.front_started_at.saturating_sub(arrived);
            let latency_ns = now.saturating_sub(arrived);
            if tr.queue.is_empty() {
                tr.served = 0;
            } else {
                // The next queued request enters service now.
                tr.front_started_at = now;
            }
            self.metrics.inc(CounterId::RequestsCompleted);
            self.metrics.observe_request_latency(latency_ns);
            if let Some((level, sink)) = self.event_sink.as_mut() {
                if *level >= TraceLevel::Events {
                    self.metrics.inc(CounterId::TraceEvents);
                    sink.record(&TraceEvent::RequestCompleted {
                        at: now,
                        wait_ns,
                        latency_ns,
                    });
                }
            }
        }
    }

    /// Delivers a per-nanosecond [`TraceEvent::Sample`] when the sink
    /// runs at [`TraceLevel::Full`].
    fn emit_sample(&mut self, at: u64, vdd: f64, edge: bool) {
        let mode = self.controller.mode();
        if let Some((TraceLevel::Full, sink)) = self.event_sink.as_mut() {
            self.metrics.inc(CounterId::TraceEvents);
            sink.record(&TraceEvent::Sample {
                at,
                mode,
                vdd_mv: vdd_mv(vdd),
                edge,
            });
        }
    }

    /// Re-anchors every counter at "now" and zeroes the energy
    /// integrator.
    fn reset_measurement(&mut self) {
        let cfg = *self.power.config();
        self.power = PowerAccountant::new(cfg);
        // Re-anchor the traffic scenario too: a fresh arrival train
        // starting at "now" (and an empty queue), so every measured
        // window sees the same train relative to its own start,
        // regardless of how long warm-up ran under which policy.
        if let Some(tr) = self.traffic.as_mut() {
            *tr = TrafficState::new(tr.spec, self.now, self.core.committed());
        }
        self.anchors = Anchors {
            now: self.now,
            core: self.core.stats(),
            mem: self.core.mem().stats(),
            l2_accesses: self.core.mem().l2_accesses(),
            dram_accesses: self.core.mem().dram_accesses(),
            bus_transactions: self.core.mem().bus_transactions(),
            mode: self.controller.stats(),
            policy: self.controller.policy_stats(),
        };
    }

    /// Closes the measurement window: charges uncore energy for the
    /// window's L2/bus/DRAM events and builds the result.
    fn finish_window(&mut self) -> RunResult {
        let a = self.anchors;
        let l2_accesses = self.core.mem().l2_accesses() - a.l2_accesses;
        let dram = self.core.mem().dram_accesses() - a.dram_accesses;
        let bus = self.core.mem().bus_transactions() - a.bus_transactions;
        self.power.record_uncore(l2_accesses, dram, bus);

        let core = self.core.stats();
        let mem = self.core.mem().stats();
        let mode_now = self.controller.stats();
        let elapsed_ns = self.now - a.now;
        let committed = core.committed - a.core.committed;
        let demand_misses = mem.l2_demand_misses - a.mem.l2_demand_misses;

        let mut ns_in_mode = mode_now.ns_in_mode;
        for (cur, old) in ns_in_mode.iter_mut().zip(a.mode.ns_in_mode.iter()) {
            *cur -= old;
        }
        let mode = ModeStats {
            ns_in_mode,
            down_transitions: mode_now.down_transitions - a.mode.down_transitions,
            up_transitions: mode_now.up_transitions - a.mode.up_transitions,
        };

        let issue_histogram = {
            let mut h = core.issue_histogram;
            for (b, old) in h.buckets.iter_mut().zip(a.core.issue_histogram.buckets) {
                *b -= old;
            }
            h
        };

        // Fold the window's deltas into the metrics registry, then
        // close it out: the registry becomes this window's
        // `window_metrics` and a fresh one starts accumulating.
        let pstats = self.controller.policy_stats();
        self.metrics
            .add(CounterId::DownTransitions, mode.down_transitions);
        self.metrics
            .add(CounterId::UpTransitions, mode.up_transitions);
        self.metrics.add(
            CounterId::PolicyDownFires,
            pstats.down_triggers - a.policy.down_triggers,
        );
        self.metrics.add(
            CounterId::PolicyDownDeclines,
            pstats.down_expiries - a.policy.down_expiries,
        );
        self.metrics.add(
            CounterId::PolicyUpFires,
            pstats.up_triggers - a.policy.up_triggers,
        );
        self.metrics.add(
            CounterId::PolicyUpDeclines,
            pstats.up_expiries - a.policy.up_expiries,
        );
        self.metrics.add(
            CounterId::BackoffVetoes,
            pstats.backoff_vetoes - a.policy.backoff_vetoes,
        );
        let read_errors = mem.read_errors - a.mem.read_errors;
        let read_retries = mem.read_retries - a.mem.read_retries;
        // Request accounting, read off the in-progress registry before
        // it is taken below. `None` (traffic off) reports zeros and
        // judges tail-latency SLO ceilings vacuously satisfied.
        let traffic_window = self.traffic.as_ref().map(|tr| {
            (
                self.metrics.get(CounterId::RequestsArrived),
                self.metrics.get(CounterId::RequestsCompleted),
                tr.queue.len() as u64,
                self.metrics.request_latency_percentile(50, 100),
                self.metrics.request_latency_percentile(99, 100),
                self.metrics.request_latency_percentile(999, 1000),
            )
        });
        let slo = self.slo.map(|spec| {
            let mut hist = mem.fill_retry_hist;
            for (h, old) in hist.iter_mut().zip(a.mem.fill_retry_hist) {
                *h -= old;
            }
            let fills: u64 = hist.iter().sum();
            let (retry_rate_ppm, p99_ns) = if fills == 0 {
                (0, 0)
            } else {
                // Each retry adds one fixed detect + reissue delay to
                // its fill; the p99 added latency is the smallest
                // retry count covering ≥99% of successful fills.
                let step_ns = READ_ERROR_DETECT_NS + READ_ERROR_RETRY_NS;
                let need = (fills * 99).div_ceil(100);
                let mut cum = 0u64;
                let mut p99 = 0u64;
                for (attempts, n) in hist.iter().enumerate() {
                    cum += n;
                    if cum >= need {
                        p99 = attempts as u64 * step_ns;
                        break;
                    }
                }
                (read_retries.saturating_mul(1_000_000) / fills, p99)
            };
            let outcome = spec.evaluate_window(
                retry_rate_ppm,
                p99_ns,
                traffic_window.map(|t| t.4),
                traffic_window.map(|t| t.5),
            );
            if !outcome.compliant {
                self.metrics.inc(CounterId::SloViolations);
            }
            outcome
        });
        self.metrics.inc(CounterId::Windows);
        self.metrics.fold_issue_buckets(&issue_histogram.buckets);
        if self.event_sink.is_some() {
            self.flush_trace_events();
            self.emit_trace_event(&TraceEvent::WindowClosed {
                at: self.now,
                instructions: committed,
                issue_buckets: issue_histogram.buckets,
            });
        }
        self.window_metrics = std::mem::take(&mut self.metrics);

        let result = RunResult {
            workload: self.workload.clone(),
            instructions: committed,
            elapsed_ns,
            pipeline_cycles: core.cycles - a.core.cycles,
            ipc: if elapsed_ns == 0 {
                0.0
            } else {
                committed as f64 / elapsed_ns as f64
            },
            mpki: if committed == 0 {
                0.0
            } else {
                demand_misses as f64 * 1000.0 / committed as f64
            },
            prefetch_mpki: if committed == 0 {
                0.0
            } else {
                (mem.l2_prefetch_misses - a.mem.l2_prefetch_misses) as f64 * 1000.0
                    / committed as f64
            },
            energy_pj: self.power.total_energy_pj(),
            energy: self.power.breakdown(),
            avg_power_w: self.power.average_power_w(elapsed_ns),
            mode,
            down_triggers: self.controller.policy_stats().down_triggers,
            down_expiries: self.controller.policy_stats().down_expiries,
            up_triggers: self.controller.policy_stats().up_triggers,
            up_expiries: self.controller.policy_stats().up_expiries,
            zero_issue_cycles: core.zero_issue_cycles - a.core.zero_issue_cycles,
            mispredicts: core.mispredicts - a.core.mispredicts,
            branches: core.branches - a.core.branches,
            issue_histogram,
            read_errors,
            read_retries,
            requests_arrived: traffic_window.map_or(0, |t| t.0),
            requests_completed: traffic_window.map_or(0, |t| t.1),
            request_backlog: traffic_window.map_or(0, |t| t.2),
            request_p50_ns: traffic_window.map_or(0, |t| t.3),
            request_p99_ns: traffic_window.map_or(0, |t| t.4),
            request_p999_ns: traffic_window.map_or(0, |t| t.5),
            slo,
            core_results: Vec::new(),
        };
        self.reset_measurement();
        result
    }

    // ---- multicore driver hooks ------------------------------------
    //
    // `MulticoreSystem` steps N `System`s in nanosecond lockstep from
    // outside this module, so it needs crate-visible handles onto the
    // window machinery that `run_internal` drives privately.

    /// Attaches this core's hierarchy to the chip's shared fabric.
    pub(crate) fn attach_shared_fabric(&mut self, handle: vsv_mem::SharedHandle) {
        self.core.mem_mut().attach_shared(handle);
    }

    /// Replays `run_internal`'s window prologue: dispatches an armed
    /// injected fault (terminal kinds fail immediately; the
    /// unrecoverable-read kind arms the hierarchy and lets the window
    /// run).
    pub(crate) fn begin_window_faults(&mut self) -> Result<(), SimError> {
        if let Some(kind) = self.inject_fault {
            match kind {
                FaultKind::Deadlock => return Err(self.deadlock_error()),
                FaultKind::Panic => panic!(
                    "injected panic fault (SystemConfig::inject_fault) at t={}",
                    self.now
                ),
                FaultKind::UnrecoverableRead => self.core.mem_mut().arm_forced_read_error(),
            }
        }
        Ok(())
    }

    /// Escalates a parked exhausted retry budget into the typed error
    /// `run_internal` would have returned, if one is pending.
    pub(crate) fn take_unrecoverable_error(&mut self) -> Option<SimError> {
        self.pending_unrecoverable
            .take()
            .map(|(at, retries)| SimError::UnrecoverableRead {
                at,
                committed: self.core.committed(),
                workload: self.workload.clone(),
                retries,
                mode: self.controller.mode(),
            })
    }

    /// Crate-visible [`System::deadlock_error`] for the lockstep
    /// driver's own progress watchdog.
    pub(crate) fn deadlock_err(&self) -> SimError {
        self.deadlock_error()
    }

    /// Crate-visible window close: charges uncore energy, builds the
    /// [`RunResult`] and re-anchors — exactly what `run_internal` does
    /// when its commit target is reached.
    pub(crate) fn finish_window_now(&mut self) -> RunResult {
        self.finish_window()
    }

    /// The per-window simulated-time budget, for the lockstep driver.
    pub(crate) fn sim_budget_ns(&self) -> Option<u64> {
        self.max_sim_ns
    }
}

/// Maps the core's activity vector onto the power model's structure
/// catalog.
fn sample_from(act: &CycleActivity) -> ActivitySample {
    let mut s: ActivitySample = Default::default();
    s[StructureId::Fetch.index()] = act.fetched;
    s[StructureId::Rename.index()] = act.dispatched;
    s[StructureId::Ruu.index()] = act.ruu_reads + act.ruu_writes + act.ruu_wakeups;
    s[StructureId::Lsq.index()] = act.lsq_accesses;
    s[StructureId::RegFile.index()] = act.regfile_reads + act.regfile_writes;
    s[StructureId::IL1.index()] = act.il1_accesses;
    s[StructureId::DL1.index()] = act.dl1_accesses;
    s[StructureId::Bpred.index()] = act.bpred_accesses;
    s[StructureId::IntAlu.index()] = act.int_alu_ops;
    s[StructureId::IntMulDiv.index()] = act.int_muldiv_ops;
    s[StructureId::FpAlu.index()] = act.fp_alu_ops;
    s[StructureId::FpMulDiv.index()] = act.fp_muldiv_ops;
    s[StructureId::ResultBus.index()] = act.resultbus_ops;
    // The clock tree toggles every cycle; its energy is the per-cycle
    // clock term, charged by the accountant regardless of this count.
    s[StructureId::ClockTree.index()] = 0;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsv_workloads::{Generator, WorkloadParams};

    fn memory_bound_params() -> WorkloadParams {
        let mut p = WorkloadParams::compute_bound("membound");
        p.working_set_bytes = 32 * 1024 * 1024;
        p.far_fraction = 0.25;
        p.miss_dependency = 1.0;
        p.ilp_chains = 1;
        p
    }

    #[test]
    fn baseline_run_reports_sane_numbers() {
        let mut sys = System::new(
            SystemConfig::baseline(),
            Generator::new(WorkloadParams::compute_bound("t")),
        );
        sys.warm_up(5_000);
        let r = sys.run(20_000);
        // Commit is 8-wide, so the window may overshoot by up to 7.
        assert!(
            (20_000..20_008).contains(&r.instructions),
            "{}",
            r.instructions
        );
        assert!(r.ipc > 0.5, "compute-bound twin should flow, got {}", r.ipc);
        assert!(
            r.avg_power_w > 1.0 && r.avg_power_w < 100.0,
            "{}",
            r.avg_power_w
        );
        assert_eq!(r.mode.down_transitions, 0, "VSV disabled");
    }

    #[test]
    fn baseline_cycles_equal_elapsed_ns() {
        let mut sys = System::new(
            SystemConfig::baseline(),
            Generator::new(WorkloadParams::compute_bound("t")),
        );
        let r = sys.run(10_000);
        assert_eq!(
            r.pipeline_cycles, r.elapsed_ns,
            "full speed: 1 cycle per ns"
        );
    }

    #[test]
    fn vsv_saves_power_on_memory_bound_twin() {
        let params = memory_bound_params();
        let mut base = System::new(SystemConfig::baseline(), Generator::new(params));
        base.warm_up(10_000);
        let rb = base.run(30_000);

        let mut vsv = System::new(SystemConfig::vsv_with_fsms(), Generator::new(params));
        vsv.warm_up(10_000);
        let rv = vsv.run(30_000);

        assert!(rb.mpki > 4.0, "twin must be memory bound, MR {}", rb.mpki);
        assert!(rv.mode.down_transitions > 0, "VSV must engage");
        assert!(
            rv.avg_power_w < rb.avg_power_w * 0.95,
            "VSV should save >5% power: {} vs {}",
            rv.avg_power_w,
            rb.avg_power_w
        );
        let degradation = (rv.elapsed_ns as f64 / rb.elapsed_ns as f64 - 1.0) * 100.0;
        assert!(
            degradation < 15.0,
            "degradation should be bounded, got {degradation}%"
        );
    }

    #[test]
    fn vsv_leaves_compute_bound_twin_alone() {
        let mut p = WorkloadParams::compute_bound("cpu");
        p.far_fraction = 0.0;
        let mut base = System::new(SystemConfig::baseline(), Generator::new(p));
        base.warm_up(5_000);
        let rb = base.run(20_000);
        let mut vsv = System::new(SystemConfig::vsv_with_fsms(), Generator::new(p));
        vsv.warm_up(5_000);
        let rv = vsv.run(20_000);
        // A handful of first-touch hot-set blocks may still miss after
        // warm-up; the twin has no sustained miss traffic though.
        assert!(
            rv.mode.down_transitions <= 2,
            "essentially no transitions expected, got {}",
            rv.mode.down_transitions
        );
        let delta = (rv.elapsed_ns as f64 / rb.elapsed_ns as f64 - 1.0).abs();
        assert!(
            delta < 0.02,
            "near-identical timing expected, delta {delta}"
        );
    }

    #[test]
    fn mode_residency_sums_to_elapsed() {
        let mut sys = System::new(
            SystemConfig::vsv_without_fsms(),
            Generator::new(memory_bound_params()),
        );
        sys.warm_up(5_000);
        let r = sys.run(20_000);
        let total: u64 = r.mode.ns_in_mode.iter().sum();
        assert_eq!(total, r.elapsed_ns);
        assert!(r.mode.low_residency() > 0.0, "memory-bound: some low time");
    }

    #[test]
    fn timekeeping_cuts_demand_misses_on_streaming_twin() {
        let mut p = WorkloadParams::compute_bound("stream");
        p.working_set_bytes = 8 * 1024 * 1024;
        p.far_fraction = 0.30;
        p.mem_fraction = 0.35;
        let cfg = SystemConfig::baseline();
        let mut base = System::new(cfg, Generator::new(p));
        base.warm_up(20_000);
        let rb = base.run(60_000);

        let cfg_tk = SystemConfig::baseline().with_timekeeping(true);
        let mut tk = System::new(cfg_tk, Generator::new(p));
        tk.warm_up(20_000);
        let rt = tk.run(60_000);

        assert!(rb.mpki > 5.0, "stream twin must miss: {}", rb.mpki);
        assert!(
            rt.mpki < rb.mpki * 0.8,
            "TK should cut streaming demand misses: {} -> {}",
            rb.mpki,
            rt.mpki
        );
    }

    #[test]
    fn warm_up_resets_measurement() {
        let mut sys = System::new(
            SystemConfig::baseline(),
            Generator::new(WorkloadParams::compute_bound("t")),
        );
        sys.warm_up(5_000);
        let r = sys.run(1_000);
        assert!(
            (1_000..1_008).contains(&r.instructions),
            "window counts only measured insts (8-wide commit may overshoot): {}",
            r.instructions
        );
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let mut cfg = SystemConfig::baseline();
        cfg.core.issue_width = 0;
        let err = System::try_new(cfg, Generator::new(WorkloadParams::compute_bound("t")))
            .expect_err("invalid");
        assert_eq!(err.kind(), "invalid-config");
        assert!(err.to_string().contains("issue_width"), "{err}");
        let zero_budget = SystemConfig::baseline().with_max_sim_ns(Some(0));
        assert!(zero_budget.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid configuration")]
    fn new_still_panics_on_invalid_config() {
        let mut cfg = SystemConfig::baseline();
        cfg.core.issue_width = 0;
        let _ = System::new(cfg, Generator::new(WorkloadParams::compute_bound("t")));
    }

    #[test]
    fn budget_exhaustion_is_a_typed_error() {
        // A 50-ns budget cannot hold a 20k-instruction window.
        let cfg = SystemConfig::baseline().with_max_sim_ns(Some(50));
        let mut sys = System::new(cfg, Generator::new(WorkloadParams::compute_bound("t")));
        sys.set_workload_name("budget");
        let err = sys.try_run(20_000).expect_err("budget too small");
        match err {
            SimError::BudgetExhausted {
                limit_ns, workload, ..
            } => {
                assert_eq!(limit_ns, 50);
                assert_eq!(workload, "budget");
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        // A generous budget changes nothing.
        let cfg = SystemConfig::baseline().with_max_sim_ns(Some(u64::MAX));
        let mut sys = System::new(cfg, Generator::new(WorkloadParams::compute_bound("t")));
        assert!(sys.try_run(5_000).is_ok());
    }

    #[test]
    fn injected_deadlock_is_typed_and_carries_the_ring() {
        let cfg = SystemConfig::vsv_with_fsms().with_injected_fault(crate::FaultKind::Deadlock);
        let mut sys = System::new(cfg, Generator::new(memory_bound_params()));
        sys.set_workload_name("membound");
        let err = sys.try_warm_up(5_000).expect_err("fault armed");
        match &err {
            SimError::Deadlock {
                workload,
                recent_transitions,
                ..
            } => {
                assert_eq!(workload, "membound");
                assert!(
                    !recent_transitions.is_empty(),
                    "ring seeds the initial mode"
                );
                assert!(recent_transitions.len() <= 8);
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "injected panic fault")]
    fn injected_panic_panics() {
        let cfg = SystemConfig::baseline().with_injected_fault(crate::FaultKind::Panic);
        let mut sys = System::new(cfg, Generator::new(WorkloadParams::compute_bound("t")));
        let _ = sys.run(1_000);
    }

    #[test]
    fn transition_ring_tracks_mode_changes() {
        let mut sys = System::new(
            SystemConfig::vsv_with_fsms(),
            Generator::new(memory_bound_params()),
        );
        sys.warm_up(5_000);
        let r = sys.run(20_000);
        assert!(r.mode.down_transitions > 0, "memory-bound twin must dip");
        // Force a deadlock report and check the ring came along.
        sys.inject_fault = Some(crate::FaultKind::Deadlock);
        let err = sys.try_run(1_000).expect_err("fault armed");
        match err {
            SimError::Deadlock {
                recent_transitions, ..
            } => {
                assert!(
                    recent_transitions.len() >= 2,
                    "a run with mode activity fills the ring: {recent_transitions:?}"
                );
                assert!(recent_transitions.len() <= 8, "ring is bounded");
                for pair in recent_transitions.windows(2) {
                    assert!(pair[0].at_ns <= pair[1].at_ns, "oldest first");
                    assert_ne!(pair[0].mode, pair[1].mode, "entries are transitions");
                }
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn injected_unrecoverable_read_is_typed_and_counts_the_retries() {
        let cfg =
            SystemConfig::vsv_with_fsms().with_injected_fault(crate::FaultKind::UnrecoverableRead);
        let mut sys = System::new(cfg, Generator::new(memory_bound_params()));
        sys.set_workload_name("membound");
        let err = sys.try_warm_up(5_000).expect_err("fault armed");
        match &err {
            SimError::UnrecoverableRead {
                workload, retries, ..
            } => {
                assert_eq!(workload, "membound");
                assert_eq!(
                    *retries,
                    vsv_mem::MAX_READ_RETRIES,
                    "the full budget was burned before escalation"
                );
            }
            other => panic!("expected UnrecoverableRead, got {other:?}"),
        }
        assert_eq!(err.kind(), "unrecoverable-read");
    }

    #[test]
    fn error_model_at_vddh_is_bit_identical_to_model_off() {
        // AlwaysHigh never leaves VDDH, where the error probability is
        // exactly 0: the enabled model must not perturb anything even
        // though its draw counter advances on every delivery.
        let run = |rate: f64| {
            let cfg = SystemConfig::with_policy(PolicySpec::AlwaysHigh)
                .with_error_rate(rate)
                .with_error_seed(7);
            let mut sys = System::new(cfg, Generator::new(memory_bound_params()));
            sys.warm_up(5_000);
            sys.run(20_000)
        };
        let off = run(0.0);
        let on = run(0.5);
        assert_eq!(off, on, "model-on at VDDH must match model-off exactly");
        assert_eq!(on.read_errors, 0);
    }

    #[test]
    fn slo_outcome_is_reported_and_violations_counted() {
        let cfg = SystemConfig::vsv_with_fsms()
            .with_error_rate(0.02)
            .with_error_seed(11)
            .with_slo(Some(crate::SloSpec::new(0, 0)));
        let mut sys = System::new(cfg, Generator::new(memory_bound_params()));
        sys.warm_up(5_000);
        let r = sys.try_run(20_000).expect("no escalation at this rate");
        assert!(
            r.read_retries > 0,
            "a memory-bound VSV run at 2% VDDL error rate must retry"
        );
        assert_eq!(r.read_errors, r.read_retries, "no budget exhausted");
        let slo = r.slo.expect("SLO configured");
        assert!(!slo.compliant, "a zero-tolerance SLO must be violated");
        assert!(slo.retry_rate_ppm > 0);
        assert_eq!(sys.window_metrics().get(CounterId::SloViolations), 1);
        assert_eq!(
            sys.window_metrics().get(CounterId::ReadRetries),
            r.read_retries
        );
        // A generous SLO on the same configuration is compliant.
        let cfg_ok = SystemConfig::vsv_with_fsms()
            .with_error_rate(0.02)
            .with_error_seed(11)
            .with_slo(Some(crate::SloSpec::new(1_000_000, 1_000)));
        let mut sys_ok = System::new(cfg_ok, Generator::new(memory_bound_params()));
        sys_ok.warm_up(5_000);
        let r_ok = sys_ok.try_run(20_000).expect("no escalation");
        assert!(r_ok.slo.expect("SLO configured").compliant);
        assert_eq!(sys_ok.window_metrics().get(CounterId::SloViolations), 0);
    }

    #[test]
    fn invalid_error_rate_is_rejected() {
        let cfg = SystemConfig::baseline().with_error_rate(-0.1);
        assert!(cfg.validate().is_err());
        let cfg = SystemConfig::baseline().with_error_rate(1.5);
        assert!(cfg.validate().is_err());
        assert!(SystemConfig::baseline()
            .with_error_rate(1.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn results_are_deterministic() {
        let run = || {
            let mut sys = System::new(
                SystemConfig::vsv_with_fsms(),
                Generator::new(memory_bound_params()),
            );
            sys.warm_up(5_000);
            sys.run(20_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
        assert!((a.energy_pj - b.energy_pj).abs() < 1e-6);
        assert_eq!(a.mode.down_transitions, b.mode.down_transitions);
    }

    #[test]
    fn traffic_completes_requests_under_light_load() {
        let spec = crate::TrafficSpec::poisson(0.05, 2_000).with_seed(3);
        let cfg = SystemConfig::baseline().with_traffic(Some(spec));
        let mut sys = System::new(cfg, Generator::new(WorkloadParams::compute_bound("t")));
        sys.warm_up(5_000);
        let r = sys.run(100_000);
        assert!(r.requests_arrived > 0, "arrivals expected over 100k insts");
        assert!(
            r.requests_completed > 0,
            "light load on a fast twin must drain: {r}"
        );
        assert!(
            r.request_backlog <= 2,
            "light load must not accumulate a queue: {}",
            r.request_backlog
        );
        assert!(r.request_p50_ns > 0 && r.request_p99_ns >= r.request_p50_ns);
        assert!(r.request_p999_ns >= r.request_p99_ns);
    }

    #[test]
    fn traffic_overload_builds_backlog() {
        // 2 req/µs of 50k-instruction requests vastly exceeds what an
        // 8-wide core can commit: the queue must grow, and latency must
        // be dominated by queueing (p99 far above a lone service time).
        let spec = crate::TrafficSpec::poisson(2.0, 50_000).with_seed(3);
        let cfg = SystemConfig::baseline().with_traffic(Some(spec));
        let mut sys = System::new(cfg, Generator::new(WorkloadParams::compute_bound("t")));
        sys.warm_up(5_000);
        let r = sys.run(200_000);
        assert!(r.request_backlog > 0, "overload must leave a backlog: {r}");
        assert!(r.requests_arrived > r.requests_completed);
    }

    #[test]
    fn traffic_is_pure_accounting_over_the_simulation() {
        // The request layer observes commits; it must not perturb the
        // simulation itself. Timing, energy, and microarchitectural
        // counters are bit-identical with traffic on or off.
        let run = |traffic: Option<crate::TrafficSpec>| {
            let cfg = SystemConfig::vsv_with_fsms().with_traffic(traffic);
            let mut sys = System::new(cfg, Generator::new(memory_bound_params()));
            sys.warm_up(5_000);
            sys.run(20_000)
        };
        let off = run(None);
        let on = run(Some(crate::TrafficSpec::mmpp(
            0.01, 0.2, 4_000, 8_000, 1_000,
        )));
        assert!(on.requests_arrived > 0, "traffic must actually run");
        assert_eq!(off.elapsed_ns, on.elapsed_ns);
        assert_eq!(off.pipeline_cycles, on.pipeline_cycles);
        assert_eq!(off.instructions, on.instructions);
        assert!((off.energy_pj - on.energy_pj).abs() < 1e-9);
        assert_eq!(off.mode, on.mode);
        assert_eq!(off.read_retries, on.read_retries);
    }

    #[test]
    fn traffic_fast_forward_equals_ns_stepping() {
        // Fast-forward capping at the next traffic event must make ff
        // invisible to the request ledger as well as to the core.
        let run = |ff: bool| {
            let spec = crate::TrafficSpec::mmpp(0.02, 0.5, 3_000, 6_000, 1_500).with_seed(9);
            let cfg = SystemConfig::vsv_with_fsms()
                .with_traffic(Some(spec))
                .with_fast_forward(ff);
            let mut sys = System::new(cfg, Generator::new(memory_bound_params()));
            sys.warm_up(5_000);
            sys.run(30_000)
        };
        let stepped = run(false);
        let fast = run(true);
        assert!(fast.requests_arrived > 0, "traffic must actually run");
        assert_eq!(stepped, fast, "ff must not skip or reorder requests");
    }

    #[test]
    fn traffic_slo_ceilings_gate_the_outcome() {
        // An impossible request-latency ceiling flips the verdict even
        // when the reliability half of the SLO is untouched.
        let run = |slo: crate::SloSpec| {
            let spec = crate::TrafficSpec::poisson(0.05, 2_000).with_seed(3);
            let cfg = SystemConfig::baseline()
                .with_traffic(Some(spec))
                .with_slo(Some(slo));
            let mut sys = System::new(cfg, Generator::new(WorkloadParams::compute_bound("t")));
            sys.warm_up(5_000);
            sys.run(100_000)
        };
        let strict = run(crate::SloSpec::new(u64::MAX, u64::MAX).with_request_p99(1));
        let slo = strict.slo.expect("SLO configured");
        assert!(!slo.compliant, "1-ns p99 ceiling must be violated");
        assert_eq!(slo.request_p99_ns, Some(strict.request_p99_ns));
        let generous = run(crate::SloSpec::new(u64::MAX, u64::MAX).with_request_p99(u64::MAX - 1));
        assert!(generous.slo.expect("SLO configured").compliant);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::controller::Mode;
    use vsv_workloads::{Generator, WorkloadParams};

    #[test]
    fn trace_records_modes_and_voltages() {
        let mut p = WorkloadParams::compute_bound("trace");
        p.working_set_bytes = 32 * 1024 * 1024;
        p.far_fraction = 0.25;
        p.miss_dependency = 1.0;
        p.ilp_chains = 1;
        let mut sys = System::new(SystemConfig::vsv_with_fsms(), Generator::new(p));
        sys.enable_trace(50_000);
        sys.warm_up(5_000);
        let _ = sys.run(20_000);
        let trace = sys.take_trace().expect("tracing was on");
        assert!(!trace.is_empty());
        let modes: std::collections::HashSet<_> = trace.iter().map(|s| s.mode).collect();
        assert!(modes.contains(&Mode::High));
        assert!(modes.contains(&Mode::Low), "memory-bound run must go low");
        // Voltage is always inside the rail band.
        for s in trace.iter() {
            assert!(s.vdd >= 1.2 - 1e-9 && s.vdd <= 1.8 + 1e-9);
        }
        // The strip renders one char per sample.
        assert_eq!(trace.strip().len(), trace.len());
    }

    #[test]
    fn trace_off_by_default_and_disablable() {
        let mut sys = System::new(
            SystemConfig::baseline(),
            Generator::new(WorkloadParams::compute_bound("t")),
        );
        assert!(sys.trace().is_none());
        sys.enable_trace(128);
        let _ = sys.run(1_000);
        assert!(sys.trace().is_some());
        let t = sys.take_trace().expect("on");
        assert!(t.len() <= 128);
        assert!(sys.trace().is_none(), "take_trace turns tracing off");
    }
}
