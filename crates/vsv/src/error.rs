//! Typed simulation failures — the error half of the fault-tolerant
//! sweep contract.
//!
//! Every way a run can fail is a [`SimError`] variant, so a sweep can
//! record a failure as *data* (one grid cell's [`crate::JobOutcome`])
//! instead of tearing down the whole grid. The variants carry enough
//! context to act as self-contained bug reports: a deadlock names the
//! workload, the controller mode, and the last few mode transitions
//! leading up to the hang.
//!
//! The panicking entry points ([`crate::System::run`],
//! [`crate::Experiment::run`], …) remain as thin wrappers over the
//! `try_*` forms and render these errors in their panic messages.

use crate::controller::Mode;

/// One controller mode change, as kept in the always-on diagnostic
/// ring ([`SimError::Deadlock::recent_transitions`]).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeTransition {
    /// Simulated nanosecond at which the controller entered `mode`.
    pub at_ns: u64,
    /// The mode entered.
    pub mode: Mode,
}

impl std::fmt::Display for ModeTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t={}→{:?}", self.at_ns, self.mode)
    }
}

/// A fault forced by [`crate::SystemConfig::inject_fault`] — the
/// test-only hook that exercises the sweep engine's error paths
/// deterministically, end to end, without needing a real model bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The run reports a [`SimError::Deadlock`] (through the same
    /// construction path as the real no-progress detector).
    Deadlock,
    /// The run panics, exercising the sweep's `catch_unwind`
    /// isolation and bounded-retry policy.
    Panic,
    /// Every cache-read delivery errs until one read exhausts its
    /// retry budget, exercising the low-voltage escalation path
    /// ([`SimError::UnrecoverableRead`]) end to end.
    UnrecoverableRead,
}

/// Why a simulation run failed.
///
/// Produced by the `try_*` entry points ([`crate::System::try_run`],
/// [`crate::Experiment::try_run`]) and recorded per grid cell by
/// [`crate::Sweep`] as [`crate::JobOutcome::Failed`].
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The machine stopped making forward progress — no instruction
    /// committed for the watchdog window (a model deadlock; indicates
    /// a simulator bug, or an injected [`FaultKind::Deadlock`]).
    Deadlock {
        /// Simulated time when the deadlock was declared, ns.
        at: u64,
        /// Instructions committed up to that point.
        committed: u64,
        /// Workload name (empty if unset).
        workload: String,
        /// Controller mode at declaration time.
        mode: Mode,
        /// The last (up to 8) controller mode transitions before the
        /// hang, oldest first — the trace-ring tail that turns the
        /// error into a self-contained bug report.
        recent_transitions: Vec<ModeTransition>,
    },
    /// A configuration failed validation before the run started.
    InvalidConfig {
        /// Human-readable description of the first inconsistency.
        reason: String,
    },
    /// The run exceeded its [`crate::SystemConfig::max_sim_ns`]
    /// simulated-time budget without completing its instruction
    /// window.
    BudgetExhausted {
        /// The configured budget, simulated ns per window.
        limit_ns: u64,
        /// Simulated time when the budget ran out, ns.
        at: u64,
        /// Instructions committed up to that point.
        committed: u64,
        /// Workload name (empty if unset).
        workload: String,
    },
    /// The simulation panicked and the panic was caught at the sweep
    /// boundary (per-job isolation).
    Panic {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A low-voltage cache read kept failing after its full retry
    /// budget (see `MAX_READ_RETRIES` in `vsv-mem`) — the modeled
    /// machine cannot guarantee the architectural value, so the run
    /// aborts rather than propagate silent corruption.
    UnrecoverableRead {
        /// Simulated time of the final failed attempt, ns.
        at: u64,
        /// Instructions committed up to that point.
        committed: u64,
        /// Workload name (empty if unset).
        workload: String,
        /// Retries attempted before escalation (the read was tried
        /// `retries + 1` times in total).
        retries: u8,
        /// Controller mode at escalation time (the operating point
        /// whose error rate burned the budget).
        mode: Mode,
    },
}

impl SimError {
    /// Wraps a validation message as [`SimError::InvalidConfig`].
    #[must_use]
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        SimError::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// A short stable label for the variant (`deadlock`,
    /// `invalid-config`, `budget-exhausted`, `panic`) — used in
    /// one-line summaries (CLI failure tables, CI logs).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Deadlock { .. } => "deadlock",
            SimError::InvalidConfig { .. } => "invalid-config",
            SimError::BudgetExhausted { .. } => "budget-exhausted",
            SimError::Panic { .. } => "panic",
            SimError::UnrecoverableRead { .. } => "unrecoverable-read",
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock {
                at,
                committed,
                workload,
                mode,
                recent_transitions,
            } => {
                write!(
                    f,
                    "simulator deadlock: no commit progress at t={at} \
                     (committed={committed}, workload={workload:?}, mode={mode:?}); \
                     recent mode transitions: "
                )?;
                if recent_transitions.is_empty() {
                    write!(f, "none recorded")
                } else {
                    let mut first = true;
                    for t in recent_transitions {
                        if !first {
                            write!(f, ", ")?;
                        }
                        first = false;
                        write!(f, "{t}")?;
                    }
                    Ok(())
                }
            }
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            SimError::BudgetExhausted {
                limit_ns,
                at,
                committed,
                workload,
            } => write!(
                f,
                "simulation budget exhausted: window exceeded {limit_ns} simulated ns \
                 at t={at} (committed={committed}, workload={workload:?})"
            ),
            SimError::Panic { message } => write!(f, "simulation panicked: {message}"),
            SimError::UnrecoverableRead {
                at,
                committed,
                workload,
                retries,
                mode,
            } => write!(
                f,
                "unrecoverable read: a low-voltage cache read failed {retries} retries \
                 at t={at} (committed={committed}, workload={workload:?}, mode={mode:?})"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::Deadlock {
            at: 1234,
            committed: 56,
            workload: "mcf".to_owned(),
            mode: Mode::Low,
            recent_transitions: vec![
                ModeTransition {
                    at_ns: 1000,
                    mode: Mode::High,
                },
                ModeTransition {
                    at_ns: 1100,
                    mode: Mode::Low,
                },
            ],
        };
        let s = e.to_string();
        assert!(s.contains("deadlock"), "{s}");
        assert!(s.contains("mcf"), "{s}");
        assert!(s.contains("t=1100→Low"), "{s}");
        assert_eq!(e.kind(), "deadlock");
    }

    #[test]
    fn deadlock_without_transitions_still_displays() {
        let e = SimError::Deadlock {
            at: 0,
            committed: 0,
            workload: String::new(),
            mode: Mode::High,
            recent_transitions: Vec::new(),
        };
        assert!(e.to_string().contains("none recorded"));
    }

    #[test]
    fn kinds_are_distinct() {
        let errors = [
            SimError::invalid_config("nope"),
            SimError::BudgetExhausted {
                limit_ns: 1,
                at: 2,
                committed: 3,
                workload: String::new(),
            },
            SimError::Panic {
                message: "boom".to_owned(),
            },
            SimError::UnrecoverableRead {
                at: 99,
                committed: 5,
                workload: "mcf".to_owned(),
                retries: 3,
                mode: Mode::Low,
            },
        ];
        let kinds: std::collections::HashSet<_> = errors.iter().map(SimError::kind).collect();
        assert_eq!(kinds.len(), errors.len());
        assert!(errors[0].to_string().contains("nope"));
        assert!(errors[1].to_string().contains("exceeded 1 simulated ns"));
        assert!(errors[2].to_string().contains("boom"));
        assert!(
            errors[3].to_string().contains("failed 3 retries"),
            "{}",
            errors[3]
        );
        assert_eq!(errors[3].kind(), "unrecoverable-read");
    }
}
