//! The VSV mode controller: the cycle-accurate state machine over
//! power modes and transitions (paper §4, Figures 2 and 3).
//!
//! Timeline of a high→low transition (Figure 2): after the policy
//! decides, the control signal travels 2 ns to the clock-tree root and
//! the slower clock propagates for 2 ns — the processor still runs at
//! full speed and VDDH during these 4 ns — then the 12 ns VDD ramp
//! runs with the processor at half speed and falling voltage.
//!
//! Timeline of a low→high transition (Figure 3): after the policy
//! decides, the control signal travels 2 ns (half speed, VDDL), the
//! 12 ns VDD ramp-up runs at half speed, and the full-speed clock
//! distribution overlaps the ramp's last 2 ns, so full speed resumes
//! exactly when VDDH is reached.
//!
//! *Which* transitions to take is delegated to a [`DvsPolicy`]
//! (selected by [`VsvConfig::policy`]); *how* they unfold — phase
//! boundaries, ramp voltages, the 66 nJ ramp charges — stays here, so
//! every policy pays the same honest circuit costs.
//!
//! # N-level ladders
//!
//! The supply runs on a [`VoltageLadder`]: an ordered set of operating
//! points from VDDH (level 0) down toward VDDL
//! ([`VsvConfig::ladder`]). The paper's two rails are the depth-2
//! ladder and remain a bit-identical special case
//! (`tests/ladder_equivalence.rs`). Transitions always move *one
//! adjacent step* at a time along the Figure 2/3 timeline — control
//! distribution, then a constant-dV/dt ramp sized to the step's
//! voltage swing — and the controller *sequences* multi-step moves:
//! a policy retargets (via [`Decision::Level`]) and the in-flight
//! step completes before the next one starts, so a descent can
//! reverse mid-ramp without ever leaving the timeline. [`Mode::High`]
//! means "settled at level 0", [`Mode::Low`] "settled at any lower
//! level"; clock periods per level come from the calibrated
//! [`VoltageCurve`].

use vsv_mem::VsvSignal;
use vsv_power::{TechParams, VoltageCurve, VoltageLadder, MAX_LADDER_DEPTH};

use crate::fsm::{DownPolicy, UpPolicy};
use crate::policy::{Decision, DvsPolicy, PolicySpec, PolicyStats};
use crate::trace::{vdd_mv, FsmId, TraceEvent, TraceLevel};

/// The controller's operating mode.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Full speed, VDDH — settled at ladder level 0 (the default).
    High,
    /// Slower-clock distribution before a down-step: still at the
    /// departing level's speed and voltage (4 ns when leaving full
    /// speed — 2 ns control + 2 ns clock tree — else 2 ns control
    /// only).
    DownDistribute,
    /// VDD ramping down one ladder step: the destination level's
    /// speed, falling voltage (12 ns for the full 2-rail swing;
    /// proportionally less per ladder step).
    RampDown,
    /// Settled at a reduced rail (any ladder level below 0; VDDL on
    /// the 2-rail ladder). Half speed under the paper's calibration.
    Low,
    /// Control-signal distribution before an up-ramp: half speed,
    /// VDDL for 2 ns.
    UpDistribute,
    /// VDD ramping up: half speed, rising voltage (12 ns, the final
    /// 2 ns overlapped with full-clock distribution).
    RampUp,
}

impl Mode {
    /// All modes, for residency accounting.
    pub const ALL: [Mode; Mode::COUNT] = [
        Mode::High,
        Mode::DownDistribute,
        Mode::RampDown,
        Mode::Low,
        Mode::UpDistribute,
        Mode::RampUp,
    ];

    /// Number of modes (the residency-array length).
    pub const COUNT: usize = 6;

    /// Dense index into residency arrays: the declaration-order
    /// discriminant, which is also the position in [`Mode::ALL`]
    /// (pinned by a compile-time assertion below, so adding a mode
    /// cannot silently desync residency accounting).
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Pipeline clock period in this mode on the paper's 2-rail
    /// ladder, in nanoseconds. Deeper ladders have per-*level*
    /// periods ([`VsvController::current_period_ns`]); this
    /// mode-only view stays exact for depth 2 because every level
    /// below 0 quantizes to the half-speed clock.
    #[must_use]
    pub fn clock_period_ns(self) -> u64 {
        match self {
            Mode::High | Mode::DownDistribute => 1,
            _ => 2,
        }
    }

    /// The one-character rendering used in timeline strips: `H` high,
    /// `d`/`D` down-distribute/ramp-down, `L` low, `u`/`U`
    /// up-distribute/ramp-up.
    #[must_use]
    pub fn strip_char(self) -> char {
        match self {
            Mode::High => 'H',
            Mode::DownDistribute => 'd',
            Mode::RampDown => 'D',
            Mode::Low => 'L',
            Mode::UpDistribute => 'u',
            Mode::RampUp => 'U',
        }
    }
}

// `Mode::ALL` must enumerate every mode in index order.
const _: () = {
    let mut i = 0;
    while i < Mode::COUNT {
        assert!(Mode::ALL[i].index() == i, "Mode::ALL out of index order");
        i += 1;
    }
};

/// VSV configuration: decision policy plus circuit timing.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VsvConfig {
    /// Master switch; `false` models the baseline processor (always
    /// full speed, VDDH).
    pub enabled: bool,
    /// Decision policy (which transitions to take, and when).
    pub policy: PolicySpec,
    /// High→low gating for [`PolicySpec::DualFsm`].
    pub down: DownPolicy,
    /// Low→high gating for [`PolicySpec::DualFsm`].
    pub up: UpPolicy,
    /// Technology constants (voltages, ramp rate, ramp energy).
    pub tech: TechParams,
    /// The supply's operating points (the paper's two rails by
    /// default). Validated against `tech` by
    /// [`crate::SystemConfig::validate`].
    pub ladder: VoltageLadder,
    /// Control-signal distribution latency (paper: 2 ns).
    pub ctrl_distribute_ns: u64,
    /// Clock-tree propagation latency (paper: 2 ns).
    pub clock_tree_ns: u64,
}

impl VsvConfig {
    /// The baseline processor: VSV disabled.
    #[must_use]
    pub fn disabled() -> Self {
        let tech = TechParams::baseline();
        VsvConfig {
            enabled: false,
            policy: PolicySpec::DualFsm,
            down: DownPolicy::default_monitor(),
            up: UpPolicy::default_monitor(),
            ladder: VoltageLadder::paper_rails(&tech),
            tech,
            ctrl_distribute_ns: 2,
            clock_tree_ns: 2,
        }
    }

    /// VSV with both FSMs at the paper's best thresholds (3/10 down,
    /// 3/10 up).
    #[must_use]
    pub fn with_fsms() -> Self {
        VsvConfig {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// VSV without the FSMs: down on every detected demand miss, up on
    /// every demand return (Figure 4's white bars). Equivalent to
    /// [`PolicySpec::ImmediateDown`].
    #[must_use]
    pub fn without_fsms() -> Self {
        VsvConfig {
            enabled: true,
            down: DownPolicy::Immediate,
            up: UpPolicy::FirstReturn,
            ..Self::disabled()
        }
    }

    /// VSV under a named policy (FSM thresholds and circuit timing at
    /// the defaults).
    #[must_use]
    pub fn with_policy(policy: PolicySpec) -> Self {
        VsvConfig {
            enabled: true,
            policy,
            ..Self::disabled()
        }
    }

    /// The same configuration on `ladder` instead of the 2-rail
    /// default.
    #[must_use]
    pub fn with_ladder(self, ladder: VoltageLadder) -> Self {
        VsvConfig { ladder, ..self }
    }

    /// The same configuration on a uniform `depth`-level ladder
    /// between the technology's rails ([`VoltageLadder::uniform`]).
    #[must_use]
    pub fn with_ladder_depth(self, depth: usize) -> Self {
        let ladder = VoltageLadder::uniform(&self.tech, depth);
        VsvConfig { ladder, ..self }
    }

    /// The full-swing VDD ramp duration (12 ns for the paper's
    /// constants). Per-step ramps on deeper ladders are shorter
    /// ([`VoltageLadder::step_ramp_ns`]).
    #[must_use]
    pub fn ramp_ns(&self) -> u64 {
        self.tech.ramp_time_ns()
    }
}

/// What the system should do at one nanosecond tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickPlan {
    /// Whether a pipeline clock edge fires this nanosecond.
    pub pipeline_edge: bool,
    /// Effective variable-domain supply voltage for the cycle starting
    /// at this edge (the per-cycle average while ramping, §5.2).
    pub vdd: f64,
}

/// Residency and transition counters.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeStats {
    /// Nanoseconds spent in each [`Mode`], by [`Mode::index`].
    pub ns_in_mode: [u64; Mode::COUNT],
    /// Downward ladder steps started (on the 2-rail ladder, high→low
    /// transitions).
    pub down_transitions: u64,
    /// Upward ladder steps started (on the 2-rail ladder, low→high
    /// transitions).
    pub up_transitions: u64,
}

impl ModeStats {
    /// Fraction of time in the low-power steady state.
    #[must_use]
    pub fn low_residency(&self) -> f64 {
        let total: u64 = self.ns_in_mode.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.ns_in_mode[Mode::Low.index()] as f64 / total as f64
        }
    }
}

/// The mode controller.
///
/// Drive it with, per nanosecond: [`VsvController::observe`] for each
/// hierarchy signal, then [`VsvController::tick`], then — if the plan
/// says an edge fired — [`VsvController::on_cycle`] with the cycle's
/// issue count. [`VsvController::take_ramps`] reports supply ramps for
/// energy accounting.
#[derive(Debug, Clone)]
pub struct VsvController {
    cfg: VsvConfig,
    mode: Mode,
    /// Last settled ladder level (stays at the departing level while a
    /// step is in flight; updated when the step's ramp completes).
    level: usize,
    /// Destination level of the in-flight step (`level ± 1`); only
    /// meaningful in transition modes.
    step_to: usize,
    /// Level the controller is sequencing toward. Policies retarget
    /// this at any time; steps chain one at a time until
    /// `level == target`.
    target: usize,
    /// Per-level pipeline clock periods, precomputed from the
    /// calibrated [`VoltageCurve`] at construction.
    periods: [u64; MAX_LADDER_DEPTH],
    phase_end: u64,
    ramp_start: u64,
    next_edge: u64,
    policy: Box<dyn DvsPolicy>,
    pending_ramps: u64,
    /// Energy share (fraction of the full-swing 66 nJ) of each ramp
    /// begun since the last drain, in start order.
    pending_ramp_scales: Vec<f64>,
    stats: ModeStats,
    // Structured-trace plumbing (see `crate::trace`). `trace_level`
    // is `None` — and everything below is dormant, costing one branch
    // per tick — unless `crate::System::set_event_sink` turned it on.
    trace_level: Option<TraceLevel>,
    events: Vec<TraceEvent>,
    traced_policy: PolicyStats,
    traced_armed: (bool, bool),
}

impl VsvController {
    /// Creates a controller in the high-power mode (ladder level 0).
    #[must_use]
    pub fn new(cfg: VsvConfig) -> Self {
        let curve = VoltageCurve::from_tech(&cfg.tech);
        let mut periods = [0u64; MAX_LADDER_DEPTH];
        for (k, p) in periods.iter_mut().enumerate().take(cfg.ladder.depth()) {
            *p = curve.clock_period_ns(cfg.ladder.voltage(k));
        }
        VsvController {
            mode: Mode::High,
            level: 0,
            step_to: 0,
            target: 0,
            periods,
            phase_end: 0,
            ramp_start: 0,
            next_edge: 0,
            policy: cfg.policy.build(&cfg),
            pending_ramps: 0,
            pending_ramp_scales: Vec::new(),
            stats: ModeStats::default(),
            trace_level: None,
            events: Vec::new(),
            traced_policy: PolicyStats::default(),
            traced_armed: (false, false),
            cfg,
        }
    }

    /// Turns structured event emission on (at `level`, with `now` the
    /// current simulated time) or off. Events accumulate in an
    /// internal buffer the owner drains with
    /// [`VsvController::drain_trace_events`]; turning tracing on
    /// re-baselines the FSM fire/expiry diffing so only activity after
    /// this call is reported, and seeds the stream with a
    /// [`TraceEvent::ModeEntered`] for the current mode so consumers
    /// can reconstruct residency from the first event.
    pub fn set_tracing(&mut self, level: Option<TraceLevel>, now: u64) {
        self.trace_level = level;
        self.events.clear();
        self.traced_policy = self.policy.stats();
        self.traced_armed = self.policy.armed();
        if level.is_some() {
            self.events.push(TraceEvent::ModeEntered {
                at: now,
                mode: self.mode,
                vdd_mv: self.mode_entry_mv(self.mode),
            });
        }
    }

    /// The structured-trace level in force, if tracing is on.
    #[must_use]
    pub fn trace_level(&self) -> Option<TraceLevel> {
        self.trace_level
    }

    /// Drains the buffered structured events (oldest first).
    pub fn drain_trace_events(&mut self) -> std::vec::Drain<'_, TraceEvent> {
        self.events.drain(..)
    }

    /// Whether any structured events are buffered.
    #[must_use]
    pub fn has_trace_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// The supply rail (mV) a mode starts at: the rail of the last
    /// settled ladder level. A step's distribute and ramp phases start
    /// at the departing level's rail; completions update `level`
    /// before the event is stamped, so settle events carry the
    /// arrival rail. On the 2-rail ladder this reproduces the old
    /// VDDH-for-the-high-side / VDDL-for-the-low-side rule exactly.
    fn mode_entry_mv(&self, _mode: Mode) -> u32 {
        vdd_mv(self.cfg.ladder.voltage(self.level))
    }

    /// Emits FSM fire/expiry/arm events by diffing the policy's
    /// cumulative [`PolicyStats`] (and armed flags) against the last
    /// synced snapshot — so every policy gets FSM-level tracing
    /// without implementing any trace hook. Called after each policy
    /// invocation while tracing at [`TraceLevel::Events`] or above.
    fn sync_policy_trace(&mut self, at: u64) {
        if self.trace_level < Some(TraceLevel::Events) {
            return;
        }
        let armed = self.policy.armed();
        if armed.0 && !self.traced_armed.0 {
            self.events.push(TraceEvent::FsmArmed {
                at,
                fsm: FsmId::Down,
            });
        }
        if armed.1 && !self.traced_armed.1 {
            self.events
                .push(TraceEvent::FsmArmed { at, fsm: FsmId::Up });
        }
        self.traced_armed = armed;
        let stats = self.policy.stats();
        let deltas = [
            (
                stats.down_triggers - self.traced_policy.down_triggers,
                true,
                FsmId::Down,
            ),
            (
                stats.down_expiries - self.traced_policy.down_expiries,
                false,
                FsmId::Down,
            ),
            (
                stats.up_triggers - self.traced_policy.up_triggers,
                true,
                FsmId::Up,
            ),
            (
                stats.up_expiries - self.traced_policy.up_expiries,
                false,
                FsmId::Up,
            ),
        ];
        for (n, fired, fsm) in deltas {
            for _ in 0..n {
                self.events.push(if fired {
                    TraceEvent::FsmFired { at, fsm }
                } else {
                    TraceEvent::FsmExpired { at, fsm }
                });
            }
        }
        for _ in 0..stats.backoff_engagements - self.traced_policy.backoff_engagements {
            self.events.push(TraceEvent::BackoffEngaged { at });
        }
        self.traced_policy = stats;
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &VsvConfig {
        &self.cfg
    }

    /// The current mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The last settled ladder level (0 = VDDH). While a step is in
    /// flight this is still the departing level.
    #[must_use]
    pub fn level(&self) -> usize {
        self.level
    }

    /// The ladder level the controller is currently sequencing toward
    /// (equals [`VsvController::level`] when settled with no pending
    /// retarget).
    #[must_use]
    pub fn target_level(&self) -> usize {
        self.target
    }

    /// The pipeline clock period (ns) in force right now: the current
    /// level's period in steady and distribute modes, the destination
    /// level's during a down-ramp (the slower clock was distributed
    /// first, Figure 2), the departing level's during an up-ramp
    /// (full speed resumes only at VDDH, Figure 3). Reduces to
    /// [`Mode::clock_period_ns`] on the 2-rail ladder.
    #[must_use]
    pub fn current_period_ns(&self) -> u64 {
        match self.mode {
            Mode::High | Mode::Low | Mode::DownDistribute | Mode::UpDistribute => {
                self.periods[self.level]
            }
            Mode::RampDown => self.periods[self.step_to],
            Mode::RampUp => self.periods[self.level],
        }
    }

    /// Residency/transition counters.
    #[must_use]
    pub fn stats(&self) -> ModeStats {
        self.stats
    }

    /// The policy's trigger/decline counters.
    #[must_use]
    pub fn policy_stats(&self) -> PolicyStats {
        self.policy.stats()
    }

    /// The active policy's stable name.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Consumes an L2 signal from the hierarchy, forwarding it to the
    /// policy.
    pub fn observe(&mut self, sig: &VsvSignal) {
        // Miss traffic is traced even with DVS disabled, so baseline
        // traces show the same L2 activity a VSV run would react to.
        if self.trace_level >= Some(TraceLevel::Events) {
            self.events.push(match *sig {
                VsvSignal::L2MissDetected {
                    demand,
                    at,
                    earliest_return,
                } => TraceEvent::MissDetected {
                    at,
                    demand,
                    earliest_return,
                },
                VsvSignal::L2MissReturned {
                    demand,
                    at,
                    outstanding_demand,
                } => TraceEvent::MissReturned {
                    at,
                    demand,
                    outstanding_demand: outstanding_demand as u64,
                },
            });
        }
        if !self.cfg.enabled {
            return;
        }
        let at = sig.at();
        let d = self.policy.on_signal(sig, self.mode);
        self.sync_policy_trace(at);
        self.apply(d, at);
    }

    /// Reports one low-voltage read retry to the policy (see
    /// [`DvsPolicy::on_read_retry`]). Error-aware policies use the
    /// retry stream to engage graceful degradation; every other policy
    /// inherits the default no-op, so runs without the error model —
    /// which never call this — are untouched.
    pub fn on_read_retry(&mut self, now: u64) {
        if !self.cfg.enabled {
            return;
        }
        let d = self.policy.on_read_retry(now);
        self.sync_policy_trace(now);
        self.apply(d, now);
    }

    /// Advances the controller to nanosecond `now` and plans the tick.
    /// `outstanding_demand` is the hierarchy's count of in-flight L2
    /// demand misses (forwarded to the policy).
    pub fn tick(&mut self, now: u64, outstanding_demand: usize) -> TickPlan {
        // Phase boundaries.
        let mut entered = None;
        while self.mode != Mode::High && self.mode != Mode::Low && now >= self.phase_end {
            let boundary = self.phase_end;
            match self.mode {
                Mode::DownDistribute => self.enter_ramp(Mode::RampDown, boundary),
                Mode::UpDistribute => self.enter_ramp(Mode::RampUp, boundary),
                Mode::RampDown | Mode::RampUp => {
                    // The step settles: the destination level becomes
                    // current before the event is stamped, so the
                    // settle event carries the arrival rail.
                    self.level = self.step_to;
                    self.mode = if self.level == 0 {
                        Mode::High
                    } else {
                        Mode::Low
                    };
                    entered = Some(self.mode);
                }
                Mode::High | Mode::Low => unreachable!("loop guard"),
            }
            if self.trace_level.is_some() {
                self.events.push(TraceEvent::ModeEntered {
                    at: boundary,
                    mode: self.mode,
                    vdd_mv: self.mode_entry_mv(self.mode),
                });
            }
        }

        if self.cfg.enabled {
            if let Some(m) = entered {
                self.policy.on_level(self.level);
                let d = self.policy.on_mode_entered(m, now, outstanding_demand);
                self.sync_policy_trace(now);
                self.apply(d, now);
            }
            if matches!(self.mode, Mode::High | Mode::Low) {
                let d = self.policy.on_tick(now, outstanding_demand, self.mode);
                self.sync_policy_trace(now);
                self.apply(d, now);
            }
            // Multi-step sequencing: if the policy's hooks left us
            // settled short of the target, chain the next step now —
            // the same tick the previous one completed on. A chained
            // step is the continuation of a decision that was already
            // distributed while the previous step was in flight, so it
            // skips the control latency (a fresh policy decision pays
            // it; see `start_down_step`/`start_up_step`).
            if matches!(self.mode, Mode::High | Mode::Low) && self.target != self.level {
                if self.target > self.level {
                    self.start_down_step(now, true);
                } else {
                    self.start_up_step(now, true);
                }
            }
        }

        self.stats.ns_in_mode[self.mode.index()] += 1;

        let pipeline_edge = now >= self.next_edge;
        if pipeline_edge {
            self.next_edge = now + self.current_period_ns();
        }
        TickPlan {
            pipeline_edge,
            vdd: self.cycle_voltage(now),
        }
    }

    /// Feeds the issue count of the pipeline cycle that just ran
    /// (only meaningful on edge ticks). May start a transition.
    pub fn on_cycle(&mut self, now: u64, issued: u32) {
        if !self.cfg.enabled {
            return;
        }
        if matches!(self.mode, Mode::High | Mode::Low) {
            let d = self.policy.on_cycle(issued, self.mode);
            self.sync_policy_trace(now);
            self.apply(d, now);
        }
    }

    /// Takes the number of supply ramps begun since the last call.
    /// Energy accounting should use
    /// [`VsvController::drain_ramp_scales`] instead, which also
    /// reports each ramp's share of the full-swing charge.
    pub fn take_ramps(&mut self) -> u64 {
        std::mem::take(&mut self.pending_ramps)
    }

    /// Drains the energy share (fraction of the full-swing 66 nJ
    /// charge; `1.0` per ramp on the 2-rail ladder) of every supply
    /// ramp begun since the last call, in start order.
    pub fn drain_ramp_scales(&mut self, mut f: impl FnMut(f64)) {
        for scale in self.pending_ramp_scales.drain(..) {
            f(scale);
        }
    }

    /// The time (ns) of the next pipeline clock edge.
    #[must_use]
    pub fn next_edge(&self) -> u64 {
        self.next_edge
    }

    /// Whether a window of zero-issue, signal-free nanoseconds may be
    /// batch-applied via [`VsvController::skip_quiescent`] without
    /// changing any observable behaviour. True exactly when every
    /// per-nanosecond [`VsvController::tick`] /
    /// [`VsvController::on_cycle`] pair in such a window reduces to
    /// counter updates:
    ///
    /// * disabled controller: always (the mode is pinned to
    ///   [`Mode::High`] and `on_cycle` is a no-op);
    /// * steady modes: the policy's [`DvsPolicy::idle_skip_allowed`]
    ///   verdict;
    /// * any transition mode: never (phase boundaries and ramp
    ///   voltages are per-nanosecond affairs).
    #[must_use]
    pub fn quiescent_skip_allowed(&self, outstanding_demand: usize) -> bool {
        if !self.cfg.enabled {
            return true;
        }
        match self.mode {
            Mode::High | Mode::Low => self.policy.idle_skip_allowed(self.mode, outstanding_demand),
            _ => false,
        }
    }

    /// Batch-applies `ns` nanoseconds starting at `from`, each of which
    /// would have been a zero-issue, signal-free tick (the caller must
    /// have checked [`VsvController::quiescent_skip_allowed`]). Updates
    /// mode residency, the edge schedule and the policy exactly as the
    /// per-nanosecond path would, and returns the number of pipeline
    /// edges in the window together with the (constant) effective
    /// supply voltage.
    pub fn skip_quiescent(&mut self, from: u64, ns: u64) -> (u64, f64) {
        debug_assert!(
            matches!(self.mode, Mode::High | Mode::Low),
            "skip in a transition mode"
        );
        debug_assert!(self.next_edge >= from, "edge schedule in the past");
        let period = self.current_period_ns();
        let end = from + ns;
        // Edges fire at next_edge, next_edge + period, ... < end.
        let edges = if self.next_edge >= end {
            0
        } else {
            (end - 1 - self.next_edge) / period + 1
        };
        self.stats.ns_in_mode[self.mode.index()] += ns;
        self.next_edge += edges * period;
        if self.cfg.enabled {
            self.policy.skip_idle_cycles(edges, self.mode);
            // FSM windows that expired inside the batch are stamped at
            // the batch end (the intra-window time is not observable).
            self.sync_policy_trace(from + ns);
        }
        (edges, self.cycle_voltage(from))
    }

    // ---- internals -------------------------------------------------

    /// The in-flight step's higher (shallower) endpoint — the step
    /// index into the ladder's per-step geometry.
    fn step_index(&self) -> usize {
        self.level.min(self.step_to)
    }

    /// The in-flight step's ramp duration (the full 12 ns on the
    /// 2-rail ladder; proportionally less per step on deeper ones).
    fn step_ramp_ns(&self) -> u64 {
        self.cfg
            .ladder
            .step_ramp_ns(self.step_index(), &self.cfg.tech)
    }

    /// The in-flight step's share of the full-swing ramp charge.
    fn step_energy_scale(&self) -> f64 {
        self.cfg
            .ladder
            .step_energy_scale(self.step_index(), &self.cfg.tech)
    }

    /// Applies a policy decision. In a steady mode the decision
    /// resolves to a target level (clamped to the ladder bottom) and
    /// the first step toward it starts immediately; mid-transition,
    /// only [`Decision::Level`] is meaningful — it *retargets* the
    /// sequencer (the in-flight step completes, then chains toward
    /// the new target: reversal mid-ramp), while the relative
    /// [`Decision::RampDown`] / [`Decision::RampUp`] are dropped
    /// exactly as before.
    fn apply(&mut self, decision: Decision, at: u64) {
        let steady = matches!(self.mode, Mode::High | Mode::Low);
        let desired = match decision {
            Decision::Hold => return,
            Decision::RampDown if steady => self.level + 1,
            Decision::RampUp if steady => 0,
            Decision::Level(l) => l as usize,
            Decision::RampDown | Decision::RampUp => return,
        };
        self.target = desired.min(self.cfg.ladder.bottom());
        if steady {
            if self.target > self.level {
                self.start_down_step(at, false);
            } else if self.target < self.level {
                self.start_up_step(at, false);
            }
        }
    }

    /// Enters a ramp phase at `at`: books the phase boundary and the
    /// ramp's energy accounting.
    fn enter_ramp(&mut self, mode: Mode, at: u64) {
        self.mode = mode;
        self.ramp_start = at;
        self.phase_end = at + self.step_ramp_ns();
        self.pending_ramps += 1;
        self.pending_ramp_scales.push(self.step_energy_scale());
    }

    /// Starts the one-level step down from the settled `level`
    /// (Figure 2 timeline). Leaving full speed pays control + clock
    /// tree distribution; steps between already-slow levels pay only
    /// the control latency (no clock retiming is needed when the
    /// quantized period does not change). A `chained` step — the
    /// sequencer continuing a decision distributed while the previous
    /// step was in flight — skips the control latency too, and with
    /// nothing left to distribute enters its ramp directly.
    fn start_down_step(&mut self, now: u64, chained: bool) {
        debug_assert!(matches!(self.mode, Mode::High | Mode::Low));
        debug_assert!(self.level < self.cfg.ladder.bottom());
        self.step_to = self.level + 1;
        let retime = if self.periods[self.level] == self.periods[self.step_to] {
            0
        } else {
            self.cfg.clock_tree_ns
        };
        let latency = if chained {
            retime
        } else {
            self.cfg.ctrl_distribute_ns + retime
        };
        self.stats.down_transitions += 1;
        self.policy.on_transition_start();
        if latency > 0 {
            self.mode = Mode::DownDistribute;
            self.phase_end = now + latency;
        } else {
            self.enter_ramp(Mode::RampDown, now);
        }
        if self.trace_level.is_some() {
            self.events.push(TraceEvent::ModeEntered {
                at: now,
                mode: self.mode,
                vdd_mv: self.mode_entry_mv(self.mode),
            });
        }
    }

    /// Starts the one-level step up from the settled `level` (Figure 3
    /// timeline: the faster clock's distribution overlaps the ramp's
    /// tail, so only the control latency precedes the ramp). A
    /// `chained` continuation step has already had its decision
    /// distributed and enters the ramp directly.
    fn start_up_step(&mut self, now: u64, chained: bool) {
        debug_assert!(matches!(self.mode, Mode::High | Mode::Low));
        debug_assert!(self.level > 0);
        self.step_to = self.level - 1;
        self.stats.up_transitions += 1;
        self.policy.on_transition_start();
        if chained {
            self.enter_ramp(Mode::RampUp, now);
        } else {
            self.mode = Mode::UpDistribute;
            self.phase_end = now + self.cfg.ctrl_distribute_ns;
        }
        if self.trace_level.is_some() {
            self.events.push(TraceEvent::ModeEntered {
                at: now,
                mode: self.mode,
                vdd_mv: self.mode_entry_mv(self.mode),
            });
        }
    }

    /// The per-cycle effective voltage at `now` (§5.2: the average of
    /// the supply at the beginning and end of the cycle while
    /// ramping). Steady and distribute modes sit on the settled
    /// level's rail; ramps interpolate between the step's endpoints.
    fn cycle_voltage(&self, now: u64) -> f64 {
        let lad = &self.cfg.ladder;
        match self.mode {
            Mode::High | Mode::Low | Mode::DownDistribute | Mode::UpDistribute => {
                lad.voltage(self.level)
            }
            Mode::RampDown | Mode::RampUp => {
                let ramp = self.step_ramp_ns() as f64;
                let mid = (now - self.ramp_start) as f64 + 1.0;
                self.cfg.tech.ramp_voltage(
                    lad.voltage(self.level),
                    lad.voltage(self.step_to),
                    mid / ramp,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_index_matches_all_ordering() {
        for (i, m) in Mode::ALL.iter().enumerate() {
            assert_eq!(m.index(), i, "{m:?}");
        }
    }

    fn detected(at: u64) -> VsvSignal {
        VsvSignal::L2MissDetected {
            demand: true,
            at,
            earliest_return: None,
        }
    }

    fn returned(at: u64, outstanding: usize) -> VsvSignal {
        VsvSignal::L2MissReturned {
            demand: true,
            at,
            outstanding_demand: outstanding,
        }
    }

    /// Drives `ctrl` for `ns` ticks with a fixed issue rate and a fixed
    /// outstanding-miss count; returns the modes seen.
    fn drive(
        ctrl: &mut VsvController,
        from: u64,
        ns: u64,
        issued: u32,
        outstanding: usize,
    ) -> Vec<Mode> {
        let mut modes = Vec::new();
        for now in from..from + ns {
            let plan = ctrl.tick(now, outstanding);
            modes.push(ctrl.mode());
            if plan.pipeline_edge {
                ctrl.on_cycle(now, issued);
            }
        }
        modes
    }

    #[test]
    fn disabled_controller_never_leaves_high() {
        let mut c = VsvController::new(VsvConfig::disabled());
        c.observe(&detected(5));
        let modes = drive(&mut c, 0, 100, 0, 3);
        assert!(modes.iter().all(|m| *m == Mode::High));
        assert_eq!(c.take_ramps(), 0);
    }

    #[test]
    fn immediate_policy_walks_the_figure2_timeline() {
        let mut c = VsvController::new(VsvConfig::without_fsms());
        c.observe(&detected(10));
        // Next edge triggers the transition: 4 ns distribute at full
        // speed, then 12 ns ramp at half speed, then low.
        let modes = drive(&mut c, 10, 20, 0, 1);
        assert_eq!(modes[0], Mode::High); // the triggering cycle itself
        assert_eq!(modes[1], Mode::DownDistribute);
        assert_eq!(modes[3], Mode::DownDistribute); // 4 ns of distribution
        assert_eq!(modes[4], Mode::RampDown);
        assert_eq!(modes[15], Mode::RampDown); // 12 ns of ramp
        assert_eq!(modes[16], Mode::Low);
        assert_eq!(c.take_ramps(), 1);
        assert_eq!(c.stats().down_transitions, 1);
    }

    #[test]
    fn edges_halve_in_low_mode() {
        let mut c = VsvController::new(VsvConfig::without_fsms());
        c.observe(&detected(0));
        // Run well into low mode.
        drive(&mut c, 0, 40, 0, 1);
        assert_eq!(c.mode(), Mode::Low);
        // Count edges over 20 ns of low mode.
        let mut edges = 0;
        for now in 40..60 {
            if c.tick(now, 1).pipeline_edge {
                edges += 1;
                c.on_cycle(now, 0);
            }
        }
        assert_eq!(edges, 10, "half-speed clock: one edge per 2 ns");
    }

    #[test]
    fn up_transition_follows_figure3_timeline() {
        let mut c = VsvController::new(VsvConfig::without_fsms());
        c.observe(&detected(0));
        drive(&mut c, 0, 40, 0, 1);
        assert_eq!(c.mode(), Mode::Low);
        // The miss returns (sole outstanding): 2 ns distribute + 12 ns
        // ramp, then High.
        c.observe(&returned(40, 0));
        let modes = drive(&mut c, 40, 16, 0, 0);
        assert_eq!(modes[0], Mode::UpDistribute);
        assert_eq!(modes[1], Mode::UpDistribute);
        assert_eq!(modes[2], Mode::RampUp);
        assert_eq!(modes[13], Mode::RampUp);
        assert_eq!(modes[14], Mode::High);
        assert_eq!(c.stats().up_transitions, 1);
        assert_eq!(c.take_ramps(), 2, "one down-ramp + one up-ramp");
    }

    #[test]
    fn fsm_blocks_down_when_ilp_high() {
        let mut c = VsvController::new(VsvConfig::with_fsms());
        c.observe(&detected(0));
        // Pipeline keeps issuing 4/cycle: window expires, stays High.
        let modes = drive(&mut c, 0, 30, 4, 1);
        assert!(modes.iter().all(|m| *m == Mode::High));
        // The level-triggered miss signal keeps the window refreshed
        // while the miss is outstanding, so it does not expire — but
        // a busy pipeline must never trigger it either.
        assert_eq!(c.policy_stats().down_triggers, 0);
        assert_eq!(c.stats().down_transitions, 0);
        // Once the miss returns (signal de-asserts), the window runs
        // out and expires without triggering.
        drive(&mut c, 30, 15, 4, 0);
        assert_eq!(c.policy_stats().down_expiries, 1);
    }

    #[test]
    fn fsm_allows_down_when_pipeline_idles() {
        let mut c = VsvController::new(VsvConfig::with_fsms());
        c.observe(&detected(0));
        let modes = drive(&mut c, 0, 30, 0, 1);
        assert!(modes.contains(&Mode::Low), "idle pipeline must go low");
    }

    #[test]
    fn voltage_profile_during_ramp() {
        let mut c = VsvController::new(VsvConfig::without_fsms());
        c.observe(&detected(0));
        let mut vs = Vec::new();
        for now in 0..40 {
            let plan = c.tick(now, 1);
            if plan.pipeline_edge {
                c.on_cycle(now, 0);
            }
            vs.push((c.mode(), plan.vdd));
        }
        // VDDH before/through distribution, monotone fall through the
        // ramp, VDDL in low mode.
        for (m, v) in &vs {
            match m {
                Mode::High | Mode::DownDistribute => assert!((*v - 1.8).abs() < 1e-9),
                Mode::Low => assert!((*v - 1.2).abs() < 1e-9),
                Mode::RampDown => assert!(*v < 1.8 + 1e-9 && *v > 1.2 - 1e-9),
                _ => {}
            }
        }
        let ramp_vs: Vec<f64> = vs
            .iter()
            .filter(|(m, _)| *m == Mode::RampDown)
            .map(|(_, v)| *v)
            .collect();
        assert!(ramp_vs.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn all_returned_during_rampdown_bounces_back_up() {
        let mut c = VsvController::new(VsvConfig::without_fsms());
        c.observe(&detected(0));
        drive(&mut c, 0, 20, 0, 1); // into RampDown / Low
                                    // Now the hierarchy reports nothing outstanding: the controller
                                    // must not camp in low-power mode.
        let modes = drive(&mut c, 20, 40, 0, 0);
        assert_eq!(*modes.last().unwrap(), Mode::High);
    }

    #[test]
    fn prefetch_misses_never_arm() {
        let mut c = VsvController::new(VsvConfig::without_fsms());
        c.observe(&VsvSignal::L2MissDetected {
            demand: false,
            at: 0,
            earliest_return: None,
        });
        let modes = drive(&mut c, 0, 30, 0, 1);
        assert!(modes.iter().all(|m| *m == Mode::High));
    }

    #[test]
    fn up_fsm_holds_low_with_multiple_outstanding_and_no_ilp() {
        let mut c = VsvController::new(VsvConfig::with_fsms());
        c.observe(&detected(0));
        drive(&mut c, 0, 40, 0, 2);
        assert_eq!(c.mode(), Mode::Low);
        // A return leaves one more outstanding; pipeline stays idle:
        // the monitor expires and we stay low (saving power).
        c.observe(&returned(40, 1));
        let modes = drive(&mut c, 40, 40, 0, 1);
        assert!(modes.iter().all(|m| *m == Mode::Low));
        assert_eq!(c.policy_stats().up_expiries, 1);
    }

    #[test]
    fn up_fsm_ramps_up_when_ilp_returns() {
        let mut c = VsvController::new(VsvConfig::with_fsms());
        c.observe(&detected(0));
        drive(&mut c, 0, 40, 0, 2);
        c.observe(&returned(40, 1));
        // Pipeline starts issuing: 3 consecutive half-speed cycles.
        let modes = drive(&mut c, 40, 30, 2, 1);
        assert!(modes.contains(&Mode::UpDistribute));
        assert_eq!(*modes.last().unwrap(), Mode::High);
    }

    #[test]
    fn residency_accounting_sums_to_elapsed() {
        let mut c = VsvController::new(VsvConfig::without_fsms());
        c.observe(&detected(0));
        drive(&mut c, 0, 100, 0, 1);
        let total: u64 = c.stats().ns_in_mode.iter().sum();
        assert_eq!(total, 100);
        assert!(c.stats().low_residency() > 0.5);
    }

    #[test]
    fn oracle_policy_ignores_unprovable_misses_and_takes_long_ones() {
        let mut c = VsvController::new(VsvConfig::with_policy(PolicySpec::OracleDown));
        // No scheduled return known: the oracle declines every stall
        // cycle.
        c.observe(&detected(0));
        let modes = drive(&mut c, 0, 30, 0, 1);
        assert!(modes.iter().all(|m| *m == Mode::High));
        assert_eq!(c.policy_stats().down_triggers, 0);
        // A return provably beyond the 30 ns round trip: dive at once.
        c.observe(&VsvSignal::L2MissDetected {
            demand: true,
            at: 30,
            earliest_return: Some(200),
        });
        let modes = drive(&mut c, 30, 30, 0, 1);
        assert_eq!(*modes.last().unwrap(), Mode::Low);
        assert_eq!(c.policy_stats().down_triggers, 1);
    }

    #[test]
    fn always_low_policy_camps_low_even_with_nothing_outstanding() {
        let mut c = VsvController::new(VsvConfig::with_policy(PolicySpec::AlwaysLow));
        let modes = drive(&mut c, 0, 60, 4, 0);
        assert_eq!(modes[0], Mode::DownDistribute, "dives on the first tick");
        assert_eq!(*modes.last().unwrap(), Mode::Low);
        assert_eq!(c.stats().down_transitions, 1);
        assert_eq!(c.stats().up_transitions, 0);
    }

    #[test]
    fn always_high_policy_never_transitions() {
        let mut c = VsvController::new(VsvConfig::with_policy(PolicySpec::AlwaysHigh));
        c.observe(&detected(0));
        c.observe(&VsvSignal::L2MissDetected {
            demand: true,
            at: 1,
            earliest_return: Some(1000),
        });
        let modes = drive(&mut c, 0, 50, 0, 2);
        assert!(modes.iter().all(|m| *m == Mode::High));
        assert_eq!(c.take_ramps(), 0);
        assert_eq!(c.policy_stats(), PolicyStats::default());
    }
}
