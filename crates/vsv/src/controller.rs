//! The VSV mode controller: the cycle-accurate state machine over
//! power modes and transitions (paper §4, Figures 2 and 3).
//!
//! Timeline of a high→low transition (Figure 2): after the policy
//! decides, the control signal travels 2 ns to the clock-tree root and
//! the slower clock propagates for 2 ns — the processor still runs at
//! full speed and VDDH during these 4 ns — then the 12 ns VDD ramp
//! runs with the processor at half speed and falling voltage.
//!
//! Timeline of a low→high transition (Figure 3): after the policy
//! decides, the control signal travels 2 ns (half speed, VDDL), the
//! 12 ns VDD ramp-up runs at half speed, and the full-speed clock
//! distribution overlaps the ramp's last 2 ns, so full speed resumes
//! exactly when VDDH is reached.
//!
//! *Which* transitions to take is delegated to a [`DvsPolicy`]
//! (selected by [`VsvConfig::policy`]); *how* they unfold — phase
//! boundaries, ramp voltages, the 66 nJ ramp charges — stays here, so
//! every policy pays the same honest circuit costs.

use vsv_mem::VsvSignal;
use vsv_power::TechParams;

use crate::fsm::{DownPolicy, UpPolicy};
use crate::policy::{Decision, DvsPolicy, PolicySpec, PolicyStats};
use crate::trace::{vdd_mv, FsmId, TraceEvent, TraceLevel};

/// The controller's operating mode.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Full speed, VDDH (the default).
    High,
    /// Slower-clock distribution before a down-ramp: still full speed
    /// and VDDH for 4 ns (2 ns control + 2 ns clock tree).
    DownDistribute,
    /// VDD ramping down: half speed, falling voltage (12 ns).
    RampDown,
    /// Half speed, VDDL.
    Low,
    /// Control-signal distribution before an up-ramp: half speed,
    /// VDDL for 2 ns.
    UpDistribute,
    /// VDD ramping up: half speed, rising voltage (12 ns, the final
    /// 2 ns overlapped with full-clock distribution).
    RampUp,
}

impl Mode {
    /// All modes, for residency accounting.
    pub const ALL: [Mode; Mode::COUNT] = [
        Mode::High,
        Mode::DownDistribute,
        Mode::RampDown,
        Mode::Low,
        Mode::UpDistribute,
        Mode::RampUp,
    ];

    /// Number of modes (the residency-array length).
    pub const COUNT: usize = 6;

    /// Dense index into residency arrays: the declaration-order
    /// discriminant, which is also the position in [`Mode::ALL`]
    /// (pinned by a compile-time assertion below, so adding a mode
    /// cannot silently desync residency accounting).
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Pipeline clock period in this mode, in nanoseconds.
    #[must_use]
    pub fn clock_period_ns(self) -> u64 {
        match self {
            Mode::High | Mode::DownDistribute => 1,
            _ => 2,
        }
    }

    /// The one-character rendering used in timeline strips: `H` high,
    /// `d`/`D` down-distribute/ramp-down, `L` low, `u`/`U`
    /// up-distribute/ramp-up.
    #[must_use]
    pub fn strip_char(self) -> char {
        match self {
            Mode::High => 'H',
            Mode::DownDistribute => 'd',
            Mode::RampDown => 'D',
            Mode::Low => 'L',
            Mode::UpDistribute => 'u',
            Mode::RampUp => 'U',
        }
    }
}

// `Mode::ALL` must enumerate every mode in index order.
const _: () = {
    let mut i = 0;
    while i < Mode::COUNT {
        assert!(Mode::ALL[i].index() == i, "Mode::ALL out of index order");
        i += 1;
    }
};

/// VSV configuration: decision policy plus circuit timing.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VsvConfig {
    /// Master switch; `false` models the baseline processor (always
    /// full speed, VDDH).
    pub enabled: bool,
    /// Decision policy (which transitions to take, and when).
    pub policy: PolicySpec,
    /// High→low gating for [`PolicySpec::DualFsm`].
    pub down: DownPolicy,
    /// Low→high gating for [`PolicySpec::DualFsm`].
    pub up: UpPolicy,
    /// Technology constants (voltages, ramp rate, ramp energy).
    pub tech: TechParams,
    /// Control-signal distribution latency (paper: 2 ns).
    pub ctrl_distribute_ns: u64,
    /// Clock-tree propagation latency (paper: 2 ns).
    pub clock_tree_ns: u64,
}

impl VsvConfig {
    /// The baseline processor: VSV disabled.
    #[must_use]
    pub fn disabled() -> Self {
        VsvConfig {
            enabled: false,
            policy: PolicySpec::DualFsm,
            down: DownPolicy::default_monitor(),
            up: UpPolicy::default_monitor(),
            tech: TechParams::baseline(),
            ctrl_distribute_ns: 2,
            clock_tree_ns: 2,
        }
    }

    /// VSV with both FSMs at the paper's best thresholds (3/10 down,
    /// 3/10 up).
    #[must_use]
    pub fn with_fsms() -> Self {
        VsvConfig {
            enabled: true,
            ..Self::disabled()
        }
    }

    /// VSV without the FSMs: down on every detected demand miss, up on
    /// every demand return (Figure 4's white bars). Equivalent to
    /// [`PolicySpec::ImmediateDown`].
    #[must_use]
    pub fn without_fsms() -> Self {
        VsvConfig {
            enabled: true,
            down: DownPolicy::Immediate,
            up: UpPolicy::FirstReturn,
            ..Self::disabled()
        }
    }

    /// VSV under a named policy (FSM thresholds and circuit timing at
    /// the defaults).
    #[must_use]
    pub fn with_policy(policy: PolicySpec) -> Self {
        VsvConfig {
            enabled: true,
            policy,
            ..Self::disabled()
        }
    }

    /// The VDD ramp duration (12 ns for the paper's constants).
    #[must_use]
    pub fn ramp_ns(&self) -> u64 {
        self.tech.ramp_time_ns()
    }
}

/// What the system should do at one nanosecond tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickPlan {
    /// Whether a pipeline clock edge fires this nanosecond.
    pub pipeline_edge: bool,
    /// Effective variable-domain supply voltage for the cycle starting
    /// at this edge (the per-cycle average while ramping, §5.2).
    pub vdd: f64,
}

/// Residency and transition counters.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeStats {
    /// Nanoseconds spent in each [`Mode`], by [`Mode::index`].
    pub ns_in_mode: [u64; Mode::COUNT],
    /// High→low transitions started.
    pub down_transitions: u64,
    /// Low→high transitions started.
    pub up_transitions: u64,
}

impl ModeStats {
    /// Fraction of time in the low-power steady state.
    #[must_use]
    pub fn low_residency(&self) -> f64 {
        let total: u64 = self.ns_in_mode.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.ns_in_mode[Mode::Low.index()] as f64 / total as f64
        }
    }
}

/// The mode controller.
///
/// Drive it with, per nanosecond: [`VsvController::observe`] for each
/// hierarchy signal, then [`VsvController::tick`], then — if the plan
/// says an edge fired — [`VsvController::on_cycle`] with the cycle's
/// issue count. [`VsvController::take_ramps`] reports supply ramps for
/// energy accounting.
#[derive(Debug, Clone)]
pub struct VsvController {
    cfg: VsvConfig,
    mode: Mode,
    phase_end: u64,
    ramp_start: u64,
    next_edge: u64,
    policy: Box<dyn DvsPolicy>,
    pending_ramps: u64,
    stats: ModeStats,
    // Structured-trace plumbing (see `crate::trace`). `trace_level`
    // is `None` — and everything below is dormant, costing one branch
    // per tick — unless `crate::System::set_event_sink` turned it on.
    trace_level: Option<TraceLevel>,
    events: Vec<TraceEvent>,
    traced_policy: PolicyStats,
    traced_armed: (bool, bool),
}

impl VsvController {
    /// Creates a controller in the high-power mode.
    #[must_use]
    pub fn new(cfg: VsvConfig) -> Self {
        VsvController {
            mode: Mode::High,
            phase_end: 0,
            ramp_start: 0,
            next_edge: 0,
            policy: cfg.policy.build(&cfg),
            pending_ramps: 0,
            stats: ModeStats::default(),
            trace_level: None,
            events: Vec::new(),
            traced_policy: PolicyStats::default(),
            traced_armed: (false, false),
            cfg,
        }
    }

    /// Turns structured event emission on (at `level`, with `now` the
    /// current simulated time) or off. Events accumulate in an
    /// internal buffer the owner drains with
    /// [`VsvController::drain_trace_events`]; turning tracing on
    /// re-baselines the FSM fire/expiry diffing so only activity after
    /// this call is reported, and seeds the stream with a
    /// [`TraceEvent::ModeEntered`] for the current mode so consumers
    /// can reconstruct residency from the first event.
    pub fn set_tracing(&mut self, level: Option<TraceLevel>, now: u64) {
        self.trace_level = level;
        self.events.clear();
        self.traced_policy = self.policy.stats();
        self.traced_armed = self.policy.armed();
        if level.is_some() {
            self.events.push(TraceEvent::ModeEntered {
                at: now,
                mode: self.mode,
                vdd_mv: self.mode_entry_mv(self.mode),
            });
        }
    }

    /// The structured-trace level in force, if tracing is on.
    #[must_use]
    pub fn trace_level(&self) -> Option<TraceLevel> {
        self.trace_level
    }

    /// Drains the buffered structured events (oldest first).
    pub fn drain_trace_events(&mut self) -> std::vec::Drain<'_, TraceEvent> {
        self.events.drain(..)
    }

    /// Whether any structured events are buffered.
    #[must_use]
    pub fn has_trace_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// The supply rail (mV) a mode starts at: VDDH for the high side
    /// of the timeline, VDDL for the low side.
    fn mode_entry_mv(&self, mode: Mode) -> u32 {
        let t = &self.cfg.tech;
        vdd_mv(match mode {
            Mode::High | Mode::DownDistribute | Mode::RampDown => t.vddh,
            Mode::Low | Mode::UpDistribute | Mode::RampUp => t.vddl,
        })
    }

    /// Emits FSM fire/expiry/arm events by diffing the policy's
    /// cumulative [`PolicyStats`] (and armed flags) against the last
    /// synced snapshot — so every policy gets FSM-level tracing
    /// without implementing any trace hook. Called after each policy
    /// invocation while tracing at [`TraceLevel::Events`] or above.
    fn sync_policy_trace(&mut self, at: u64) {
        if self.trace_level < Some(TraceLevel::Events) {
            return;
        }
        let armed = self.policy.armed();
        if armed.0 && !self.traced_armed.0 {
            self.events.push(TraceEvent::FsmArmed {
                at,
                fsm: FsmId::Down,
            });
        }
        if armed.1 && !self.traced_armed.1 {
            self.events
                .push(TraceEvent::FsmArmed { at, fsm: FsmId::Up });
        }
        self.traced_armed = armed;
        let stats = self.policy.stats();
        let deltas = [
            (
                stats.down_triggers - self.traced_policy.down_triggers,
                true,
                FsmId::Down,
            ),
            (
                stats.down_expiries - self.traced_policy.down_expiries,
                false,
                FsmId::Down,
            ),
            (
                stats.up_triggers - self.traced_policy.up_triggers,
                true,
                FsmId::Up,
            ),
            (
                stats.up_expiries - self.traced_policy.up_expiries,
                false,
                FsmId::Up,
            ),
        ];
        for (n, fired, fsm) in deltas {
            for _ in 0..n {
                self.events.push(if fired {
                    TraceEvent::FsmFired { at, fsm }
                } else {
                    TraceEvent::FsmExpired { at, fsm }
                });
            }
        }
        self.traced_policy = stats;
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &VsvConfig {
        &self.cfg
    }

    /// The current mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Residency/transition counters.
    #[must_use]
    pub fn stats(&self) -> ModeStats {
        self.stats
    }

    /// The policy's trigger/decline counters.
    #[must_use]
    pub fn policy_stats(&self) -> PolicyStats {
        self.policy.stats()
    }

    /// The active policy's stable name.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Consumes an L2 signal from the hierarchy, forwarding it to the
    /// policy.
    pub fn observe(&mut self, sig: &VsvSignal) {
        // Miss traffic is traced even with DVS disabled, so baseline
        // traces show the same L2 activity a VSV run would react to.
        if self.trace_level >= Some(TraceLevel::Events) {
            self.events.push(match *sig {
                VsvSignal::L2MissDetected {
                    demand,
                    at,
                    earliest_return,
                } => TraceEvent::MissDetected {
                    at,
                    demand,
                    earliest_return,
                },
                VsvSignal::L2MissReturned {
                    demand,
                    at,
                    outstanding_demand,
                } => TraceEvent::MissReturned {
                    at,
                    demand,
                    outstanding_demand: outstanding_demand as u64,
                },
            });
        }
        if !self.cfg.enabled {
            return;
        }
        let at = sig.at();
        let d = self.policy.on_signal(sig, self.mode);
        self.sync_policy_trace(at);
        self.apply(d, at);
    }

    /// Advances the controller to nanosecond `now` and plans the tick.
    /// `outstanding_demand` is the hierarchy's count of in-flight L2
    /// demand misses (forwarded to the policy).
    pub fn tick(&mut self, now: u64, outstanding_demand: usize) -> TickPlan {
        // Phase boundaries.
        let mut entered = None;
        while self.mode != Mode::High && self.mode != Mode::Low && now >= self.phase_end {
            let boundary = self.phase_end;
            match self.mode {
                Mode::DownDistribute => {
                    self.mode = Mode::RampDown;
                    self.ramp_start = self.phase_end;
                    self.phase_end += self.cfg.ramp_ns();
                    self.pending_ramps += 1;
                }
                Mode::RampDown => {
                    self.mode = Mode::Low;
                    entered = Some(Mode::Low);
                }
                Mode::UpDistribute => {
                    self.mode = Mode::RampUp;
                    self.ramp_start = self.phase_end;
                    self.phase_end += self.cfg.ramp_ns();
                    self.pending_ramps += 1;
                }
                Mode::RampUp => {
                    self.mode = Mode::High;
                    entered = Some(Mode::High);
                }
                Mode::High | Mode::Low => unreachable!("loop guard"),
            }
            if self.trace_level.is_some() {
                self.events.push(TraceEvent::ModeEntered {
                    at: boundary,
                    mode: self.mode,
                    vdd_mv: self.mode_entry_mv(self.mode),
                });
            }
        }

        if self.cfg.enabled {
            if let Some(m) = entered {
                let d = self.policy.on_mode_entered(m, now, outstanding_demand);
                self.sync_policy_trace(now);
                self.apply(d, now);
            }
            if matches!(self.mode, Mode::High | Mode::Low) {
                let d = self.policy.on_tick(now, outstanding_demand, self.mode);
                self.sync_policy_trace(now);
                self.apply(d, now);
            }
        }

        self.stats.ns_in_mode[self.mode.index()] += 1;

        let pipeline_edge = now >= self.next_edge;
        if pipeline_edge {
            self.next_edge = now + self.mode.clock_period_ns();
        }
        TickPlan {
            pipeline_edge,
            vdd: self.cycle_voltage(now),
        }
    }

    /// Feeds the issue count of the pipeline cycle that just ran
    /// (only meaningful on edge ticks). May start a transition.
    pub fn on_cycle(&mut self, now: u64, issued: u32) {
        if !self.cfg.enabled {
            return;
        }
        if matches!(self.mode, Mode::High | Mode::Low) {
            let d = self.policy.on_cycle(issued, self.mode);
            self.sync_policy_trace(now);
            self.apply(d, now);
        }
    }

    /// Takes the number of supply ramps begun since the last call (for
    /// the 66 nJ-per-ramp energy charge).
    pub fn take_ramps(&mut self) -> u64 {
        std::mem::take(&mut self.pending_ramps)
    }

    /// The time (ns) of the next pipeline clock edge.
    #[must_use]
    pub fn next_edge(&self) -> u64 {
        self.next_edge
    }

    /// Whether a window of zero-issue, signal-free nanoseconds may be
    /// batch-applied via [`VsvController::skip_quiescent`] without
    /// changing any observable behaviour. True exactly when every
    /// per-nanosecond [`VsvController::tick`] /
    /// [`VsvController::on_cycle`] pair in such a window reduces to
    /// counter updates:
    ///
    /// * disabled controller: always (the mode is pinned to
    ///   [`Mode::High`] and `on_cycle` is a no-op);
    /// * steady modes: the policy's [`DvsPolicy::idle_skip_allowed`]
    ///   verdict;
    /// * any transition mode: never (phase boundaries and ramp
    ///   voltages are per-nanosecond affairs).
    #[must_use]
    pub fn quiescent_skip_allowed(&self, outstanding_demand: usize) -> bool {
        if !self.cfg.enabled {
            return true;
        }
        match self.mode {
            Mode::High | Mode::Low => self.policy.idle_skip_allowed(self.mode, outstanding_demand),
            _ => false,
        }
    }

    /// Batch-applies `ns` nanoseconds starting at `from`, each of which
    /// would have been a zero-issue, signal-free tick (the caller must
    /// have checked [`VsvController::quiescent_skip_allowed`]). Updates
    /// mode residency, the edge schedule and the policy exactly as the
    /// per-nanosecond path would, and returns the number of pipeline
    /// edges in the window together with the (constant) effective
    /// supply voltage.
    pub fn skip_quiescent(&mut self, from: u64, ns: u64) -> (u64, f64) {
        debug_assert!(
            matches!(self.mode, Mode::High | Mode::Low),
            "skip in a transition mode"
        );
        debug_assert!(self.next_edge >= from, "edge schedule in the past");
        let period = self.mode.clock_period_ns();
        let end = from + ns;
        // Edges fire at next_edge, next_edge + period, ... < end.
        let edges = if self.next_edge >= end {
            0
        } else {
            (end - 1 - self.next_edge) / period + 1
        };
        self.stats.ns_in_mode[self.mode.index()] += ns;
        self.next_edge += edges * period;
        if self.cfg.enabled {
            self.policy.skip_idle_cycles(edges, self.mode);
            // FSM windows that expired inside the batch are stamped at
            // the batch end (the intra-window time is not observable).
            self.sync_policy_trace(from + ns);
        }
        (edges, self.cycle_voltage(from))
    }

    // ---- internals -------------------------------------------------

    /// Applies a policy decision, dropping it unless it is actionable
    /// from the current mode (ramp-down from [`Mode::High`], ramp-up
    /// from [`Mode::Low`]).
    fn apply(&mut self, decision: Decision, at: u64) {
        match decision {
            Decision::Hold => {}
            Decision::RampDown if self.mode == Mode::High => self.start_down(at),
            Decision::RampUp if self.mode == Mode::Low => self.start_up(at),
            Decision::RampDown | Decision::RampUp => {}
        }
    }

    fn start_down(&mut self, now: u64) {
        debug_assert_eq!(self.mode, Mode::High);
        self.mode = Mode::DownDistribute;
        self.phase_end = now + self.cfg.ctrl_distribute_ns + self.cfg.clock_tree_ns;
        self.stats.down_transitions += 1;
        self.policy.on_transition_start();
        if self.trace_level.is_some() {
            self.events.push(TraceEvent::ModeEntered {
                at: now,
                mode: Mode::DownDistribute,
                vdd_mv: self.mode_entry_mv(Mode::DownDistribute),
            });
        }
    }

    fn start_up(&mut self, now: u64) {
        debug_assert_eq!(self.mode, Mode::Low);
        self.mode = Mode::UpDistribute;
        self.phase_end = now + self.cfg.ctrl_distribute_ns;
        self.stats.up_transitions += 1;
        self.policy.on_transition_start();
        if self.trace_level.is_some() {
            self.events.push(TraceEvent::ModeEntered {
                at: now,
                mode: Mode::UpDistribute,
                vdd_mv: self.mode_entry_mv(Mode::UpDistribute),
            });
        }
    }

    /// The per-cycle effective voltage at `now` (§5.2: the average of
    /// the supply at the beginning and end of the cycle while ramping).
    fn cycle_voltage(&self, now: u64) -> f64 {
        let t = &self.cfg.tech;
        let ramp = self.cfg.ramp_ns() as f64;
        match self.mode {
            Mode::High | Mode::DownDistribute => t.vddh,
            Mode::Low | Mode::UpDistribute => t.vddl,
            Mode::RampDown => {
                let mid = (now - self.ramp_start) as f64 + 1.0;
                t.ramp_voltage(t.vddh, t.vddl, mid / ramp)
            }
            Mode::RampUp => {
                let mid = (now - self.ramp_start) as f64 + 1.0;
                t.ramp_voltage(t.vddl, t.vddh, mid / ramp)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_index_matches_all_ordering() {
        for (i, m) in Mode::ALL.iter().enumerate() {
            assert_eq!(m.index(), i, "{m:?}");
        }
    }

    fn detected(at: u64) -> VsvSignal {
        VsvSignal::L2MissDetected {
            demand: true,
            at,
            earliest_return: None,
        }
    }

    fn returned(at: u64, outstanding: usize) -> VsvSignal {
        VsvSignal::L2MissReturned {
            demand: true,
            at,
            outstanding_demand: outstanding,
        }
    }

    /// Drives `ctrl` for `ns` ticks with a fixed issue rate and a fixed
    /// outstanding-miss count; returns the modes seen.
    fn drive(
        ctrl: &mut VsvController,
        from: u64,
        ns: u64,
        issued: u32,
        outstanding: usize,
    ) -> Vec<Mode> {
        let mut modes = Vec::new();
        for now in from..from + ns {
            let plan = ctrl.tick(now, outstanding);
            modes.push(ctrl.mode());
            if plan.pipeline_edge {
                ctrl.on_cycle(now, issued);
            }
        }
        modes
    }

    #[test]
    fn disabled_controller_never_leaves_high() {
        let mut c = VsvController::new(VsvConfig::disabled());
        c.observe(&detected(5));
        let modes = drive(&mut c, 0, 100, 0, 3);
        assert!(modes.iter().all(|m| *m == Mode::High));
        assert_eq!(c.take_ramps(), 0);
    }

    #[test]
    fn immediate_policy_walks_the_figure2_timeline() {
        let mut c = VsvController::new(VsvConfig::without_fsms());
        c.observe(&detected(10));
        // Next edge triggers the transition: 4 ns distribute at full
        // speed, then 12 ns ramp at half speed, then low.
        let modes = drive(&mut c, 10, 20, 0, 1);
        assert_eq!(modes[0], Mode::High); // the triggering cycle itself
        assert_eq!(modes[1], Mode::DownDistribute);
        assert_eq!(modes[3], Mode::DownDistribute); // 4 ns of distribution
        assert_eq!(modes[4], Mode::RampDown);
        assert_eq!(modes[15], Mode::RampDown); // 12 ns of ramp
        assert_eq!(modes[16], Mode::Low);
        assert_eq!(c.take_ramps(), 1);
        assert_eq!(c.stats().down_transitions, 1);
    }

    #[test]
    fn edges_halve_in_low_mode() {
        let mut c = VsvController::new(VsvConfig::without_fsms());
        c.observe(&detected(0));
        // Run well into low mode.
        drive(&mut c, 0, 40, 0, 1);
        assert_eq!(c.mode(), Mode::Low);
        // Count edges over 20 ns of low mode.
        let mut edges = 0;
        for now in 40..60 {
            if c.tick(now, 1).pipeline_edge {
                edges += 1;
                c.on_cycle(now, 0);
            }
        }
        assert_eq!(edges, 10, "half-speed clock: one edge per 2 ns");
    }

    #[test]
    fn up_transition_follows_figure3_timeline() {
        let mut c = VsvController::new(VsvConfig::without_fsms());
        c.observe(&detected(0));
        drive(&mut c, 0, 40, 0, 1);
        assert_eq!(c.mode(), Mode::Low);
        // The miss returns (sole outstanding): 2 ns distribute + 12 ns
        // ramp, then High.
        c.observe(&returned(40, 0));
        let modes = drive(&mut c, 40, 16, 0, 0);
        assert_eq!(modes[0], Mode::UpDistribute);
        assert_eq!(modes[1], Mode::UpDistribute);
        assert_eq!(modes[2], Mode::RampUp);
        assert_eq!(modes[13], Mode::RampUp);
        assert_eq!(modes[14], Mode::High);
        assert_eq!(c.stats().up_transitions, 1);
        assert_eq!(c.take_ramps(), 2, "one down-ramp + one up-ramp");
    }

    #[test]
    fn fsm_blocks_down_when_ilp_high() {
        let mut c = VsvController::new(VsvConfig::with_fsms());
        c.observe(&detected(0));
        // Pipeline keeps issuing 4/cycle: window expires, stays High.
        let modes = drive(&mut c, 0, 30, 4, 1);
        assert!(modes.iter().all(|m| *m == Mode::High));
        // The level-triggered miss signal keeps the window refreshed
        // while the miss is outstanding, so it does not expire — but
        // a busy pipeline must never trigger it either.
        assert_eq!(c.policy_stats().down_triggers, 0);
        assert_eq!(c.stats().down_transitions, 0);
        // Once the miss returns (signal de-asserts), the window runs
        // out and expires without triggering.
        drive(&mut c, 30, 15, 4, 0);
        assert_eq!(c.policy_stats().down_expiries, 1);
    }

    #[test]
    fn fsm_allows_down_when_pipeline_idles() {
        let mut c = VsvController::new(VsvConfig::with_fsms());
        c.observe(&detected(0));
        let modes = drive(&mut c, 0, 30, 0, 1);
        assert!(modes.contains(&Mode::Low), "idle pipeline must go low");
    }

    #[test]
    fn voltage_profile_during_ramp() {
        let mut c = VsvController::new(VsvConfig::without_fsms());
        c.observe(&detected(0));
        let mut vs = Vec::new();
        for now in 0..40 {
            let plan = c.tick(now, 1);
            if plan.pipeline_edge {
                c.on_cycle(now, 0);
            }
            vs.push((c.mode(), plan.vdd));
        }
        // VDDH before/through distribution, monotone fall through the
        // ramp, VDDL in low mode.
        for (m, v) in &vs {
            match m {
                Mode::High | Mode::DownDistribute => assert!((*v - 1.8).abs() < 1e-9),
                Mode::Low => assert!((*v - 1.2).abs() < 1e-9),
                Mode::RampDown => assert!(*v < 1.8 + 1e-9 && *v > 1.2 - 1e-9),
                _ => {}
            }
        }
        let ramp_vs: Vec<f64> = vs
            .iter()
            .filter(|(m, _)| *m == Mode::RampDown)
            .map(|(_, v)| *v)
            .collect();
        assert!(ramp_vs.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn all_returned_during_rampdown_bounces_back_up() {
        let mut c = VsvController::new(VsvConfig::without_fsms());
        c.observe(&detected(0));
        drive(&mut c, 0, 20, 0, 1); // into RampDown / Low
                                    // Now the hierarchy reports nothing outstanding: the controller
                                    // must not camp in low-power mode.
        let modes = drive(&mut c, 20, 40, 0, 0);
        assert_eq!(*modes.last().unwrap(), Mode::High);
    }

    #[test]
    fn prefetch_misses_never_arm() {
        let mut c = VsvController::new(VsvConfig::without_fsms());
        c.observe(&VsvSignal::L2MissDetected {
            demand: false,
            at: 0,
            earliest_return: None,
        });
        let modes = drive(&mut c, 0, 30, 0, 1);
        assert!(modes.iter().all(|m| *m == Mode::High));
    }

    #[test]
    fn up_fsm_holds_low_with_multiple_outstanding_and_no_ilp() {
        let mut c = VsvController::new(VsvConfig::with_fsms());
        c.observe(&detected(0));
        drive(&mut c, 0, 40, 0, 2);
        assert_eq!(c.mode(), Mode::Low);
        // A return leaves one more outstanding; pipeline stays idle:
        // the monitor expires and we stay low (saving power).
        c.observe(&returned(40, 1));
        let modes = drive(&mut c, 40, 40, 0, 1);
        assert!(modes.iter().all(|m| *m == Mode::Low));
        assert_eq!(c.policy_stats().up_expiries, 1);
    }

    #[test]
    fn up_fsm_ramps_up_when_ilp_returns() {
        let mut c = VsvController::new(VsvConfig::with_fsms());
        c.observe(&detected(0));
        drive(&mut c, 0, 40, 0, 2);
        c.observe(&returned(40, 1));
        // Pipeline starts issuing: 3 consecutive half-speed cycles.
        let modes = drive(&mut c, 40, 30, 2, 1);
        assert!(modes.contains(&Mode::UpDistribute));
        assert_eq!(*modes.last().unwrap(), Mode::High);
    }

    #[test]
    fn residency_accounting_sums_to_elapsed() {
        let mut c = VsvController::new(VsvConfig::without_fsms());
        c.observe(&detected(0));
        drive(&mut c, 0, 100, 0, 1);
        let total: u64 = c.stats().ns_in_mode.iter().sum();
        assert_eq!(total, 100);
        assert!(c.stats().low_residency() > 0.5);
    }

    #[test]
    fn oracle_policy_ignores_unprovable_misses_and_takes_long_ones() {
        let mut c = VsvController::new(VsvConfig::with_policy(PolicySpec::OracleDown));
        // No scheduled return known: the oracle declines every stall
        // cycle.
        c.observe(&detected(0));
        let modes = drive(&mut c, 0, 30, 0, 1);
        assert!(modes.iter().all(|m| *m == Mode::High));
        assert_eq!(c.policy_stats().down_triggers, 0);
        // A return provably beyond the 30 ns round trip: dive at once.
        c.observe(&VsvSignal::L2MissDetected {
            demand: true,
            at: 30,
            earliest_return: Some(200),
        });
        let modes = drive(&mut c, 30, 30, 0, 1);
        assert_eq!(*modes.last().unwrap(), Mode::Low);
        assert_eq!(c.policy_stats().down_triggers, 1);
    }

    #[test]
    fn always_low_policy_camps_low_even_with_nothing_outstanding() {
        let mut c = VsvController::new(VsvConfig::with_policy(PolicySpec::AlwaysLow));
        let modes = drive(&mut c, 0, 60, 4, 0);
        assert_eq!(modes[0], Mode::DownDistribute, "dives on the first tick");
        assert_eq!(*modes.last().unwrap(), Mode::Low);
        assert_eq!(c.stats().down_transitions, 1);
        assert_eq!(c.stats().up_transitions, 0);
    }

    #[test]
    fn always_high_policy_never_transitions() {
        let mut c = VsvController::new(VsvConfig::with_policy(PolicySpec::AlwaysHigh));
        c.observe(&detected(0));
        c.observe(&VsvSignal::L2MissDetected {
            demand: true,
            at: 1,
            earliest_return: Some(1000),
        });
        let modes = drive(&mut c, 0, 50, 0, 2);
        assert!(modes.iter().all(|m| *m == Mode::High));
        assert_eq!(c.take_ramps(), 0);
        assert_eq!(c.policy_stats(), PolicyStats::default());
    }
}
