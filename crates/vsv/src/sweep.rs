//! Parallel deterministic experiment sweeps.
//!
//! Every table and figure of the paper is a *grid* of independent
//! simulations: workload twins × system configurations. Each run owns
//! its whole simulator, so the grid is embarrassingly parallel — but
//! tables, CSVs, and golden tests all need results in a stable order.
//! [`Sweep`] provides both: jobs execute on `std::thread::scope`
//! workers pulling from a shared atomic queue, and results come back
//! in **grid order** (the order jobs were supplied), bit-identical to
//! a serial loop over [`Experiment::run`] regardless of the worker
//! count or the scheduling interleaving. `tests/sweep_equivalence.rs`
//! pins that guarantee.
//!
//! Worker count comes from the caller, the `VSV_WORKERS` environment
//! variable, or the host's available parallelism, in that order — see
//! [`default_workers`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use vsv_workloads::WorkloadParams;

use crate::report::RunResult;
use crate::runner::Experiment;
use crate::system::SystemConfig;

/// One cell of an experiment grid: a workload under a configuration.
#[derive(Debug, Clone, Copy)]
pub struct SweepJob {
    /// The workload parameter point to simulate.
    pub params: WorkloadParams,
    /// The system configuration to simulate it under.
    pub config: SystemConfig,
}

/// Everything measured about one finished job. This is the unit the
/// progress callback sees and the row type of [`SweepReport`].
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Index of the job in the sweep's grid order.
    pub job: usize,
    /// Workload name (from the job's parameter point).
    pub workload: String,
    /// FNV-1a digest of the job's full `SystemConfig`, as 16 hex
    /// digits. Two jobs share a digest exactly when they share a
    /// configuration, so reports remain comparable across runs
    /// without serializing the whole config.
    pub config_digest: String,
    /// The simulation outcome (deterministic: simulated time, energy,
    /// counters — everything `tests/determinism.rs` pins).
    pub result: RunResult,
    /// Host wall-clock nanoseconds this job took. **Not**
    /// deterministic; consumers that digest reports must zero it
    /// first (see `tests/sweep_report_golden.rs`).
    pub wall_ns: u64,
}

/// The serializable outcome of a whole sweep, in grid order.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Number of jobs in the grid.
    pub jobs: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Host wall-clock nanoseconds for the whole sweep. Not
    /// deterministic (see [`JobRecord::wall_ns`]).
    pub wall_ns: u64,
    /// One record per job, in grid order.
    pub records: Vec<JobRecord>,
}

impl SweepReport {
    /// The bare results in grid order, consuming the report.
    #[must_use]
    pub fn into_results(self) -> Vec<RunResult> {
        self.records.into_iter().map(|r| r.result).collect()
    }
}

/// FNV-1a over the `Debug` rendering of a [`SystemConfig`], as 16 hex
/// digits. `SystemConfig` derives `Debug` exhaustively, so any knob
/// change (policies, thresholds, cache geometry, power model) changes
/// the digest.
#[must_use]
pub fn config_digest(cfg: &SystemConfig) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{cfg:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Worker count policy: `VSV_WORKERS` if set to a positive integer,
/// otherwise the host's available parallelism (falling back to 1).
#[must_use]
pub fn default_workers() -> usize {
    if let Some(n) = std::env::var("VSV_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n >= 1 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A grid of independent simulation jobs plus the experiment scale to
/// run them at.
///
/// ```
/// use vsv::{Experiment, Sweep, SystemConfig};
/// use vsv_workloads::twin;
///
/// let twins = [twin("gzip").unwrap(), twin("ammp").unwrap()];
/// let configs = [SystemConfig::baseline(), SystemConfig::vsv_with_fsms()];
/// let sweep = Sweep::over_grid(
///     Experiment { warmup_instructions: 500, instructions: 2_000 },
///     &twins,
///     &configs,
/// );
/// // 2 twins x 2 configs, params-major: gzip/base, gzip/vsv, ammp/base, ammp/vsv.
/// let results = sweep.run(2);
/// assert_eq!(results.len(), 4);
/// assert_eq!(results[0].workload, "gzip");
/// assert_eq!(results[2].workload, "ammp");
/// ```
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Simulation-length policy shared by every job.
    pub experiment: Experiment,
    jobs: Vec<SweepJob>,
}

impl Sweep {
    /// A sweep over an explicit job list (grid order = list order).
    #[must_use]
    pub fn new(experiment: Experiment, jobs: Vec<SweepJob>) -> Self {
        Sweep { experiment, jobs }
    }

    /// The params-major cross product: for each parameter point, every
    /// configuration in order. Row `i` of the result corresponds to
    /// `params[i / configs.len()]` under `configs[i % configs.len()]`.
    #[must_use]
    pub fn over_grid(
        experiment: Experiment,
        params: &[WorkloadParams],
        configs: &[SystemConfig],
    ) -> Self {
        let jobs = params
            .iter()
            .flat_map(|p| {
                configs.iter().map(move |c| SweepJob {
                    params: *p,
                    config: *c,
                })
            })
            .collect();
        Sweep { experiment, jobs }
    }

    /// The grid, in order.
    #[must_use]
    pub fn jobs(&self) -> &[SweepJob] {
        &self.jobs
    }

    /// Number of jobs in the grid.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs the grid on `workers` threads and returns the bare
    /// results in grid order. See [`Sweep::run_with_progress`] for
    /// the execution model.
    #[must_use]
    pub fn run(&self, workers: usize) -> Vec<RunResult> {
        self.run_with_progress(workers, |_| {}).into_results()
    }

    /// Runs the grid and returns the full [`SweepReport`] without
    /// progress reporting.
    #[must_use]
    pub fn report(&self, workers: usize) -> SweepReport {
        self.run_with_progress(workers, |_| {})
    }

    /// Runs the grid on `workers` scoped threads pulling jobs from a
    /// shared atomic counter, invoking `progress` once per finished
    /// job (from the worker that finished it, in completion — not
    /// grid — order), and returns records in grid order.
    ///
    /// Determinism: each job's [`RunResult`] depends only on its
    /// `(params, config)` and the experiment scale — every simulator
    /// is owned by exactly one job — so the result vector is
    /// bit-identical for any `workers >= 1` and equal to a serial
    /// loop over [`Experiment::run`]. Only the `wall_ns` fields vary
    /// between runs.
    ///
    /// `workers` is clamped to `[1, len()]` (a degenerate clamp of 1
    /// for an empty grid).
    ///
    /// # Panics
    ///
    /// Propagates panics from the simulator (a panicking simulation
    /// is a bug worth surfacing, not hiding).
    #[must_use]
    pub fn run_with_progress<F>(&self, workers: usize, progress: F) -> SweepReport
    where
        F: Fn(&JobRecord) + Sync,
    {
        let workers = workers.max(1).min(self.jobs.len().max(1));
        let sweep_start = Instant::now();
        let next = AtomicUsize::new(0);
        let mut records: Vec<Option<JobRecord>> = Vec::with_capacity(self.jobs.len());
        records.resize_with(self.jobs.len(), || None);
        // One lock per slot: workers write disjoint indices, so there
        // is no contention — the Mutex exists only to hand each worker
        // a &mut to its own slot through the shared borrow.
        let slots: Vec<Mutex<&mut Option<JobRecord>>> =
            records.iter_mut().map(Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = self.jobs.get(i) else { break };
                    let job_start = Instant::now();
                    let result = self.experiment.run(&job.params, job.config);
                    let record = JobRecord {
                        job: i,
                        workload: job.params.name.to_owned(),
                        config_digest: config_digest(&job.config),
                        result,
                        wall_ns: u64::try_from(job_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    };
                    progress(&record);
                    **slots[i].lock().expect("slot lock") = Some(record);
                });
            }
        });
        drop(slots);
        SweepReport {
            jobs: self.jobs.len(),
            workers,
            wall_ns: u64::try_from(sweep_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            records: records
                .into_iter()
                .map(|r| r.expect("every slot filled"))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use vsv_workloads::twin;

    fn tiny() -> Experiment {
        Experiment {
            warmup_instructions: 500,
            instructions: 2_000,
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let sweep = Sweep::new(tiny(), Vec::new());
        let report = sweep.report(4);
        assert_eq!(report.jobs, 0);
        assert!(report.records.is_empty());
    }

    #[test]
    fn grid_order_is_params_major() {
        let twins = [twin("gzip").expect("gzip"), twin("ammp").expect("ammp")];
        let configs = [SystemConfig::baseline(), SystemConfig::vsv_with_fsms()];
        let sweep = Sweep::over_grid(tiny(), &twins, &configs);
        assert_eq!(sweep.len(), 4);
        let report = sweep.report(2);
        let names: Vec<&str> = report.records.iter().map(|r| r.workload.as_str()).collect();
        assert_eq!(names, ["gzip", "gzip", "ammp", "ammp"]);
        // Same config => same digest; different config => different.
        assert_eq!(
            report.records[0].config_digest,
            report.records[2].config_digest
        );
        assert_ne!(
            report.records[0].config_digest,
            report.records[1].config_digest
        );
        // Records carry their grid index.
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.job, i);
        }
    }

    #[test]
    fn progress_fires_once_per_job() {
        let twins = [twin("gzip").expect("gzip")];
        let configs = [SystemConfig::baseline(), SystemConfig::vsv_with_fsms()];
        let sweep = Sweep::over_grid(tiny(), &twins, &configs);
        let fired = AtomicUsize::new(0);
        let report = sweep.run_with_progress(2, |record| {
            assert!(record.job < 2);
            fired.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(fired.load(Ordering::Relaxed), 2);
        assert_eq!(report.records.len(), 2);
    }

    #[test]
    fn worker_count_is_clamped() {
        let twins = [twin("gzip").expect("gzip")];
        let configs = [SystemConfig::baseline()];
        let sweep = Sweep::over_grid(tiny(), &twins, &configs);
        // 0 and 100 workers both work on a 1-job grid.
        assert_eq!(sweep.report(0).workers, 1);
        assert_eq!(sweep.report(100).workers, 1);
    }

    #[test]
    fn digest_is_stable_and_knob_sensitive() {
        let a = config_digest(&SystemConfig::baseline());
        let b = config_digest(&SystemConfig::baseline());
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        let mut cfg = SystemConfig::vsv_with_fsms();
        let before = config_digest(&cfg);
        cfg.mem.dram.latency_ns += 1;
        assert_ne!(before, config_digest(&cfg));
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
