//! Parallel, deterministic, *fault-tolerant* experiment sweeps.
//!
//! Every table and figure of the paper is a *grid* of independent
//! simulations: workload twins × system configurations. Each run owns
//! its whole simulator, so the grid is embarrassingly parallel — but
//! tables, CSVs, and golden tests all need results in a stable order.
//! [`Sweep`] provides both: jobs execute on `std::thread::scope`
//! workers pulling from a shared atomic queue, and results come back
//! in **grid order** (the order jobs were supplied), bit-identical to
//! a serial loop over [`Experiment::run`] regardless of the worker
//! count or the scheduling interleaving. `tests/sweep_equivalence.rs`
//! pins that guarantee.
//!
//! # Fault tolerance
//!
//! A sweep never dies because one cell does. Each job runs behind
//! [`std::panic::catch_unwind`]; a panicking job is retried once
//! (bounded-retry policy for poisoned-state panics) and then recorded
//! as [`JobOutcome::Failed`], alongside typed [`SimError`]s from
//! [`Experiment::try_run`] (deadlocks, invalid configurations,
//! exhausted budgets). The report always covers the whole grid, with
//! per-cell failures as data — `tests/fault_tolerance.rs` pins that.
//!
//! # Checkpoint / resume
//!
//! [`Sweep::report_with_checkpoint`] appends one JSONL line per
//! finished job to a checkpoint file (after a header pinning the grid
//! shape, grid dimensions, and experiment scale); [`Sweep::resume`]
//! validates the header and each record's config digest, skips
//! completed cells (tolerating a half-written final line from a
//! crash), re-runs the rest, and returns a [`SweepReport`]
//! bit-identical — wall-clock fields aside — to an uninterrupted run.
//! A checkpoint whose grid *dimensions* (workloads × policies ×
//! ladders × FSM thresholds) disagree with the sweep is rejected with
//! the typed [`CheckpointError::GridMismatch`] before any per-record
//! digest check.
//!
//! The same checkpoint format (schema v4, which added the grid
//! summary and the `shard`/`shards` pair to the header) is the wire
//! format of multi-process campaigns: [`crate::campaign`] partitions
//! a grid into K interleaved shards, runs each as an ordinary
//! checkpointed sweep process, and stream-merges the K files back
//! into one [`SweepReport`] bit-identical to the single-process run.
//!
//! Worker count comes from the caller, the `VSV_WORKERS` environment
//! variable, or the host's available parallelism, in that order — see
//! [`default_workers`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use vsv_workloads::WorkloadParams;

use crate::error::SimError;
use crate::metrics::MetricsRegistry;
use crate::report::{RunResult, SloOutcome};
use crate::runner::Experiment;
use crate::system::SystemConfig;
use crate::trace::TraceLevel;

/// One cell of an experiment grid: a workload under a configuration.
#[derive(Debug, Clone, Copy)]
pub struct SweepJob {
    /// The workload parameter point to simulate.
    pub params: WorkloadParams,
    /// The system configuration to simulate it under.
    pub config: SystemConfig,
}

/// How one grid cell ended: a measured result, or a typed failure.
// `Ok` is ~430 bytes larger than `Failed`, but boxing the result
// would push a heap indirection (and a non-derivable serde shape for
// the vendored stand-ins) onto the overwhelmingly common path to
// slim the rare one — not worth it for a per-job record.
#[allow(clippy::large_enum_variant)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The simulation completed; the deterministic measured window.
    Ok(RunResult),
    /// The simulation failed. The sweep still completed every other
    /// cell; this cell's failure is data, not a dead sweep.
    Failed {
        /// What went wrong.
        error: SimError,
        /// Run attempts made (2 when a panicking job was retried
        /// once — the bounded-retry policy; 1 otherwise).
        attempts: u32,
    },
}

impl JobOutcome {
    /// The measured result, if the cell succeeded.
    #[must_use]
    pub fn result(&self) -> Option<&RunResult> {
        match self {
            JobOutcome::Ok(r) => Some(r),
            JobOutcome::Failed { .. } => None,
        }
    }

    /// The failure, if the cell failed.
    #[must_use]
    pub fn error(&self) -> Option<&SimError> {
        match self {
            JobOutcome::Ok(_) => None,
            JobOutcome::Failed { error, .. } => Some(error),
        }
    }

    /// Whether the cell succeeded.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, JobOutcome::Ok(_))
    }
}

/// Everything recorded about one finished job. This is the unit the
/// progress callback sees, the row type of [`SweepReport`], and the
/// line type of the JSONL checkpoint.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Index of the job in the sweep's grid order.
    pub job: usize,
    /// Workload name (from the job's parameter point).
    pub workload: String,
    /// FNV-1a digest of the job's full `SystemConfig`, as 16 hex
    /// digits. Two jobs share a digest exactly when they share a
    /// configuration, so reports remain comparable across runs — and
    /// checkpoint resume validates it before trusting a cached cell.
    pub config_digest: String,
    /// DVS policy the job's configuration runs under
    /// ([`SystemConfig::policy_name`]: `"disabled"` for the baseline).
    pub policy: String,
    /// Voltage-ladder depth of the job's configuration (2 for the
    /// paper's two rails; 1 is the degenerate always-VDDH ladder).
    pub ladder: usize,
    /// Core count of the job's configuration
    /// ([`SystemConfig::cores`]: 1 is the paper's single-core
    /// machine; N > 1 ran N voltage domains over a shared L2).
    /// Defaults to 1 when absent so pre-multicore (v6) checkpoints
    /// still parse.
    #[cfg_attr(feature = "serde", serde(default = "default_cores"))]
    pub cores: usize,
    /// How the cell ended (deterministic: simulated time, energy,
    /// counters, or the typed failure).
    pub outcome: JobOutcome,
    /// The measured window's [`MetricsRegistry`] (deterministic;
    /// schema in `docs/observability.md`). Empty for failed cells.
    pub metrics: MetricsRegistry,
    /// The cell's SLO judgment ([`RunResult::slo`]) surfaced for
    /// report consumers: `None` when the cell failed or the run
    /// carried no [`SloSpec`](crate::report::SloSpec).
    #[cfg_attr(feature = "serde", serde(default))]
    pub slo: Option<SloOutcome>,
    /// Host wall-clock nanoseconds this job took. **Not**
    /// deterministic; consumers that digest reports must zero it
    /// first (see `tests/sweep_report_golden.rs`).
    pub wall_ns: u64,
}

/// Serde default for [`JobRecord::cores`]: pre-multicore checkpoints
/// (v6 and earlier) were all single-core.
fn default_cores() -> usize {
    1
}

impl JobRecord {
    /// The measured result, if the job succeeded.
    #[must_use]
    pub fn result(&self) -> Option<&RunResult> {
        self.outcome.result()
    }
}

/// The serializable outcome of a whole sweep, in grid order.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Number of jobs in the grid.
    pub jobs: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Host wall-clock nanoseconds for the whole sweep. Not
    /// deterministic (see [`JobRecord::wall_ns`]).
    pub wall_ns: u64,
    /// One record per job, in grid order.
    pub records: Vec<JobRecord>,
    /// Every record's [`JobRecord::metrics`] merged in grid order —
    /// bit-identical for any worker count (see
    /// [`MetricsRegistry::merge`]). Serialized *after* `records` so
    /// streaming producers — the in-process [`ReportAggregator`] fold
    /// and the campaign merge — can emit the aggregate once the
    /// record stream ends, holding one record at a time.
    pub metrics: MetricsRegistry,
}

impl SweepReport {
    /// The bare results in grid order, consuming the report.
    ///
    /// # Panics
    ///
    /// Panics if any cell failed — positional consumers (the figure
    /// binaries) would silently misalign on a gap. Check
    /// [`SweepReport::failures`] first when failures are survivable.
    #[must_use]
    pub fn into_results(self) -> Vec<RunResult> {
        let failed: Vec<String> = self
            .failures()
            .map(|r| format!("#{} {} ({})", r.job, r.workload, summarize(&r.outcome)))
            .collect();
        if !failed.is_empty() {
            panic!(
                "{} of {} sweep cells failed: {}",
                failed.len(),
                self.jobs,
                failed.join("; ")
            );
        }
        self.records
            .into_iter()
            .filter_map(|r| match r.outcome {
                JobOutcome::Ok(result) => Some(result),
                JobOutcome::Failed { .. } => None,
            })
            .collect()
    }

    /// The failed records, in grid order.
    pub fn failures(&self) -> impl Iterator<Item = &JobRecord> {
        self.records.iter().filter(|r| !r.outcome.is_ok())
    }

    /// Number of failed cells.
    #[must_use]
    pub fn failed_jobs(&self) -> usize {
        self.failures().count()
    }
}

/// Streaming fold of [`JobRecord`]s into the aggregate half of a
/// [`SweepReport`]: record and failure counts plus the grid-ordered
/// metrics merge, one record at a time — O(1) memory in cells.
///
/// Both the in-process sweep assembly ([`Sweep::report`] and
/// friends) and the multi-process campaign merge
/// ([`crate::campaign`]) aggregate through this same type, so a
/// merged K-shard report is guaranteed to aggregate bit-identically
/// to a single-process run: there is exactly one fold order (grid
/// order) and one fold implementation.
#[derive(Debug, Clone, Default)]
pub struct ReportAggregator {
    folded: usize,
    failed: usize,
    metrics: MetricsRegistry,
}

impl ReportAggregator {
    /// An empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one record into the aggregate. Call in grid order: the
    /// counter sums are commutative, but grid order is the pinned
    /// convention (see `docs/observability.md`).
    pub fn fold(&mut self, record: &JobRecord) {
        self.folded += 1;
        if !record.outcome.is_ok() {
            self.failed += 1;
        }
        self.metrics.merge(&record.metrics);
    }

    /// Records folded so far.
    #[must_use]
    pub fn folded(&self) -> usize {
        self.folded
    }

    /// Failed records folded so far.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.failed
    }

    /// The running metrics merge.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Consumes the aggregate, yielding the merged metrics.
    #[must_use]
    pub fn into_metrics(self) -> MetricsRegistry {
        self.metrics
    }
}

fn summarize(outcome: &JobOutcome) -> String {
    match outcome {
        JobOutcome::Ok(_) => "ok".to_owned(),
        JobOutcome::Failed { error, attempts } => {
            format!("{} after {attempts} attempt(s)", error.kind())
        }
    }
}

/// FNV-1a over the `Debug` rendering of a [`SystemConfig`], as 16 hex
/// digits. `SystemConfig` derives `Debug` exhaustively, so any knob
/// change (policies, thresholds, cache geometry, power model) changes
/// the digest.
#[must_use]
pub fn config_digest(cfg: &SystemConfig) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{cfg:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Worker count policy: `VSV_WORKERS` if set to a positive integer,
/// otherwise the host's available parallelism (falling back to 1).
///
/// A set-but-unparsable `VSV_WORKERS` (empty, non-numeric, or zero)
/// emits a one-line stderr warning naming the bad value instead of
/// silently using host parallelism.
#[must_use]
pub fn default_workers() -> usize {
    match std::env::var("VSV_WORKERS") {
        Ok(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!(
                "warning: ignoring VSV_WORKERS={raw:?} (expected a positive \
                 integer); using host parallelism"
            ),
        },
        Err(std::env::VarError::NotPresent) => {}
        Err(e @ std::env::VarError::NotUnicode(_)) => {
            eprintln!("warning: ignoring VSV_WORKERS ({e}); using host parallelism")
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a `--workers N`-style flag value: `0` means "pick for
/// me" and defers to [`default_workers`] (the `VSV_WORKERS`-then-host
/// policy, including its stderr warning for unparsable values); any
/// positive value wins as-is.
///
/// This is the single worker-count policy shared by the CLI, the
/// bench binaries, and campaign shard processes — one place, one
/// semantics.
#[must_use]
pub fn resolve_workers(flag: usize) -> usize {
    if flag == 0 {
        default_workers()
    } else {
        flag
    }
}

/// A grid of independent simulation jobs plus the experiment scale to
/// run them at.
///
/// ```
/// use vsv::{Experiment, Sweep, SystemConfig};
/// use vsv_workloads::twin;
///
/// let twins = [twin("gzip").unwrap(), twin("ammp").unwrap()];
/// let configs = [SystemConfig::baseline(), SystemConfig::vsv_with_fsms()];
/// let sweep = Sweep::over_grid(
///     Experiment { warmup_instructions: 500, instructions: 2_000 },
///     &twins,
///     &configs,
/// );
/// // 2 twins x 2 configs, params-major: gzip/base, gzip/vsv, ammp/base, ammp/vsv.
/// let results = sweep.run(2);
/// assert_eq!(results.len(), 4);
/// assert_eq!(results[0].workload, "gzip");
/// assert_eq!(results[2].workload, "ammp");
/// ```
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Simulation-length policy shared by every job.
    pub experiment: Experiment,
    jobs: Vec<SweepJob>,
}

impl Sweep {
    /// A sweep over an explicit job list (grid order = list order).
    #[must_use]
    pub fn new(experiment: Experiment, jobs: Vec<SweepJob>) -> Self {
        Sweep { experiment, jobs }
    }

    /// The params-major cross product: for each parameter point, every
    /// configuration in order. Row `i` of the result corresponds to
    /// `params[i / configs.len()]` under `configs[i % configs.len()]`.
    #[must_use]
    pub fn over_grid(
        experiment: Experiment,
        params: &[WorkloadParams],
        configs: &[SystemConfig],
    ) -> Self {
        let jobs = params
            .iter()
            .flat_map(|p| {
                configs.iter().map(move |c| SweepJob {
                    params: *p,
                    config: *c,
                })
            })
            .collect();
        Sweep { experiment, jobs }
    }

    /// The ladder-depth axis: for each parameter point, `base`
    /// rebuilt on a uniform ladder of every depth in `depths`
    /// (params-major, like [`Sweep::over_grid`]). Row `i` corresponds
    /// to `params[i / depths.len()]` at `depths[i % depths.len()]`.
    #[must_use]
    pub fn over_ladder_depths(
        experiment: Experiment,
        params: &[WorkloadParams],
        base: SystemConfig,
        depths: &[usize],
    ) -> Self {
        let configs: Vec<SystemConfig> =
            depths.iter().map(|&d| base.with_ladder_depth(d)).collect();
        Self::over_grid(experiment, params, &configs)
    }

    /// The core-count axis: for each parameter point, `base` rebuilt
    /// at every core count in `cores` (params-major, like
    /// [`Sweep::over_grid`]). Row `i` corresponds to
    /// `params[i / cores.len()]` at `cores[i % cores.len()]`. Counts
    /// above 1 run N voltage domains over a shared L2 (see
    /// [`crate::MulticoreSystem`]); 1 is the paper's single-core
    /// machine.
    #[must_use]
    pub fn over_cores(
        experiment: Experiment,
        params: &[WorkloadParams],
        base: SystemConfig,
        cores: &[usize],
    ) -> Self {
        let configs: Vec<SystemConfig> = cores.iter().map(|&n| base.with_cores(n)).collect();
        Self::over_grid(experiment, params, &configs)
    }

    /// The grid, in order.
    #[must_use]
    pub fn jobs(&self) -> &[SweepJob] {
        &self.jobs
    }

    /// Mutable access to the grid — used to arm per-cell knobs such
    /// as [`SystemConfig::inject_fault`] on a chosen cell.
    pub fn jobs_mut(&mut self) -> &mut [SweepJob] {
        &mut self.jobs
    }

    /// Number of jobs in the grid.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs the grid on `workers` threads and returns the bare
    /// results in grid order. See [`Sweep::run_with_progress`] for
    /// the execution model.
    ///
    /// # Panics
    ///
    /// Panics if any cell failed (see [`SweepReport::into_results`]);
    /// use [`Sweep::report`] to handle per-cell failures as data.
    #[must_use]
    pub fn run(&self, workers: usize) -> Vec<RunResult> {
        self.run_with_progress(workers, |_| {}).into_results()
    }

    /// Runs the grid and returns the full [`SweepReport`] without
    /// progress reporting.
    #[must_use]
    pub fn report(&self, workers: usize) -> SweepReport {
        self.run_with_progress(workers, |_| {})
    }

    /// Runs the grid on `workers` scoped threads pulling jobs from a
    /// shared atomic counter, invoking `progress` once per finished
    /// job (from the worker that finished it, in completion — not
    /// grid — order), and returns records in grid order.
    ///
    /// Determinism: each job's [`RunResult`] depends only on its
    /// `(params, config)` and the experiment scale — every simulator
    /// is owned by exactly one job — so on an all-success grid the
    /// result vector is bit-identical for any `workers >= 1` and
    /// equal to a serial loop over [`Experiment::run`]. Only the
    /// `wall_ns` fields vary between runs.
    ///
    /// Fault isolation: a job that fails — typed [`SimError`] or a
    /// caught panic (retried once) — becomes a
    /// [`JobOutcome::Failed`] record; every other cell still runs.
    ///
    /// `workers` is clamped to `[1, len()]` (a degenerate clamp of 1
    /// for an empty grid).
    #[must_use]
    pub fn run_with_progress<F>(&self, workers: usize, progress: F) -> SweepReport
    where
        F: Fn(&JobRecord) + Sync,
    {
        let preloaded = std::iter::repeat_with(|| None)
            .take(self.jobs.len())
            .collect();
        self.run_grid(workers, preloaded, &|r| progress(r))
    }

    /// Runs the grid with per-job JSONL traces at `level`: alongside
    /// the report, returns one byte buffer per job in grid order,
    /// each holding that job's serialized [`crate::TraceEvent`]
    /// stream (headed by a `job_start` line). Buffers are
    /// deterministic and independent of the worker count —
    /// concatenating them in grid order yields the same bytes
    /// whether the sweep ran on 1 thread or 40. Failed cells get an
    /// empty buffer.
    #[cfg(feature = "serde")]
    #[must_use]
    pub fn report_traced(&self, workers: usize, level: TraceLevel) -> (SweepReport, Vec<Vec<u8>>) {
        let preloaded = std::iter::repeat_with(|| None)
            .take(self.jobs.len())
            .collect();
        self.run_grid_traced(workers, preloaded, &|_| {}, Some(level))
    }

    /// The shared execution engine: runs every grid index whose
    /// `preloaded` slot is `None`, invokes `on_record` for each newly
    /// finished job, and assembles the full grid-ordered report from
    /// cached plus fresh records.
    fn run_grid(
        &self,
        workers: usize,
        preloaded: Vec<Option<JobRecord>>,
        on_record: &(dyn Fn(&JobRecord) + Sync),
    ) -> SweepReport {
        self.run_grid_traced(workers, preloaded, on_record, None).0
    }

    /// [`Sweep::run_grid`] plus optional per-job JSONL tracing: with
    /// `trace` set, each freshly-run job also produces its trace
    /// bytes (grid-ordered, empty for preloaded or failed cells).
    fn run_grid_traced(
        &self,
        workers: usize,
        mut preloaded: Vec<Option<JobRecord>>,
        on_record: &(dyn Fn(&JobRecord) + Sync),
        trace: Option<TraceLevel>,
    ) -> (SweepReport, Vec<Vec<u8>>) {
        debug_assert_eq!(preloaded.len(), self.jobs.len());
        let workers = workers.max(1).min(self.jobs.len().max(1));
        let sweep_start = Instant::now();
        let done: Vec<bool> = preloaded.iter().map(Option::is_some).collect();
        let next = AtomicUsize::new(0);
        // One lock per slot: workers write disjoint indices, so there
        // is no contention — the Mutex exists only to hand each worker
        // a &mut to its own slot through the shared borrow.
        let slots: Vec<Mutex<&mut Option<JobRecord>>> =
            preloaded.iter_mut().map(Mutex::new).collect();
        let mut traces: Vec<Vec<u8>> = vec![Vec::new(); self.jobs.len()];
        let trace_slots: Vec<Mutex<&mut Vec<u8>>> = traces.iter_mut().map(Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = self.jobs.get(i) else { break };
                    if done[i] {
                        continue;
                    }
                    let job_start = Instant::now();
                    let (outcome, metrics, trace_bytes, _) =
                        execute_job(&self.experiment, job, i, trace);
                    let record = JobRecord {
                        job: i,
                        workload: job.params.name.to_owned(),
                        config_digest: config_digest(&job.config),
                        policy: job.config.policy_name().to_owned(),
                        ladder: job.config.vsv.ladder.depth(),
                        cores: job.config.cores,
                        slo: outcome.result().and_then(|r| r.slo),
                        outcome,
                        metrics,
                        wall_ns: u64::try_from(job_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    };
                    on_record(&record);
                    match slots[i].lock() {
                        Ok(mut slot) => **slot = Some(record),
                        // A slot mutex can only be poisoned by a panic
                        // in on_record; the record is still ours to
                        // write.
                        Err(poisoned) => **poisoned.into_inner() = Some(record),
                    }
                    if !trace_bytes.is_empty() {
                        match trace_slots[i].lock() {
                            Ok(mut slot) => **slot = trace_bytes,
                            Err(poisoned) => **poisoned.into_inner() = trace_bytes,
                        }
                    }
                });
            }
        });
        drop(slots);
        drop(trace_slots);
        // Single streaming fold, in grid order: bit-identical for any
        // worker count, and the same fold the campaign merge uses.
        let mut aggregate = ReportAggregator::new();
        let records: Vec<JobRecord> = preloaded
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let record = r.unwrap_or_else(|| unreachable!("slot {i} unfilled"));
                aggregate.fold(&record);
                record
            })
            .collect();
        (
            SweepReport {
                jobs: self.jobs.len(),
                workers,
                wall_ns: u64::try_from(sweep_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                records,
                metrics: aggregate.into_metrics(),
            },
            traces,
        )
    }
}

/// Runs one job behind a panic boundary with the bounded-retry
/// policy: a typed [`SimError`] is final; a panic is retried exactly
/// once (in case transient host state — not the deterministic model —
/// poisoned the first attempt) and then recorded as
/// [`SimError::Panic`]. Returns the outcome and the attempt count.
fn execute_job(
    experiment: &Experiment,
    job: &SweepJob,
    index: usize,
    trace: Option<TraceLevel>,
) -> (JobOutcome, MetricsRegistry, Vec<u8>, u32) {
    #[cfg(not(feature = "serde"))]
    let _ = (index, trace);
    const MAX_ATTEMPTS: u32 = 2;
    let mut attempts = 0;
    loop {
        attempts += 1;
        // A retried attempt rebuilds its trace buffer from scratch, so
        // a panic on the first attempt cannot leave half a trace.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            #[cfg(feature = "serde")]
            if let Some(level) = trace {
                let header = crate::trace::TraceEvent::JobStart {
                    job: index as u64,
                    workload: job.params.name.to_owned(),
                    policy: job.config.policy_name().to_owned(),
                    config_digest: config_digest(&job.config),
                };
                return experiment.try_run_traced(&job.params, job.config, level, Some(header));
            }
            experiment
                .try_run_with_metrics(&job.params, job.config)
                .map(|(result, metrics)| (result, metrics, Vec::new()))
        }));
        match caught {
            Ok(Ok((result, metrics, trace_bytes))) => {
                return (JobOutcome::Ok(result), metrics, trace_bytes, attempts)
            }
            Ok(Err(error)) => {
                return (
                    JobOutcome::Failed { error, attempts },
                    MetricsRegistry::default(),
                    Vec::new(),
                    attempts,
                )
            }
            Err(payload) => {
                if attempts >= MAX_ATTEMPTS {
                    let error = SimError::Panic {
                        // `&*` derefs the Box so the downcast sees the
                        // payload, not the Box itself.
                        message: panic_message(&*payload),
                    };
                    return (
                        JobOutcome::Failed { error, attempts },
                        MetricsRegistry::default(),
                        Vec::new(),
                        attempts,
                    );
                }
            }
        }
    }
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(feature = "serde")]
mod checkpoint {
    //! JSONL checkpointing: a header line pinning the grid shape and
    //! experiment scale, then one [`JobRecord`] line per finished
    //! job, appended as jobs complete so a killed sweep loses at most
    //! the in-flight cells.

    use std::io::{Seek, Write};
    use std::path::Path;
    use std::sync::Mutex;

    use super::{config_digest, JobRecord, Sweep, SweepJob, SweepReport};

    /// Dimension summary of a sweep grid, carried in every checkpoint
    /// header since schema v4. The human-readable axes (distinct
    /// workloads, policies, ladder depths, FSM policies) make a
    /// [`CheckpointError::GridMismatch`] explain *which* dimension
    /// drifted; `grid_digest` pins the exact per-cell
    /// (workload, config) sequence, so two grids summarize equal iff
    /// they are cell-for-cell identical.
    #[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
    pub(crate) struct GridSummary {
        /// Cell count (mirrors the header's `jobs`, keeping the
        /// summary self-contained).
        pub(crate) cells: usize,
        /// Distinct workload names, sorted, comma-joined.
        pub(crate) workloads: String,
        /// Distinct DVS policy names, sorted, comma-joined.
        pub(crate) policies: String,
        /// Distinct voltage-ladder depths, sorted, comma-joined.
        pub(crate) ladders: String,
        /// Distinct core counts, sorted, comma-joined. Defaults to
        /// `"1"` when absent (the multicore axis is newer than the
        /// summary itself).
        #[serde(default = "default_cores_axis")]
        pub(crate) cores: String,
        /// Distinct down/up FSM policy pairs (threshold × window),
        /// sorted, `;`-joined.
        pub(crate) fsm: String,
        /// FNV-1a over every cell's `workload:config_digest` pair in
        /// grid order, as 16 hex digits.
        pub(crate) grid_digest: String,
    }

    /// Serde default for [`GridSummary::cores`]: pre-multicore grids
    /// were all single-core.
    fn default_cores_axis() -> String {
        "1".to_owned()
    }

    /// First line of every checkpoint file: rejects resumes against a
    /// different grid or experiment scale before any digest check.
    /// Since v4 it also carries the [`GridSummary`] and the
    /// `shard`/`shards` pair placing the file inside a campaign
    /// (`0/1` for a plain single-process sweep).
    #[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
    pub(crate) struct CheckpointHeader {
        pub(crate) version: u32,
        pub(crate) jobs: usize,
        pub(crate) warmup_instructions: u64,
        pub(crate) instructions: u64,
        pub(crate) shard: usize,
        pub(crate) shards: usize,
        /// Host wall-clock nanoseconds of the run that produced the
        /// file: `0` while a sweep is still appending (the header is
        /// written before any cell runs), stamped with the shard's
        /// measured wall clock when a campaign finalizes the file.
        /// **Not** deterministic, and deliberately ignored by
        /// [`validate_header_against`].
        #[serde(default)]
        pub(crate) wall_ns: u64,
        pub(crate) grid: GridSummary,
    }

    // v2: `JobRecord` gained its `metrics` registry (PR 5); v3: the
    // `ladder` depth field (N-level voltage ladders); v4: the header
    // gained the grid-dimension summary and the campaign shard
    // contract, and `SweepReport` moved `metrics` after `records` for
    // single-pass streaming merges; v5: `JobRecord` gained the `slo`
    // outcome field and the header gained the finalized shard
    // `wall_ns`; v6: the service-traffic subsystem — `SystemConfig`
    // gained the `traffic` axis (part of the config digest),
    // `MetricsRegistry` the request counters and log2 latency
    // histogram, and `SloSpec`/`SloOutcome`/`RunResult` the
    // request-latency ceilings and percentiles; v7: multicore —
    // `SystemConfig` gained the `cores` axis (part of the config
    // digest, so every v6 digest changed), `JobRecord` the `cores`
    // field, the grid summary its `cores` dimension, and `RunResult`
    // the per-core `core_results` vector. Older files no longer
    // round-trip and are rejected by the version check.
    pub(crate) const CHECKPOINT_VERSION: u32 = 7;

    /// Why a checkpoint could not be written or resumed.
    #[derive(Debug)]
    pub enum CheckpointError {
        /// Filesystem failure (open, append, truncate).
        Io {
            /// The checkpoint path.
            path: String,
            /// The underlying error.
            error: String,
        },
        /// A non-final line failed to parse — the file is corrupt
        /// beyond the crash-truncation the format tolerates.
        Corrupt {
            /// 1-based line number.
            line: usize,
            /// Parse error.
            error: String,
        },
        /// The header does not match this sweep (different grid size,
        /// experiment scale, shard position, or format version).
        HeaderMismatch {
            /// What differed.
            reason: String,
        },
        /// The header's grid-dimension summary does not match this
        /// sweep: same cell count and scale, but a different
        /// workloads × policies × ladders × FSM-threshold grid. Caught
        /// at the header, before any per-record digest check, instead
        /// of producing a silently misaligned report.
        GridMismatch {
            /// Which dimension differed, checkpoint vs. sweep.
            reason: String,
        },
        /// A record's job index is outside this sweep's grid.
        JobOutOfRange {
            /// The out-of-range index.
            job: usize,
            /// The grid size.
            jobs: usize,
        },
        /// A record's config digest does not match the sweep's
        /// configuration for that cell — the checkpoint belongs to a
        /// different grid.
        DigestMismatch {
            /// The grid cell.
            job: usize,
            /// Digest of this sweep's configuration.
            expected: String,
            /// Digest recorded in the checkpoint.
            found: String,
        },
        /// A record's workload name does not match the sweep's
        /// parameter point for that cell.
        WorkloadMismatch {
            /// The grid cell.
            job: usize,
            /// This sweep's workload name.
            expected: String,
            /// Name recorded in the checkpoint.
            found: String,
        },
    }

    impl std::fmt::Display for CheckpointError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                CheckpointError::Io { path, error } => {
                    write!(f, "checkpoint io error at {path}: {error}")
                }
                CheckpointError::Corrupt { line, error } => {
                    write!(f, "checkpoint corrupt at line {line}: {error}")
                }
                CheckpointError::HeaderMismatch { reason } => {
                    write!(f, "checkpoint header mismatch: {reason}")
                }
                CheckpointError::GridMismatch { reason } => {
                    write!(f, "checkpoint grid mismatch: {reason}")
                }
                CheckpointError::JobOutOfRange { job, jobs } => {
                    write!(f, "checkpoint record for job {job} outside grid of {jobs}")
                }
                CheckpointError::DigestMismatch {
                    job,
                    expected,
                    found,
                } => write!(
                    f,
                    "checkpoint config digest mismatch for job {job}: \
                     sweep has {expected}, checkpoint has {found}"
                ),
                CheckpointError::WorkloadMismatch {
                    job,
                    expected,
                    found,
                } => write!(
                    f,
                    "checkpoint workload mismatch for job {job}: \
                     sweep has {expected:?}, checkpoint has {found:?}"
                ),
            }
        }
    }

    impl std::error::Error for CheckpointError {}

    /// The validated prefix of an existing checkpoint file.
    struct LoadedCheckpoint {
        /// Cached records by grid index.
        records: Vec<Option<JobRecord>>,
        /// Byte length of the valid prefix (everything after is a
        /// half-written crash tail to truncate away).
        valid_len: u64,
        /// Whether the valid prefix ends without a newline (a record
        /// fully written but unterminated — the next append must
        /// start on a fresh line).
        needs_newline: bool,
        /// Whether a valid header line was found.
        has_header: bool,
    }

    impl Sweep {
        /// The grid-dimension summary this sweep's checkpoints carry
        /// (and are validated against).
        pub(crate) fn grid_summary(&self) -> GridSummary {
            grid_summary_over(self.jobs().iter())
        }

        /// The header a checkpoint of this sweep must carry when it
        /// is shard `shard` of `shards` (`0`/`1` for a plain sweep).
        pub(crate) fn checkpoint_header(&self, shard: usize, shards: usize) -> CheckpointHeader {
            CheckpointHeader {
                version: CHECKPOINT_VERSION,
                jobs: self.len(),
                warmup_instructions: self.experiment.warmup_instructions,
                instructions: self.experiment.instructions,
                shard,
                shards,
                wall_ns: 0,
                grid: self.grid_summary(),
            }
        }

        /// Runs the grid like [`Sweep::report`] while appending one
        /// JSONL [`JobRecord`] line per finished job to a fresh
        /// checkpoint file at `path` (created or truncated).
        ///
        /// # Errors
        ///
        /// [`CheckpointError::Io`] if the file cannot be created or
        /// written.
        pub fn report_with_checkpoint(
            &self,
            workers: usize,
            path: &Path,
        ) -> Result<SweepReport, CheckpointError> {
            self.report_with_checkpoint_sharded(workers, path, 0, 1)
        }

        /// [`Sweep::report_with_checkpoint`] with an explicit campaign
        /// shard position stamped into the header.
        pub(crate) fn report_with_checkpoint_sharded(
            &self,
            workers: usize,
            path: &Path,
            shard: usize,
            shards: usize,
        ) -> Result<SweepReport, CheckpointError> {
            let file = std::fs::File::create(path).map_err(|e| io_err(path, &e))?;
            let preloaded = std::iter::repeat_with(|| None).take(self.len()).collect();
            self.run_checkpointed(workers, path, file, true, preloaded, shard, shards)
        }

        /// Resumes an interrupted checkpointed sweep: validates the
        /// header and every cached record's config digest against
        /// this grid, truncates away a half-written final line,
        /// re-runs only the missing cells (appending their records),
        /// and returns the complete grid-ordered report —
        /// bit-identical, wall-clock fields aside, to an
        /// uninterrupted [`Sweep::report_with_checkpoint`] run.
        ///
        /// A missing or empty checkpoint file degenerates to a fresh
        /// checkpointed run.
        ///
        /// # Errors
        ///
        /// [`CheckpointError`] on filesystem failures, a corrupt
        /// non-tail line, or any header/digest/workload mismatch
        /// (the checkpoint belongs to a different sweep).
        pub fn resume(&self, workers: usize, path: &Path) -> Result<SweepReport, CheckpointError> {
            self.resume_sharded(workers, path, 0, 1)
        }

        /// [`Sweep::resume`] with an explicit campaign shard position:
        /// the checkpoint's header must carry the same `shard`/`shards`
        /// pair, and fresh appends stamp it.
        pub(crate) fn resume_sharded(
            &self,
            workers: usize,
            path: &Path,
            shard: usize,
            shards: usize,
        ) -> Result<SweepReport, CheckpointError> {
            let content = match std::fs::read_to_string(path) {
                Ok(c) => c,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
                Err(e) => return Err(io_err(path, &e)),
            };
            let loaded = self.parse_checkpoint(&content, shard, shards)?;
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .write(true)
                // Deliberately not `truncate(true)`: the valid prefix
                // must survive; `set_len` below trims only the crash
                // tail.
                .truncate(false)
                .open(path)
                .map_err(|e| io_err(path, &e))?;
            file.set_len(loaded.valid_len)
                .map_err(|e| io_err(path, &e))?;
            file.seek(std::io::SeekFrom::End(0))
                .map_err(|e| io_err(path, &e))?;
            if loaded.needs_newline {
                file.write_all(b"\n").map_err(|e| io_err(path, &e))?;
            }
            self.run_checkpointed(
                workers,
                path,
                file,
                !loaded.has_header,
                loaded.records,
                shard,
                shards,
            )
        }

        /// Parses and validates the readable prefix of a checkpoint
        /// file against this sweep's grid.
        fn parse_checkpoint(
            &self,
            content: &str,
            shard: usize,
            shards: usize,
        ) -> Result<LoadedCheckpoint, CheckpointError> {
            let mut loaded = LoadedCheckpoint {
                records: std::iter::repeat_with(|| None).take(self.len()).collect(),
                valid_len: 0,
                needs_newline: false,
                has_header: false,
            };
            let chunks: Vec<&str> = content.split_inclusive('\n').collect();
            for (idx, chunk) in chunks.iter().enumerate() {
                let terminated = chunk.ends_with('\n');
                let is_tail = idx + 1 == chunks.len() && !terminated;
                let line = chunk.trim_end_matches(['\n', '\r']);
                if line.is_empty() {
                    loaded.valid_len += chunk.len() as u64;
                    continue;
                }
                if !loaded.has_header {
                    match serde_json::from_str::<CheckpointHeader>(line) {
                        Ok(header) => {
                            self.validate_header(&header, shard, shards)?;
                            loaded.has_header = true;
                            loaded.valid_len += chunk.len() as u64;
                            loaded.needs_newline = !terminated;
                            continue;
                        }
                        Err(e) if is_tail => {
                            // A crash mid-header: drop it and start
                            // fresh.
                            let _ = e;
                            return Ok(loaded);
                        }
                        Err(e) => {
                            return Err(CheckpointError::Corrupt {
                                line: idx + 1,
                                error: e.to_string(),
                            })
                        }
                    }
                }
                match serde_json::from_str::<JobRecord>(line) {
                    Ok(record) => {
                        self.validate_record(&record)?;
                        // Duplicate lines for one job (possible after
                        // repeated crash/resume cycles): last wins.
                        let slot = record.job;
                        loaded.records[slot] = Some(record);
                        loaded.valid_len += chunk.len() as u64;
                        loaded.needs_newline = !terminated;
                    }
                    Err(_) if is_tail => {
                        // The half-written line a kill can leave
                        // behind; the cell simply re-runs.
                    }
                    Err(e) => {
                        return Err(CheckpointError::Corrupt {
                            line: idx + 1,
                            error: e.to_string(),
                        })
                    }
                }
            }
            Ok(loaded)
        }

        pub(crate) fn validate_header(
            &self,
            header: &CheckpointHeader,
            shard: usize,
            shards: usize,
        ) -> Result<(), CheckpointError> {
            validate_header_against(&self.checkpoint_header(shard, shards), header)
        }

        fn validate_record(&self, record: &JobRecord) -> Result<(), CheckpointError> {
            let Some(job) = self.jobs().get(record.job) else {
                return Err(CheckpointError::JobOutOfRange {
                    job: record.job,
                    jobs: self.len(),
                });
            };
            let expected = config_digest(&job.config);
            if record.config_digest != expected {
                return Err(CheckpointError::DigestMismatch {
                    job: record.job,
                    expected,
                    found: record.config_digest.clone(),
                });
            }
            if record.workload != job.params.name {
                return Err(CheckpointError::WorkloadMismatch {
                    job: record.job,
                    expected: job.params.name.to_owned(),
                    found: record.workload.clone(),
                });
            }
            Ok(())
        }

        /// Runs the missing cells, streaming each fresh record to the
        /// checkpoint file (flushed per line, so a kill loses at most
        /// the in-flight cells).
        #[allow(clippy::too_many_arguments)]
        fn run_checkpointed(
            &self,
            workers: usize,
            path: &Path,
            file: std::fs::File,
            write_header: bool,
            preloaded: Vec<Option<JobRecord>>,
            shard: usize,
            shards: usize,
        ) -> Result<SweepReport, CheckpointError> {
            let mut writer = std::io::BufWriter::new(file);
            if write_header {
                let header = self.checkpoint_header(shard, shards);
                append_line(&mut writer, &header).map_err(|e| io_string_err(path, &e))?;
            }
            let sink: Mutex<(std::io::BufWriter<std::fs::File>, Option<String>)> =
                Mutex::new((writer, None));
            let report = self.run_grid(workers, preloaded, &|record| {
                let mut guard = match sink.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                let (writer, first_error) = &mut *guard;
                if first_error.is_none() {
                    if let Err(e) = append_line(writer, record) {
                        *first_error = Some(e);
                    }
                }
            });
            let (_, error) = match sink.into_inner() {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            match error {
                Some(e) => Err(io_string_err(path, &e)),
                None => Ok(report),
            }
        }
    }

    /// [`GridSummary`] of an arbitrary job sequence. Borrowing the
    /// jobs matters: the campaign merge validates one shard header
    /// per input file against a strided view of the full grid, and
    /// materializing each shard's sweep just to summarize it would
    /// spike merge memory by a full grid copy.
    pub(crate) fn grid_summary_over<'a>(jobs: impl Iterator<Item = &'a SweepJob>) -> GridSummary {
        use std::collections::BTreeSet;
        let mut cells = 0;
        let mut workloads = BTreeSet::new();
        let mut policies = BTreeSet::new();
        let mut ladders = BTreeSet::new();
        let mut cores = BTreeSet::new();
        let mut fsm = BTreeSet::new();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for job in jobs {
            cells += 1;
            workloads.insert(job.params.name.to_owned());
            policies.insert(job.config.policy_name().to_owned());
            ladders.insert(job.config.vsv.ladder.depth());
            cores.insert(job.config.cores);
            fsm.insert(format!("{:?}/{:?}", job.config.vsv.down, job.config.vsv.up));
            for b in job
                .params
                .name
                .bytes()
                .chain([b':'])
                .chain(config_digest(&job.config).bytes())
                .chain([b'\n'])
            {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let join = |set: BTreeSet<String>| set.into_iter().collect::<Vec<_>>().join(",");
        GridSummary {
            cells,
            workloads: join(workloads),
            policies: join(policies),
            ladders: ladders
                .into_iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(","),
            cores: cores
                .into_iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(","),
            fsm: fsm.into_iter().collect::<Vec<_>>().join(";"),
            grid_digest: format!("{h:016x}"),
        }
    }

    /// Checks a parsed checkpoint header against the one the owning
    /// sweep (or campaign shard) expects: version, job count, and
    /// experiment scale mismatches are [`CheckpointError::HeaderMismatch`];
    /// a grid-dimension divergence is the typed
    /// [`CheckpointError::GridMismatch`], naming the first differing
    /// axis.
    pub(crate) fn validate_header_against(
        expected: &CheckpointHeader,
        header: &CheckpointHeader,
    ) -> Result<(), CheckpointError> {
        let scalar_mismatch =
            |what: &str, found: &dyn std::fmt::Debug, want: &dyn std::fmt::Debug| {
                CheckpointError::HeaderMismatch {
                    reason: format!("checkpoint has {what} {found:?}, sweep expects {want:?}"),
                }
            };
        if header.version != expected.version {
            return Err(scalar_mismatch(
                "version",
                &header.version,
                &expected.version,
            ));
        }
        if header.jobs != expected.jobs {
            return Err(scalar_mismatch("jobs", &header.jobs, &expected.jobs));
        }
        if header.warmup_instructions != expected.warmup_instructions
            || header.instructions != expected.instructions
        {
            return Err(scalar_mismatch(
                "scale",
                &(header.warmup_instructions, header.instructions),
                &(expected.warmup_instructions, expected.instructions),
            ));
        }
        if (header.shard, header.shards) != (expected.shard, expected.shards) {
            return Err(scalar_mismatch(
                "shard",
                &format!("{}/{}", header.shard, header.shards),
                &format!("{}/{}", expected.shard, expected.shards),
            ));
        }
        if header.grid != expected.grid {
            return Err(CheckpointError::GridMismatch {
                reason: grid_diff(&header.grid, &expected.grid),
            });
        }
        Ok(())
    }

    /// First differing dimension of two grid summaries, checkpoint
    /// vs. sweep, for the [`CheckpointError::GridMismatch`] message.
    fn grid_diff(found: &GridSummary, expected: &GridSummary) -> String {
        let axes = [
            ("workloads", &found.workloads, &expected.workloads),
            ("policies", &found.policies, &expected.policies),
            ("ladder depths", &found.ladders, &expected.ladders),
            ("core counts", &found.cores, &expected.cores),
            ("fsm policies", &found.fsm, &expected.fsm),
            (
                "per-cell configuration digest chain",
                &found.grid_digest,
                &expected.grid_digest,
            ),
        ];
        for (axis, f, e) in axes {
            if f != e {
                return format!("checkpoint grid has {axis} [{f}], sweep expects [{e}]");
            }
        }
        format!("checkpoint grid summary {found:?}, sweep expects {expected:?}")
    }

    /// Serializes `value` as one JSONL line and flushes it.
    pub(crate) fn append_line<T: serde::Serialize>(
        writer: &mut std::io::BufWriter<std::fs::File>,
        value: &T,
    ) -> Result<(), String> {
        let json = serde_json::to_string(value).map_err(|e| e.to_string())?;
        writeln!(writer, "{json}").map_err(|e| e.to_string())?;
        writer.flush().map_err(|e| e.to_string())
    }

    fn io_err(path: &Path, e: &std::io::Error) -> CheckpointError {
        CheckpointError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        }
    }

    fn io_string_err(path: &Path, e: &str) -> CheckpointError {
        CheckpointError::Io {
            path: path.display().to_string(),
            error: e.to_owned(),
        }
    }
}

#[cfg(feature = "serde")]
pub use checkpoint::CheckpointError;
#[cfg(feature = "serde")]
pub(crate) use checkpoint::{
    append_line, grid_summary_over, validate_header_against, CheckpointHeader, CHECKPOINT_VERSION,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use vsv_workloads::twin;

    fn tiny() -> Experiment {
        Experiment {
            warmup_instructions: 500,
            instructions: 2_000,
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let sweep = Sweep::new(tiny(), Vec::new());
        let report = sweep.report(4);
        assert_eq!(report.jobs, 0);
        assert!(report.records.is_empty());
        assert_eq!(report.failed_jobs(), 0);
    }

    #[test]
    fn grid_order_is_params_major() {
        let twins = [twin("gzip").expect("gzip"), twin("ammp").expect("ammp")];
        let configs = [SystemConfig::baseline(), SystemConfig::vsv_with_fsms()];
        let sweep = Sweep::over_grid(tiny(), &twins, &configs);
        assert_eq!(sweep.len(), 4);
        let report = sweep.report(2);
        let names: Vec<&str> = report.records.iter().map(|r| r.workload.as_str()).collect();
        assert_eq!(names, ["gzip", "gzip", "ammp", "ammp"]);
        // Same config => same digest; different config => different.
        assert_eq!(
            report.records[0].config_digest,
            report.records[2].config_digest
        );
        assert_ne!(
            report.records[0].config_digest,
            report.records[1].config_digest
        );
        // Records carry their grid index and all succeeded.
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.job, i);
            assert!(r.outcome.is_ok());
        }
    }

    #[test]
    fn progress_fires_once_per_job() {
        let twins = [twin("gzip").expect("gzip")];
        let configs = [SystemConfig::baseline(), SystemConfig::vsv_with_fsms()];
        let sweep = Sweep::over_grid(tiny(), &twins, &configs);
        let fired = AtomicUsize::new(0);
        let report = sweep.run_with_progress(2, |record| {
            assert!(record.job < 2);
            fired.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(fired.load(Ordering::Relaxed), 2);
        assert_eq!(report.records.len(), 2);
    }

    #[test]
    fn worker_count_is_clamped() {
        let twins = [twin("gzip").expect("gzip")];
        let configs = [SystemConfig::baseline()];
        let sweep = Sweep::over_grid(tiny(), &twins, &configs);
        // 0 and 100 workers both work on a 1-job grid.
        assert_eq!(sweep.report(0).workers, 1);
        assert_eq!(sweep.report(100).workers, 1);
    }

    #[test]
    fn digest_is_stable_and_knob_sensitive() {
        let a = config_digest(&SystemConfig::baseline());
        let b = config_digest(&SystemConfig::baseline());
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        let mut cfg = SystemConfig::vsv_with_fsms();
        let before = config_digest(&cfg);
        cfg.mem.dram.latency_ns += 1;
        assert_ne!(before, config_digest(&cfg));
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn typed_failure_is_recorded_not_propagated() {
        let twins = [twin("gzip").expect("gzip")];
        let mut sweep = Sweep::over_grid(
            tiny(),
            &twins,
            &[SystemConfig::baseline(), SystemConfig::vsv_with_fsms()],
        );
        sweep.jobs_mut()[1].config.inject_fault = Some(crate::FaultKind::Deadlock);
        let report = sweep.report(2);
        assert_eq!(report.records.len(), 2);
        assert!(report.records[0].outcome.is_ok());
        match &report.records[1].outcome {
            JobOutcome::Failed { error, attempts } => {
                assert_eq!(error.kind(), "deadlock");
                assert_eq!(*attempts, 1, "typed errors are final, not retried");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(report.failed_jobs(), 1);
    }

    #[test]
    fn panicking_cell_is_retried_once_then_recorded() {
        let twins = [twin("gzip").expect("gzip")];
        let mut sweep = Sweep::over_grid(tiny(), &twins, &[SystemConfig::baseline()]);
        sweep.jobs_mut()[0].config.inject_fault = Some(crate::FaultKind::Panic);
        let report = sweep.report(1);
        match &report.records[0].outcome {
            JobOutcome::Failed { error, attempts } => {
                assert_eq!(error.kind(), "panic");
                assert_eq!(*attempts, 2, "one bounded retry for panics");
                assert!(
                    error.to_string().contains("injected panic fault"),
                    "{error}"
                );
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "sweep cells failed")]
    fn into_results_panics_on_failure() {
        let twins = [twin("gzip").expect("gzip")];
        let mut sweep = Sweep::over_grid(tiny(), &twins, &[SystemConfig::baseline()]);
        sweep.jobs_mut()[0].config.inject_fault = Some(crate::FaultKind::Deadlock);
        let _ = sweep.report(1).into_results();
    }
}
