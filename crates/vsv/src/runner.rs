//! Experiment driving: warm-up + measurement over workload twins.

use vsv_workloads::{Generator, WorkloadParams};

use crate::error::SimError;
use crate::metrics::MetricsRegistry;
use crate::multicore::MulticoreSystem;
use crate::report::{Comparison, RunResult};
use crate::system::{System, SystemConfig};
use crate::trace::{CaptureSink, EventBuf, TraceEvent, TraceLevel, TraceSink};

/// Simulation-length policy for an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Experiment {
    /// Instructions to warm caches/predictors before measuring.
    pub warmup_instructions: u64,
    /// Instructions in the measured window.
    pub instructions: u64,
}

impl Experiment {
    /// A fast smoke-test scale (CI, unit tests).
    #[must_use]
    pub fn quick() -> Self {
        Experiment {
            warmup_instructions: 20_000,
            instructions: 60_000,
        }
    }

    /// The scale used for the paper-reproduction tables and figures.
    /// (The paper simulates 1 B instructions after a 2 B fast-forward;
    /// our synthetic twins are stationary, so far shorter windows
    /// converge.)
    #[must_use]
    pub fn standard() -> Self {
        Experiment {
            warmup_instructions: 100_000,
            instructions: 300_000,
        }
    }

    /// Runs one workload under one configuration.
    ///
    /// # Panics
    ///
    /// Panics on any [`SimError`]; the fallible form is
    /// [`Experiment::try_run`].
    #[must_use]
    pub fn run(&self, params: &WorkloadParams, cfg: SystemConfig) -> RunResult {
        self.try_run(params, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs one workload under one configuration, returning failures
    /// (invalid configuration, deadlock, exhausted budget, injected
    /// fault) as typed errors instead of panicking. This is the entry
    /// point [`crate::Sweep`] uses, so a bad grid cell becomes a
    /// per-cell failure record rather than a dead sweep.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised during construction, warm-up, or the
    /// measured window.
    pub fn try_run(
        &self,
        params: &WorkloadParams,
        cfg: SystemConfig,
    ) -> Result<RunResult, SimError> {
        if cfg.cores > 1 {
            return self.try_run_multicore(params, cfg, None).map(|(r, _)| r);
        }
        let mut sys = System::try_new(cfg, Generator::new(*params))?;
        sys.set_workload_name(params.name);
        sys.try_warm_up(self.warmup_instructions)?;
        sys.try_run(self.instructions)
    }

    /// [`Experiment::try_run`] plus the measured window's
    /// [`MetricsRegistry`], optionally delivering structured
    /// [`TraceEvent`]s to `sink` during the measured window (the
    /// warm-up is never traced, so traces start at the measurement
    /// anchor). The sink is flushed and dropped before returning.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised during construction, warm-up, or the
    /// measured window.
    pub fn try_run_instrumented(
        &self,
        params: &WorkloadParams,
        cfg: SystemConfig,
        sink: Option<(TraceLevel, Box<dyn TraceSink>, Option<TraceEvent>)>,
    ) -> Result<(RunResult, MetricsRegistry), SimError> {
        if cfg.cores > 1 {
            return self.try_run_multicore(params, cfg, sink);
        }
        let mut sys = System::try_new(cfg, Generator::new(*params))?;
        sys.set_workload_name(params.name);
        sys.try_warm_up(self.warmup_instructions)?;
        if let Some((level, mut sink, header)) = sink {
            if let Some(header) = &header {
                // The header (a `job_start`) precedes the seeding
                // `mode_entered`, so record it before attaching.
                sink.record(header);
            }
            sys.set_event_sink(level, sink);
        }
        let result = sys.try_run(self.instructions);
        drop(sys.take_event_sink());
        let result = result?;
        Ok((result, sys.window_metrics().clone()))
    }

    /// The `cores > 1` arm of [`Experiment::try_run_instrumented`]:
    /// builds a [`MulticoreSystem`], warms up, then runs the measured
    /// window with one in-memory [`CaptureSink`] per core. Afterwards
    /// the captured streams are replayed into the caller's single
    /// sink — the `header` first, then each core's events behind a
    /// [`TraceEvent::CoreStart`] marker — so one JSONL trace carries
    /// the whole chip while single-core byte streams stay unchanged
    /// (they never contain a `CoreStart`).
    fn try_run_multicore(
        &self,
        params: &WorkloadParams,
        cfg: SystemConfig,
        sink: Option<(TraceLevel, Box<dyn TraceSink>, Option<TraceEvent>)>,
    ) -> Result<(RunResult, MetricsRegistry), SimError> {
        let mut chip = MulticoreSystem::try_new(cfg, params)?;
        chip.try_warm_up(self.warmup_instructions)?;
        let mut capture: Option<Vec<EventBuf>> = None;
        if let Some((level, _, _)) = &sink {
            let bufs: Vec<EventBuf> = (0..chip.cores()).map(|_| EventBuf::default()).collect();
            for (sys, buf) in chip.systems_mut().iter_mut().zip(&bufs) {
                sys.set_event_sink(*level, Box::new(CaptureSink::new(buf.clone())));
            }
            capture = Some(bufs);
        }
        let result = chip.try_run_with_metrics(self.instructions);
        for sys in chip.systems_mut() {
            drop(sys.take_event_sink());
        }
        let (result, metrics) = result?;
        if let (Some(bufs), Some((_, mut out, header))) = (capture, sink) {
            if let Some(header) = &header {
                out.record(header);
            }
            for (i, buf) in bufs.into_iter().enumerate() {
                out.record(&TraceEvent::CoreStart { core: i as u64 });
                for event in buf.take() {
                    out.record(&event);
                }
            }
            out.flush();
        }
        Ok((result, metrics))
    }

    /// [`Experiment::try_run`] plus the measured window's
    /// [`MetricsRegistry`], with no trace sink attached.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised during construction, warm-up, or the
    /// measured window.
    pub fn try_run_with_metrics(
        &self,
        params: &WorkloadParams,
        cfg: SystemConfig,
    ) -> Result<(RunResult, MetricsRegistry), SimError> {
        self.try_run_instrumented(params, cfg, None)
    }

    /// Runs one workload with a JSONL trace of the measured window:
    /// returns the result, the window's metrics, and the trace bytes
    /// (one serialized [`TraceEvent`] per line, starting with
    /// `header` if given). The byte stream is deterministic: the same
    /// `params`/`cfg`/`header` produce identical bytes on every run.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] raised during construction, warm-up, or the
    /// measured window. (The trace itself cannot fail: it serializes
    /// plain values into memory.)
    #[cfg(feature = "serde")]
    pub fn try_run_traced(
        &self,
        params: &WorkloadParams,
        cfg: SystemConfig,
        level: TraceLevel,
        header: Option<TraceEvent>,
    ) -> Result<(RunResult, MetricsRegistry, Vec<u8>), SimError> {
        let buf = crate::trace::SharedBuf::default();
        let sink = crate::trace::JsonlSink::new(buf.clone());
        let (result, metrics) =
            self.try_run_instrumented(params, cfg, Some((level, Box::new(sink), header)))?;
        Ok((result, metrics, buf.take()))
    }

    /// Runs a (baseline, variant) pair over the same workload and
    /// compares them with the paper's metrics.
    #[must_use]
    pub fn compare(
        &self,
        params: &WorkloadParams,
        baseline: SystemConfig,
        variant: SystemConfig,
    ) -> (RunResult, RunResult, Comparison) {
        let base = self.run(params, baseline);
        let vsv = self.run(params, variant);
        let cmp = Comparison::of(&base, &vsv);
        (base, vsv, cmp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsv_workloads::twin;

    #[test]
    fn quick_experiment_runs_a_twin() {
        let e = Experiment::quick();
        let r = e.run(
            &twin("gzip").expect("gzip exists"),
            SystemConfig::baseline(),
        );
        assert_eq!(r.workload, "gzip");
        assert!((e.instructions..e.instructions + 8).contains(&r.instructions));
        assert!(r.ipc > 0.2);
    }

    #[test]
    fn try_run_reports_typed_errors() {
        let e = Experiment::quick();
        let p = twin("gzip").expect("gzip exists");
        let mut cfg = SystemConfig::baseline();
        cfg.core.fetch_width = 0;
        let err = e.try_run(&p, cfg).expect_err("invalid config");
        assert_eq!(err.kind(), "invalid-config");
        let cfg = SystemConfig::baseline().with_injected_fault(crate::FaultKind::Deadlock);
        let err = e.try_run(&p, cfg).expect_err("fault armed");
        assert_eq!(err.kind(), "deadlock");
        assert!(e.try_run(&p, SystemConfig::baseline()).is_ok());
    }

    #[test]
    fn compare_produces_paper_metrics() {
        let e = Experiment::quick();
        let p = twin("ammp").expect("ammp exists");
        let (base, vsv, cmp) =
            e.compare(&p, SystemConfig::baseline(), SystemConfig::vsv_with_fsms());
        assert!(base.mpki > 1.0, "ammp twin misses, got {}", base.mpki);
        assert!(vsv.mode.down_transitions > 0);
        assert!(cmp.power_saving_pct > 0.0, "got {}", cmp.power_saving_pct);
    }
}

/// Mean and population standard deviation of a set of comparisons —
/// for robustness checks across workload seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparisonSpread {
    /// Mean of the two percentages.
    pub mean: crate::report::Comparison,
    /// Standard deviation of the power-saving percentage.
    pub power_std: f64,
    /// Standard deviation of the degradation percentage.
    pub perf_std: f64,
}

impl Experiment {
    /// Runs the (baseline, variant) pair over `seeds` reseeded copies
    /// of `params` and reports the spread of the paper metrics. The
    /// twins are deterministic per seed, so this quantifies how much
    /// of a result is the parameter point versus the particular
    /// pseudo-random interleaving.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    #[must_use]
    pub fn compare_across_seeds(
        &self,
        params: &WorkloadParams,
        baseline: SystemConfig,
        variant: SystemConfig,
        seeds: &[u64],
    ) -> ComparisonSpread {
        assert!(!seeds.is_empty(), "need at least one seed");
        let mut comparisons = Vec::with_capacity(seeds.len());
        for &seed in seeds {
            let mut p = *params;
            p.seed = seed;
            let (_, _, cmp) = self.compare(&p, baseline, variant);
            comparisons.push(cmp);
        }
        let mean = crate::report::mean_comparison(&comparisons);
        let n = comparisons.len() as f64;
        let var = |f: &dyn Fn(&crate::report::Comparison) -> f64, mu: f64| {
            comparisons.iter().map(|c| (f(c) - mu).powi(2)).sum::<f64>() / n
        };
        ComparisonSpread {
            mean,
            power_std: var(&|c| c.power_saving_pct, mean.power_saving_pct).sqrt(),
            perf_std: var(&|c| c.perf_degradation_pct, mean.perf_degradation_pct).sqrt(),
        }
    }
}

#[cfg(test)]
mod seed_tests {
    use super::*;
    use vsv_workloads::twin;

    #[test]
    fn seed_spread_is_small_for_a_memory_bound_twin() {
        let e = Experiment {
            warmup_instructions: 15_000,
            instructions: 40_000,
        };
        let p = twin("ammp").expect("ammp exists");
        let spread = e.compare_across_seeds(
            &p,
            SystemConfig::baseline(),
            SystemConfig::vsv_with_fsms(),
            &[1, 2, 3],
        );
        assert!(spread.mean.power_saving_pct > 5.0);
        // The effect is a property of the parameter point, not of one
        // lucky seed: the spread is small relative to the mean.
        assert!(
            spread.power_std < spread.mean.power_saving_pct,
            "std {} vs mean {}",
            spread.power_std,
            spread.mean.power_saving_pct
        );
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_list_panics() {
        let e = Experiment::quick();
        let p = twin("gzip").expect("gzip exists");
        let _ = e.compare_across_seeds(
            &p,
            SystemConfig::baseline(),
            SystemConfig::vsv_with_fsms(),
            &[],
        );
    }
}
