//! Multi-process sweep campaigns: sharding, shard execution, and the
//! streaming O(1) merge.
//!
//! A [`crate::Sweep`] is bounded by one process: one machine's cores,
//! one heap holding every [`JobRecord`]. A [`Campaign`] turns the
//! same grid into a fleet-sized object under a trivial
//! `shard-id/total-shards` contract:
//!
//! * **plan** — the grid is partitioned into `K` shards *interleaved
//!   by grid index*: global cell `g` belongs to shard `g % K`, and
//!   shard `s`'s local cell `j` is global cell `g = s + j·K`. The
//!   mapping is a bijection fixed by `(s, K)` alone, so any process
//!   anywhere can compute its share without coordination, and the
//!   interleaving load-balances params-major grids (consecutive
//!   cells — the same workload under different configs — land on
//!   different shards).
//! * **run** — each shard executes as an *ordinary* checkpointed
//!   sweep over its sub-grid ([`Campaign::run_shard`]), writing the
//!   schema-v4 JSONL checkpoint whose header stamps the shard
//!   position; killed shards resume through the existing
//!   checkpoint/resume path. A completed shard file is *finalized*
//!   into local grid order (records are appended in completion
//!   order while running), which is what makes the K-way merge a
//!   single forward pass.
//! * **merge** — [`Campaign::merge_to_writer`] stream-reads the `K`
//!   files in grid order (cell `g` comes from reader `g % K`),
//!   validates each shard header and each record's workload and
//!   config digest against the planned grid, rewrites the local job
//!   index to the global one, folds metrics through the same
//!   [`ReportAggregator`] the in-process sweep uses, and emits a
//!   [`SweepReport`] JSON document **byte-identical** (wall-clock
//!   fields aside) to `serde_json::to_string_pretty` of the
//!   single-process [`crate::Sweep::report`]. Memory is O(1) in
//!   cells: `K` buffered readers plus one in-flight record plus the
//!   running aggregate — never the grid's records.
//!
//! Byte fidelity rests on two properties pinned elsewhere: the JSON
//! codec round-trips every scalar exactly (integers stay integers,
//! floats are shortest-round-trip — `vendor/serde_json`), and struct
//! fields serialize in declaration order, so re-serializing a parsed
//! [`JobRecord`] reproduces the bytes the single-process writer
//! would have produced. `tests/campaign_equivalence.rs` pins the
//! end-to-end guarantee.
//!
//! Top-level `wall_ns` is the one deliberate divergence: a merged
//! report has no single-process wall time, so it carries the **sum**
//! of the wall clocks stamped into the finalized shard headers —
//! each itself the sum of that shard's per-cell wall clocks, i.e.
//! total compute spent, not elapsed time (the merge's own wall time
//! lives in [`MergeSummary::wall_ns`]). Summing the cached per-cell
//! clocks keeps shard finalization idempotent: resuming a finished
//! shard rewrites byte-identical headers. Comparisons zero
//! wall-clock fields anyway — the determinism contract in
//! `docs/observability.md`.

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::sweep::{
    append_line, config_digest, grid_summary_over, validate_header_against, CheckpointError,
    CheckpointHeader, JobRecord, ReportAggregator, Sweep, SweepReport, CHECKPOINT_VERSION,
};

/// A sweep grid partitioned into `K` interleaved shards.
///
/// ```
/// use vsv::{Campaign, Experiment, Sweep, SystemConfig};
/// use vsv_workloads::twin;
///
/// let twins = [twin("gzip").unwrap(), twin("ammp").unwrap(), twin("mcf").unwrap()];
/// let configs = [SystemConfig::baseline(), SystemConfig::vsv_with_fsms()];
/// let sweep = Sweep::over_grid(
///     Experiment { warmup_instructions: 500, instructions: 2_000 },
///     &twins,
///     &configs,
/// );
/// // 6 cells over 4 shards: interleaved, so 4 does not have to
/// // divide 6 — shards 0 and 1 get 2 cells, shards 2 and 3 get 1.
/// let campaign = Campaign::new(sweep, 4).unwrap();
/// assert_eq!(campaign.shard_cells(0).collect::<Vec<_>>(), [0, 4]);
/// assert_eq!(campaign.shard_cells(3).collect::<Vec<_>>(), [3]);
/// assert_eq!((0..4).map(|s| campaign.shard_len(s)).sum::<usize>(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    sweep: Sweep,
    shards: usize,
}

/// Options for [`Campaign::merge_to_writer`].
#[derive(Debug, Clone)]
pub struct MergeOptions {
    /// Worker count to stamp into the merged report's `workers`
    /// field. Clamped exactly like [`crate::Sweep::report`] clamps
    /// its argument, so passing the same value the single-process
    /// comparison run used reproduces its bytes.
    pub workers: usize,
}

/// What a merge did: the aggregate counts a caller needs for exit
/// codes and logging without re-parsing the merged document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeSummary {
    /// Cells merged (the full grid).
    pub cells: usize,
    /// Cells whose outcome was [`crate::JobOutcome::Failed`].
    pub failed: usize,
    /// Shard files consumed.
    pub shards: usize,
    /// Host wall-clock nanoseconds the merge took. Not deterministic.
    pub wall_ns: u64,
}

/// Why a campaign operation failed.
#[derive(Debug)]
pub enum CampaignError {
    /// A campaign needs at least one shard.
    InvalidShardCount {
        /// The rejected count.
        shards: usize,
    },
    /// A shard index at or beyond the shard count.
    ShardOutOfRange {
        /// The rejected index.
        shard: usize,
        /// The campaign's shard count.
        shards: usize,
    },
    /// Merge was handed the wrong number of input files.
    InputCount {
        /// The campaign's shard count.
        expected: usize,
        /// Files supplied.
        found: usize,
    },
    /// A shard run or header validation failed in the checkpoint
    /// layer.
    Checkpoint(CheckpointError),
    /// Filesystem failure.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        error: String,
    },
    /// A shard file line failed to parse.
    ShardCorrupt {
        /// The shard whose file is corrupt.
        shard: usize,
        /// 1-based line number.
        line: usize,
        /// Parse error.
        error: String,
    },
    /// A shard file ended before yielding its share of the grid.
    MissingCell {
        /// The global grid cell that has no record.
        cell: usize,
        /// The shard that should have held it.
        shard: usize,
    },
    /// A record does not belong at its position: wrong local index
    /// (an unfinalized, completion-ordered file), wrong workload, or
    /// wrong config digest.
    RecordMismatch {
        /// The global grid cell being merged.
        cell: usize,
        /// The shard the record came from.
        shard: usize,
        /// What differed.
        reason: String,
    },
    /// A shard file holds more records than its share of the grid.
    TrailingData {
        /// The shard with extra records.
        shard: usize,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::InvalidShardCount { shards } => {
                write!(f, "campaign shard count must be >= 1, got {shards}")
            }
            CampaignError::ShardOutOfRange { shard, shards } => {
                write!(f, "shard {shard} outside campaign of {shards} shard(s)")
            }
            CampaignError::InputCount { expected, found } => write!(
                f,
                "campaign merge needs exactly {expected} shard file(s), got {found}"
            ),
            CampaignError::Checkpoint(e) => write!(f, "{e}"),
            CampaignError::Io { path, error } => {
                write!(f, "campaign io error at {path}: {error}")
            }
            CampaignError::ShardCorrupt { shard, line, error } => {
                write!(f, "shard {shard} file corrupt at line {line}: {error}")
            }
            CampaignError::MissingCell { cell, shard } => write!(
                f,
                "shard {shard} file ended before grid cell {cell} (incomplete shard run?)"
            ),
            CampaignError::RecordMismatch {
                cell,
                shard,
                reason,
            } => write!(
                f,
                "shard {shard} record does not match grid cell {cell}: {reason}"
            ),
            CampaignError::TrailingData { shard } => write!(
                f,
                "shard {shard} file holds records beyond its share of the grid"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<CheckpointError> for CampaignError {
    fn from(e: CheckpointError) -> Self {
        CampaignError::Checkpoint(e)
    }
}

impl Campaign {
    /// A campaign over `sweep`'s grid, partitioned into `shards`
    /// interleaved shards. `shards` may exceed the cell count — the
    /// surplus shards are simply empty.
    ///
    /// # Errors
    ///
    /// [`CampaignError::InvalidShardCount`] if `shards` is zero.
    pub fn new(sweep: Sweep, shards: usize) -> Result<Self, CampaignError> {
        if shards == 0 {
            return Err(CampaignError::InvalidShardCount { shards });
        }
        Ok(Campaign { sweep, shards })
    }

    /// The underlying full-grid sweep.
    #[must_use]
    pub fn sweep(&self) -> &Sweep {
        &self.sweep
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The global grid indices owned by `shard`: `shard`,
    /// `shard + K`, `shard + 2K`, …
    pub fn shard_cells(&self, shard: usize) -> impl Iterator<Item = usize> + '_ {
        (shard..self.sweep.len()).step_by(self.shards)
    }

    /// Number of cells `shard` owns.
    #[must_use]
    pub fn shard_len(&self, shard: usize) -> usize {
        if shard >= self.sweep.len() {
            0
        } else {
            (self.sweep.len() - shard).div_ceil(self.shards)
        }
    }

    fn check_shard(&self, shard: usize) -> Result<(), CampaignError> {
        if shard >= self.shards {
            return Err(CampaignError::ShardOutOfRange {
                shard,
                shards: self.shards,
            });
        }
        Ok(())
    }

    /// The ordinary [`Sweep`] over `shard`'s cells, in local grid
    /// order (local cell `j` is global cell `shard + j·K`).
    ///
    /// # Errors
    ///
    /// [`CampaignError::ShardOutOfRange`] if `shard >= shards`.
    pub fn shard_sweep(&self, shard: usize) -> Result<Sweep, CampaignError> {
        self.check_shard(shard)?;
        let jobs = self
            .sweep
            .jobs()
            .iter()
            .skip(shard)
            .step_by(self.shards)
            .copied()
            .collect();
        Ok(Sweep::new(self.sweep.experiment, jobs))
    }

    /// Runs (or resumes) one shard as a checkpointed sweep writing to
    /// `path`, then finalizes the file into local grid order so the
    /// merge can consume it in one forward pass.
    ///
    /// With `fresh` false (the default campaign behavior), an
    /// existing file at `path` is resumed through the standard
    /// checkpoint validation — a finalized complete file is a valid
    /// checkpoint, so re-running a finished shard is an idempotent
    /// no-op (cells are cached, the file is re-finalized). With
    /// `fresh` true the file is recreated and every cell re-runs.
    ///
    /// # Errors
    ///
    /// [`CampaignError::ShardOutOfRange`], or any
    /// [`CampaignError::Checkpoint`]/[`CampaignError::Io`] from the
    /// run or the finalize rewrite.
    pub fn run_shard(
        &self,
        shard: usize,
        workers: usize,
        path: &Path,
        fresh: bool,
    ) -> Result<SweepReport, CampaignError> {
        let sub = self.shard_sweep(shard)?;
        let report = if fresh {
            sub.report_with_checkpoint_sharded(workers, path, shard, self.shards)?
        } else {
            sub.resume_sharded(workers, path, shard, self.shards)?
        };
        // Stamp the sum of the per-cell wall clocks (cached in the
        // checkpoint), not the run's elapsed time: resuming a
        // finished shard must rewrite identical bytes.
        let wall_ns = report
            .records
            .iter()
            .fold(0u64, |acc, r| acc.saturating_add(r.wall_ns));
        self.write_shard_file(shard, &report.records, path, wall_ns)?;
        Ok(report)
    }

    /// Writes a complete, finalized shard file: the v5 header (with
    /// `wall_ns` stamped into it — normally the sum of the shard's
    /// per-cell wall clocks, which the merge sums into the merged
    /// report's top-level `wall_ns`) followed by one compact JSONL
    /// [`JobRecord`] line
    /// per cell in local grid order, atomically (written to
    /// `<path>.tmp`, then renamed). Each record is validated against
    /// the planned grid before writing — this is also how the memory
    /// benchmark synthesizes large shard files without simulating
    /// every cell.
    ///
    /// # Errors
    ///
    /// [`CampaignError::RecordMismatch`]/[`CampaignError::MissingCell`]/
    /// [`CampaignError::TrailingData`] if `records` is not exactly
    /// the shard's share of the grid, or [`CampaignError::Io`].
    pub fn write_shard_file(
        &self,
        shard: usize,
        records: &[JobRecord],
        path: &Path,
        wall_ns: u64,
    ) -> Result<(), CampaignError> {
        self.check_shard(shard)?;
        let expected = self.shard_len(shard);
        if records.len() < expected {
            return Err(CampaignError::MissingCell {
                cell: shard + records.len() * self.shards,
                shard,
            });
        }
        if records.len() > expected {
            return Err(CampaignError::TrailingData { shard });
        }
        for (j, record) in records.iter().enumerate() {
            let cell = shard + j * self.shards;
            self.validate_shard_record(record, j, cell, shard)?;
        }
        let tmp = path.with_file_name(match path.file_name().and_then(|n| n.to_str()) {
            Some(name) => format!("{name}.tmp"),
            None => "shard.tmp".to_owned(),
        });
        let file = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, &e))?;
        let mut writer = std::io::BufWriter::new(file);
        let mut header = self.shard_header(shard);
        header.wall_ns = wall_ns;
        append_line(&mut writer, &header).map_err(|e| io_string_err(&tmp, &e))?;
        for record in records {
            append_line(&mut writer, record).map_err(|e| io_string_err(&tmp, &e))?;
        }
        drop(writer);
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, &e))?;
        Ok(())
    }

    /// The v5 checkpoint header `shard`'s file must carry — computed
    /// from a strided *view* of the full grid, identical to what
    /// [`Campaign::shard_sweep`]'s own checkpoint run stamps, but
    /// without cloning the shard's jobs (`wall_ns` is left `0`;
    /// validation ignores it and the finalize rewrite stamps the real
    /// value). The merge validates `K` of these, so borrowing keeps
    /// merge memory free of grid copies.
    fn shard_header(&self, shard: usize) -> CheckpointHeader {
        CheckpointHeader {
            version: CHECKPOINT_VERSION,
            jobs: self.shard_len(shard),
            warmup_instructions: self.sweep.experiment.warmup_instructions,
            instructions: self.sweep.experiment.instructions,
            shard,
            shards: self.shards,
            wall_ns: 0,
            grid: grid_summary_over(
                self.sweep
                    .jobs()
                    .iter()
                    .skip(shard)
                    .step_by(self.shards.max(1)),
            ),
        }
    }

    /// Validates that `record` (with local index `local`) belongs at
    /// global grid cell `cell`.
    fn validate_shard_record(
        &self,
        record: &JobRecord,
        local: usize,
        cell: usize,
        shard: usize,
    ) -> Result<(), CampaignError> {
        let mismatch = |reason: String| CampaignError::RecordMismatch {
            cell,
            shard,
            reason,
        };
        if record.job != local {
            return Err(mismatch(format!(
                "local index {} where {local} belongs (file not in grid order — \
                 finalize incomplete?)",
                record.job
            )));
        }
        let job = &self.sweep.jobs()[cell];
        if record.workload != job.params.name {
            return Err(mismatch(format!(
                "workload {:?}, grid has {:?}",
                record.workload, job.params.name
            )));
        }
        let expected = config_digest(&job.config);
        if record.config_digest != expected {
            return Err(mismatch(format!(
                "config digest {}, grid has {expected}",
                record.config_digest
            )));
        }
        Ok(())
    }

    /// Stream-merges the `K` finalized shard files (`inputs[s]` is
    /// shard `s`'s file) into the full-grid [`SweepReport`] JSON
    /// document, written to `out` as it is produced.
    ///
    /// The output is byte-identical to
    /// `serde_json::to_string_pretty(&report)` of the equivalent
    /// single-process [`crate::Sweep::report`] run, except the
    /// top-level `wall_ns` (here the sum of the shard headers'
    /// stamped wall clocks — total compute, not elapsed time) and the
    /// per-record `wall_ns` values (each shard's real timings — zero
    /// them for comparison, per the determinism contract). Memory is
    /// O(1) in cells: `K` buffered readers, one in-flight record, one
    /// running [`ReportAggregator`].
    ///
    /// # Errors
    ///
    /// Any [`CampaignError`]: wrong input count, header/record
    /// validation failures, corrupt/short/overlong files, or I/O.
    pub fn merge_to_writer<W: Write>(
        &self,
        inputs: &[PathBuf],
        opts: &MergeOptions,
        out: &mut W,
    ) -> Result<MergeSummary, CampaignError> {
        let start = Instant::now();
        if inputs.len() != self.shards {
            return Err(CampaignError::InputCount {
                expected: self.shards,
                found: inputs.len(),
            });
        }
        let mut readers = Vec::with_capacity(self.shards);
        let mut total_wall_ns: u64 = 0;
        for (shard, path) in inputs.iter().enumerate() {
            let mut reader = ShardReader::open(shard, path)?;
            let line = reader.next_line()?.ok_or(CampaignError::ShardCorrupt {
                shard,
                line: 0,
                error: "empty file (missing header line)".to_owned(),
            })?;
            let header: CheckpointHeader =
                serde_json::from_str(&line).map_err(|e| CampaignError::ShardCorrupt {
                    shard,
                    line: reader.lineno,
                    error: e.to_string(),
                })?;
            validate_header_against(&self.shard_header(shard), &header)?;
            total_wall_ns = total_wall_ns.saturating_add(header.wall_ns);
            readers.push(reader);
        }
        let cells = self.sweep.len();
        // Mirrors the `run_grid` clamp so the stamped field matches a
        // single-process run handed the same worker count.
        let workers = opts.workers.max(1).min(cells.max(1));
        let mut aggregate = ReportAggregator::new();
        write_fmt(out, format_args!("{{\n  \"jobs\": {cells},"))?;
        write_fmt(out, format_args!("\n  \"workers\": {workers},"))?;
        write_fmt(out, format_args!("\n  \"wall_ns\": {total_wall_ns},"))?;
        write_fmt(out, format_args!("\n  \"records\": ["))?;
        for cell in 0..cells {
            let shard = cell % self.shards;
            let line = readers[shard]
                .next_line()?
                .ok_or(CampaignError::MissingCell { cell, shard })?;
            let mut record: JobRecord =
                serde_json::from_str(&line).map_err(|e| CampaignError::ShardCorrupt {
                    shard,
                    line: readers[shard].lineno,
                    error: e.to_string(),
                })?;
            self.validate_shard_record(&record, cell / self.shards, cell, shard)?;
            record.job = cell;
            aggregate.fold(&record);
            let pretty =
                serde_json::to_string_pretty(&record).map_err(|e| CampaignError::ShardCorrupt {
                    shard,
                    line: readers[shard].lineno,
                    error: e.to_string(),
                })?;
            write_fmt(
                out,
                format_args!("{}\n    ", if cell == 0 { "" } else { "," }),
            )?;
            write_block(out, &pretty, "    ")?;
        }
        for reader in &mut readers {
            if reader.next_line()?.is_some() {
                return Err(CampaignError::TrailingData {
                    shard: reader.shard,
                });
            }
        }
        if cells > 0 {
            write_fmt(out, format_args!("\n  "))?;
        }
        write_fmt(out, format_args!("],\n  \"metrics\": "))?;
        let metrics_pretty =
            serde_json::to_string_pretty(aggregate.metrics()).map_err(|e| CampaignError::Io {
                path: "<merge output>".to_owned(),
                error: e.to_string(),
            })?;
        write_block(out, &metrics_pretty, "  ")?;
        write_fmt(out, format_args!("\n}}"))?;
        Ok(MergeSummary {
            cells,
            failed: aggregate.failed(),
            shards: self.shards,
            wall_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        })
    }

    /// [`Campaign::merge_to_writer`] into a file (buffered, flushed).
    ///
    /// # Errors
    ///
    /// See [`Campaign::merge_to_writer`].
    pub fn merge_files(
        &self,
        inputs: &[PathBuf],
        opts: &MergeOptions,
        out_path: &Path,
    ) -> Result<MergeSummary, CampaignError> {
        let file = std::fs::File::create(out_path).map_err(|e| io_err(out_path, &e))?;
        let mut writer = std::io::BufWriter::new(file);
        let summary = self.merge_to_writer(inputs, opts, &mut writer)?;
        writer.flush().map_err(|e| io_err(out_path, &e))?;
        Ok(summary)
    }

    /// [`Campaign::merge_to_writer`] into a `String` — the
    /// convenience the equivalence tests compare byte-for-byte
    /// against `serde_json::to_string_pretty` of the single-process
    /// report.
    ///
    /// # Errors
    ///
    /// See [`Campaign::merge_to_writer`].
    pub fn merge_to_string(
        &self,
        inputs: &[PathBuf],
        opts: &MergeOptions,
    ) -> Result<(String, MergeSummary), CampaignError> {
        let mut buf = Vec::new();
        let summary = self.merge_to_writer(inputs, opts, &mut buf)?;
        let text = String::from_utf8(buf).map_err(|e| CampaignError::Io {
            path: "<merge output>".to_owned(),
            error: e.to_string(),
        })?;
        Ok((text, summary))
    }

    /// The *buffered* merge: materializes the full merged
    /// [`SweepReport`] in memory by parsing the streamed document.
    /// O(cells) memory by construction — this is the reference
    /// implementation the memory benchmark contrasts with the
    /// streaming path, and what a consumer that needs the typed
    /// report does.
    ///
    /// # Errors
    ///
    /// See [`Campaign::merge_to_writer`].
    pub fn merge_report(
        &self,
        inputs: &[PathBuf],
        opts: &MergeOptions,
    ) -> Result<(SweepReport, MergeSummary), CampaignError> {
        let (text, summary) = self.merge_to_string(inputs, opts)?;
        let report: SweepReport = serde_json::from_str(&text).map_err(|e| CampaignError::Io {
            path: "<merge output>".to_owned(),
            error: e.to_string(),
        })?;
        Ok((report, summary))
    }
}

/// One shard file being consumed line-at-a-time.
struct ShardReader {
    shard: usize,
    path: String,
    reader: std::io::BufReader<std::fs::File>,
    lineno: usize,
}

impl ShardReader {
    fn open(shard: usize, path: &Path) -> Result<Self, CampaignError> {
        let file = std::fs::File::open(path).map_err(|e| io_err(path, &e))?;
        Ok(ShardReader {
            shard,
            path: path.display().to_string(),
            reader: std::io::BufReader::new(file),
            lineno: 0,
        })
    }

    /// The next non-empty line, or `None` at EOF.
    fn next_line(&mut self) -> Result<Option<String>, CampaignError> {
        loop {
            let mut line = String::new();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| CampaignError::Io {
                    path: self.path.clone(),
                    error: e.to_string(),
                })?;
            if n == 0 {
                return Ok(None);
            }
            self.lineno += 1;
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if !trimmed.is_empty() {
                line.truncate(trimmed.len());
                return Ok(Some(line));
            }
        }
    }
}

/// Writes a pretty-printed sub-document produced at depth 0,
/// re-indented to its embedding depth: every line after the first
/// gains `indent`. JSON strings cannot contain raw newlines, so
/// every `\n` in `pretty` is structural and the rewrite is exact.
fn write_block<W: Write>(out: &mut W, pretty: &str, indent: &str) -> Result<(), CampaignError> {
    for (i, segment) in pretty.split('\n').enumerate() {
        if i > 0 {
            write_bytes(out, b"\n")?;
            write_bytes(out, indent.as_bytes())?;
        }
        write_bytes(out, segment.as_bytes())?;
    }
    Ok(())
}

fn write_bytes<W: Write>(out: &mut W, bytes: &[u8]) -> Result<(), CampaignError> {
    out.write_all(bytes).map_err(|e| CampaignError::Io {
        path: "<merge output>".to_owned(),
        error: e.to_string(),
    })
}

fn write_fmt<W: Write>(out: &mut W, args: std::fmt::Arguments<'_>) -> Result<(), CampaignError> {
    out.write_fmt(args).map_err(|e| CampaignError::Io {
        path: "<merge output>".to_owned(),
        error: e.to_string(),
    })
}

fn io_err(path: &Path, e: &std::io::Error) -> CampaignError {
    CampaignError::Io {
        path: path.display().to_string(),
        error: e.to_string(),
    }
}

fn io_string_err(path: &Path, e: &str) -> CampaignError {
    CampaignError::Io {
        path: path.display().to_string(),
        error: e.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Experiment;
    use crate::system::SystemConfig;
    use vsv_workloads::twin;

    fn tiny_sweep() -> Sweep {
        let twins = [twin("gzip").expect("gzip"), twin("ammp").expect("ammp")];
        let configs = [SystemConfig::baseline(), SystemConfig::vsv_with_fsms()];
        Sweep::over_grid(
            Experiment {
                warmup_instructions: 500,
                instructions: 2_000,
            },
            &twins,
            &configs,
        )
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("vsv-campaign-unit-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn zero_shards_is_rejected() {
        match Campaign::new(tiny_sweep(), 0) {
            Err(CampaignError::InvalidShardCount { shards: 0 }) => {}
            other => panic!("expected InvalidShardCount, got {other:?}"),
        }
    }

    #[test]
    fn shard_partition_is_an_interleaved_bijection() {
        let campaign = Campaign::new(tiny_sweep(), 3).expect("3 shards");
        let mut seen = vec![false; campaign.sweep().len()];
        for s in 0..3 {
            let sub = campaign.shard_sweep(s).expect("in range");
            assert_eq!(sub.len(), campaign.shard_len(s));
            for (j, cell) in campaign.shard_cells(s).enumerate() {
                assert_eq!(cell, s + j * 3);
                assert!(!seen[cell], "cell {cell} assigned twice");
                seen[cell] = true;
                // The shard's local job is the global grid's job.
                assert_eq!(
                    config_digest(&sub.jobs()[j].config),
                    config_digest(&campaign.sweep().jobs()[cell].config),
                );
            }
        }
        assert!(seen.iter().all(|&s| s), "every cell assigned");
    }

    #[test]
    fn shards_may_exceed_cells() {
        let campaign = Campaign::new(tiny_sweep(), 9).expect("9 shards over 4 cells");
        assert_eq!(campaign.shard_len(3), 1);
        assert_eq!(campaign.shard_len(4), 0);
        assert_eq!((0..9).map(|s| campaign.shard_len(s)).sum::<usize>(), 4);
        let empty = campaign.shard_sweep(7).expect("in range");
        assert!(empty.is_empty());
    }

    #[test]
    fn out_of_range_shard_is_rejected() {
        let campaign = Campaign::new(tiny_sweep(), 2).expect("2 shards");
        match campaign.shard_sweep(2) {
            Err(CampaignError::ShardOutOfRange {
                shard: 2,
                shards: 2,
            }) => {}
            other => panic!("expected ShardOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn merge_rejects_wrong_input_count() {
        let campaign = Campaign::new(tiny_sweep(), 2).expect("2 shards");
        let result =
            campaign.merge_to_string(&[temp_path("only-one.jsonl")], &MergeOptions { workers: 1 });
        match result {
            Err(CampaignError::InputCount {
                expected: 2,
                found: 1,
            }) => {}
            other => panic!("expected InputCount, got {other:?}"),
        }
    }
}
