//! Pluggable DVS decision policies behind the [`DvsPolicy`] trait.
//!
//! The paper's contribution is one *point* in the DVS-policy design
//! space: issue-rate-monitoring dual FSMs (§4.2/§4.4). This module
//! makes that space explorable. A policy observes per-cycle evidence —
//! L2 miss signals, issue counts, the outstanding-miss count, the
//! current [`Mode`] — and emits [`Decision`]s; the
//! [`crate::VsvController`] keeps sole ownership of the circuit-level
//! transition timeline (2 ns control + 2 ns clock-tree distribution,
//! 12 ns supply ramps, the 66 nJ per-ramp charge), so every policy
//! pays honest transition costs.
//!
//! Five policies are built in, selectable by [`PolicySpec`]:
//!
//! | name             | down on                         | up on |
//! |------------------|---------------------------------|-------|
//! | `dual-fsm`       | zero-issue run after a miss     | issuing run / sole return |
//! | `always-high`    | never                           | — |
//! | `always-low`     | immediately, unconditionally    | never |
//! | `immediate-down` | every detected demand miss      | first return |
//! | `oracle-down`    | miss whose stall provably       | last return |
//! |                  | outlasts the round trip         |       |
//!
//! `dual-fsm` is the default and is bit-identical to the pre-policy
//! controller (`tests/policy_equivalence.rs` pins this).
//! `always-high` is the no-DVS control, `always-low` the static
//! low-voltage floor, `immediate-down` the naive scheme the FSMs
//! exist to beat, and `oracle-down` an upper bound that reads the
//! simulator's scheduled miss-return times — knowledge no hardware
//! policy has.

use vsv_mem::VsvSignal;

use crate::controller::Mode;
use crate::fsm::{DownFsm, DownPolicy, UpFsm, UpPolicy};

/// What a policy wants the controller to do right now. Steady-mode
/// decisions are applied immediately ([`Decision::RampDown`] /
/// [`Decision::RampUp`] move one ladder step, [`Decision::Level`]
/// retargets an absolute level and the controller sequences the
/// steps); a non-[`Decision::Hold`] decision arriving mid-transition
/// only *retargets* — the in-flight step completes, then the
/// controller chains toward the new target (reversal mid-ramp).
/// Policies need not track transition phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Decision {
    /// Stay on the current trajectory.
    #[default]
    Hold,
    /// Step one ladder level down (the full high→low transition on
    /// the paper's 2-rail ladder; Figure 2 timeline).
    RampDown,
    /// Return to level 0 (the low→high transition on the 2-rail
    /// ladder; Figure 3 timeline).
    RampUp,
    /// Target an absolute ladder level (0 = VDDH; clamped to the
    /// ladder bottom). `Level(0)` is equivalent to
    /// [`Decision::RampUp`]; on a 2-rail ladder `Level(1)` is
    /// equivalent to [`Decision::RampDown`].
    Level(u8),
}

/// Trigger/decline counters every policy reports, mirroring the dual
/// FSMs' bookkeeping so [`crate::RunResult`] keeps its shape across
/// policies.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Ramp-down decisions emitted.
    pub down_triggers: u64,
    /// Ramp-down opportunities examined and declined (for `dual-fsm`:
    /// monitoring windows that expired on a busy pipeline).
    pub down_expiries: u64,
    /// Ramp-up decisions emitted.
    pub up_triggers: u64,
    /// Ramp-up opportunities examined and declined (for `dual-fsm`:
    /// windows that expired on an idle pipeline).
    pub up_expiries: u64,
    /// Times `error-backoff` engaged (retry rate crossed its
    /// threshold); 0 for every other policy.
    pub backoff_engagements: u64,
    /// Ramp-down decisions `error-backoff` vetoed while engaged; 0
    /// for every other policy.
    pub backoff_vetoes: u64,
}

/// A DVS decision policy.
///
/// The controller drives a policy with, per nanosecond: one
/// [`DvsPolicy::on_signal`] call per hierarchy signal, one
/// [`DvsPolicy::on_tick`] while in a steady mode, and — on pipeline
/// clock edges — one [`DvsPolicy::on_cycle`] with the cycle's issue
/// count. [`DvsPolicy::on_mode_entered`] fires when a transition
/// completes. Policies must be deterministic: decisions may depend
/// only on the evidence fed through these hooks.
pub trait DvsPolicy: std::fmt::Debug + Send {
    /// Stable policy name (the `--policy` spelling).
    fn name(&self) -> &'static str;

    /// Consumes one L2 signal from the hierarchy. `at` inside the
    /// signal is the decision time the controller will apply any
    /// returned transition at.
    fn on_signal(&mut self, sig: &VsvSignal, mode: Mode) -> Decision;

    /// One nanosecond in a steady mode ([`Mode::High`] or
    /// [`Mode::Low`]; the controller owns transition phases).
    fn on_tick(&mut self, now: u64, outstanding_demand: usize, mode: Mode) -> Decision;

    /// The issue count of the pipeline cycle that just ran (edge
    /// ticks only, steady modes only).
    fn on_cycle(&mut self, issued: u32, mode: Mode) -> Decision;

    /// A transition completed and `mode` (always a steady mode) was
    /// entered at time `now` with `outstanding_demand` misses still
    /// in flight.
    fn on_mode_entered(&mut self, mode: Mode, now: u64, outstanding_demand: usize) -> Decision;

    /// A transition is starting (the controller accepted a decision).
    /// Policies drop any armed monitors here — evidence gathered in
    /// the old mode does not carry across a transition.
    fn on_transition_start(&mut self) {}

    /// A low-voltage read error triggered a retry at time `now` (one
    /// call per retry the hierarchy issues). Error-aware policies
    /// ([`ErrorBackoffPolicy`]) monitor the rate here; every other
    /// policy keeps the default no-op.
    fn on_read_retry(&mut self, now: u64) -> Decision {
        let _ = now;
        Decision::Hold
    }

    /// The supply settled at ladder `level` (0 = VDDH). Fires on every
    /// completed ramp step, just before the accompanying
    /// [`DvsPolicy::on_mode_entered`]. Ladder-aware policies track
    /// their position here; mode-only policies keep the default no-op.
    fn on_level(&mut self, level: usize) {
        let _ = level;
    }

    /// Whether a window of zero-issue, signal-free nanoseconds in
    /// `mode` may be batch-applied without consulting the policy per
    /// nanosecond — true exactly when every [`DvsPolicy::on_tick`] /
    /// [`DvsPolicy::on_cycle`] pair in such a window would return
    /// [`Decision::Hold`] and mutate nothing beyond what
    /// [`DvsPolicy::skip_idle_cycles`] batch-applies. Powers the
    /// quiescent-stall fast-forward; `tests/policy_equivalence.rs`
    /// cross-checks it against the stepped path for every built-in.
    fn idle_skip_allowed(&self, mode: Mode, outstanding_demand: usize) -> bool;

    /// Batch-applies `edges` idle (zero-issue) pipeline cycles in
    /// `mode` — the bulk counterpart of that many
    /// `on_cycle(0, mode)` calls (the caller has checked
    /// [`DvsPolicy::idle_skip_allowed`]).
    fn skip_idle_cycles(&mut self, edges: u64, mode: Mode) {
        let _ = (edges, mode);
    }

    /// Cumulative trigger/decline counters.
    fn stats(&self) -> PolicyStats;

    /// Whether the policy's (down, up) evidence monitors are currently
    /// armed — i.e. mid-window, gathering evidence toward a trigger.
    /// Structured tracing diffs this to emit
    /// [`crate::trace::TraceEvent::FsmArmed`]; policies without an
    /// arm/fire shape keep the default `(false, false)`.
    fn armed(&self) -> (bool, bool) {
        (false, false)
    }

    /// Clones the policy with its current state (the controller is
    /// [`Clone`]).
    fn clone_box(&self) -> Box<dyn DvsPolicy>;
}

impl Clone for Box<dyn DvsPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Selector for the built-in policies — the [`Copy`] handle that
/// travels through [`crate::SystemConfig`], sweep grids, and report
/// schemas. [`crate::VsvConfig::policy`] holds one;
/// [`PolicySpec::build`] instantiates the live policy at controller
/// construction.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolicySpec {
    /// The paper's dual issue-rate-monitoring FSMs (the default),
    /// parameterized by [`crate::VsvConfig::down`] /
    /// [`crate::VsvConfig::up`].
    #[default]
    DualFsm,
    /// Never leave [`Mode::High`]: the no-DVS baseline with the
    /// controller enabled (pins the policy layer's overhead to zero).
    AlwaysHigh,
    /// Ramp down immediately and never come back up: the static
    /// low-voltage floor.
    AlwaysLow,
    /// Ramp down on every detected demand miss, up on the first
    /// return — the paper's "without FSMs" scheme as a named policy.
    ImmediateDown,
    /// Ramp down only when the simulator's scheduled return time
    /// proves the stall outlasts the round-trip transition cost; ramp
    /// up when the last miss returns. An upper bound on achievable
    /// savings, not an implementable policy.
    OracleDown,
    /// The dual-FSM logic generalized to the N-level ladder: step
    /// down one level per expired-evidence window while a demand miss
    /// is outstanding, return to VDDH on miss-return pressure. On the
    /// 2-rail ladder this degenerates to [`PolicySpec::DualFsm`]-like
    /// behavior; at depth 1 it can never leave VDDH.
    LadderFsm,
    /// Error-aware graceful degradation: wraps the FSM policy for the
    /// configured ladder (`dual-fsm` on 2 rails, `ladder-fsm` when
    /// deeper), monitors the windowed read-retry rate, and — when the
    /// rate crosses its threshold — climbs straight to VDDH and
    /// vetoes further dives until a retry-free cool-down re-arms it.
    ErrorBackoff,
}

impl PolicySpec {
    /// Every built-in, in `--policy` listing order.
    pub const ALL: [PolicySpec; 7] = [
        PolicySpec::DualFsm,
        PolicySpec::AlwaysHigh,
        PolicySpec::AlwaysLow,
        PolicySpec::ImmediateDown,
        PolicySpec::OracleDown,
        PolicySpec::LadderFsm,
        PolicySpec::ErrorBackoff,
    ];

    /// The stable command-line name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PolicySpec::DualFsm => "dual-fsm",
            PolicySpec::AlwaysHigh => "always-high",
            PolicySpec::AlwaysLow => "always-low",
            PolicySpec::ImmediateDown => "immediate-down",
            PolicySpec::OracleDown => "oracle-down",
            PolicySpec::LadderFsm => "ladder-fsm",
            PolicySpec::ErrorBackoff => "error-backoff",
        }
    }

    /// Parses a command-line name ([`PolicySpec::name`] spellings).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Instantiates the live policy for a configuration (`cfg`
    /// supplies the FSM thresholds for [`PolicySpec::DualFsm`] and
    /// the circuit timing for [`PolicySpec::OracleDown`]'s round-trip
    /// cost).
    #[must_use]
    pub fn build(self, cfg: &crate::controller::VsvConfig) -> Box<dyn DvsPolicy> {
        match self {
            PolicySpec::DualFsm => Box::new(DualFsmPolicy::new("dual-fsm", cfg.down, cfg.up)),
            PolicySpec::AlwaysHigh => Box::new(AlwaysHigh),
            PolicySpec::AlwaysLow => Box::new(AlwaysLow::new(cfg.ladder.bottom())),
            PolicySpec::ImmediateDown => Box::new(DualFsmPolicy::new(
                "immediate-down",
                DownPolicy::Immediate,
                UpPolicy::FirstReturn,
            )),
            PolicySpec::OracleDown => Box::new(OracleDown::new(
                cfg.ctrl_distribute_ns + cfg.clock_tree_ns + cfg.ramp_ns() // down
                    + cfg.ctrl_distribute_ns + cfg.ramp_ns(), // up
            )),
            PolicySpec::LadderFsm => {
                Box::new(LadderFsmPolicy::new(cfg.down, cfg.up, cfg.ladder.bottom()))
            }
            PolicySpec::ErrorBackoff => {
                let inner: Box<dyn DvsPolicy> = if cfg.ladder.bottom() <= 1 {
                    Box::new(DualFsmPolicy::new("dual-fsm", cfg.down, cfg.up))
                } else {
                    Box::new(LadderFsmPolicy::new(cfg.down, cfg.up, cfg.ladder.bottom()))
                };
                // Engage at the ladder midpoint: halving the
                // undervolt depth quarters the (quadratic) error
                // probability. Two rails degenerate to VDDH.
                Box::new(ErrorBackoffPolicy::new(
                    inner,
                    (cfg.ladder.bottom() / 2) as u8,
                ))
            }
        }
    }
}

// ---- dual-fsm (and immediate-down) ---------------------------------

/// The paper's policy: [`DownFsm`]/[`UpFsm`] issue-rate monitors plus
/// the level-triggered refresh and all-returned safety rules the
/// controller used to hard-wire. With [`DownPolicy::Immediate`] /
/// [`UpPolicy::FirstReturn`] it doubles as `immediate-down`.
#[derive(Debug, Clone)]
pub struct DualFsmPolicy {
    name: &'static str,
    down: DownFsm,
    up: UpFsm,
}

impl DualFsmPolicy {
    /// Builds the policy around the two monitors.
    #[must_use]
    pub fn new(name: &'static str, down: DownPolicy, up: UpPolicy) -> Self {
        DualFsmPolicy {
            name,
            down: DownFsm::new(down),
            up: UpFsm::new(up),
        }
    }
}

impl DvsPolicy for DualFsmPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_signal(&mut self, sig: &VsvSignal, mode: Mode) -> Decision {
        match *sig {
            VsvSignal::L2MissDetected { demand, .. } => {
                // Prefetch-only misses never arm the FSMs (§4.2).
                if demand && mode == Mode::High {
                    self.down.arm();
                }
                Decision::Hold
            }
            VsvSignal::L2MissReturned {
                demand,
                outstanding_demand,
                ..
            } => {
                if demand && mode == Mode::Low && self.up.on_return(outstanding_demand) {
                    Decision::RampUp
                } else {
                    Decision::Hold
                }
            }
        }
    }

    fn on_tick(&mut self, _now: u64, outstanding_demand: usize, mode: Mode) -> Decision {
        // All misses returned while we were heading down or sitting
        // low: nothing left to wait for, so go back up.
        if mode == Mode::Low && outstanding_demand == 0 {
            return Decision::RampUp;
        }
        // The L2 miss signal (Figure 1) is a level: it stays asserted
        // while a demand miss is outstanding, so the down-FSM keeps
        // monitoring for a zero-issue run for as long as the pipeline
        // might yet run dry — not just for one window after the
        // detection edge.
        if mode == Mode::High && outstanding_demand > 0 {
            self.down.refresh();
        }
        Decision::Hold
    }

    fn on_cycle(&mut self, issued: u32, mode: Mode) -> Decision {
        match mode {
            Mode::High if self.down.on_cycle(issued) => Decision::RampDown,
            Mode::Low if self.up.on_cycle(issued) => Decision::RampUp,
            _ => Decision::Hold,
        }
    }

    fn on_mode_entered(&mut self, mode: Mode, _now: u64, outstanding_demand: usize) -> Decision {
        // Misses that were detected mid-transition still deserve
        // monitoring once we are back at speed.
        if mode == Mode::High && outstanding_demand > 0 {
            self.down.arm();
        }
        Decision::Hold
    }

    fn on_transition_start(&mut self) {
        self.down.disarm();
        self.up.disarm();
    }

    fn idle_skip_allowed(&self, mode: Mode, outstanding_demand: usize) -> bool {
        match mode {
            // High: no outstanding miss (else every tick refreshes
            // the down-FSM) and the down-FSM unarmed (else idle edges
            // advance its zero-issue run).
            Mode::High => outstanding_demand == 0 && !self.down.is_armed(),
            // Low: a miss still outstanding (else on_tick ramps up)
            // and the up-FSM unable to trigger on an idle cycle (its
            // window, if open, merely drains — batched exactly by
            // `UpFsm::skip_idle_cycles`).
            Mode::Low => outstanding_demand > 0 && !self.up.would_trigger_on_idle(),
            _ => false,
        }
    }

    fn skip_idle_cycles(&mut self, edges: u64, mode: Mode) {
        if mode == Mode::Low {
            self.up.skip_idle_cycles(edges);
        }
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            down_triggers: self.down.triggers(),
            down_expiries: self.down.expiries(),
            up_triggers: self.up.triggers(),
            up_expiries: self.up.expiries(),
            ..PolicyStats::default()
        }
    }

    fn armed(&self) -> (bool, bool) {
        (self.down.is_armed(), self.up.is_armed())
    }

    fn clone_box(&self) -> Box<dyn DvsPolicy> {
        Box::new(self.clone())
    }
}

// ---- always-high ---------------------------------------------------

/// Never transitions: the enabled-but-inert control. A run under this
/// policy must be indistinguishable from the disabled baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysHigh;

impl DvsPolicy for AlwaysHigh {
    fn name(&self) -> &'static str {
        "always-high"
    }
    fn on_signal(&mut self, _sig: &VsvSignal, _mode: Mode) -> Decision {
        Decision::Hold
    }
    fn on_tick(&mut self, _now: u64, _outstanding: usize, _mode: Mode) -> Decision {
        Decision::Hold
    }
    fn on_cycle(&mut self, _issued: u32, _mode: Mode) -> Decision {
        Decision::Hold
    }
    fn on_mode_entered(&mut self, _mode: Mode, _now: u64, _outstanding: usize) -> Decision {
        Decision::Hold
    }
    fn idle_skip_allowed(&self, _mode: Mode, _outstanding: usize) -> bool {
        true
    }
    fn stats(&self) -> PolicyStats {
        PolicyStats::default()
    }
    fn clone_box(&self) -> Box<dyn DvsPolicy> {
        Box::new(*self)
    }
}

// ---- always-low ----------------------------------------------------

/// Dives to the ladder bottom on the first enabled tick and camps
/// there forever: the static half-speed, low-voltage floor (on
/// deeper ladders, the lowest configured rail). Maximum theoretical
/// supply savings, unbounded slowdown — the other end of the design
/// space from [`AlwaysHigh`].
#[derive(Debug, Clone, Copy)]
pub struct AlwaysLow {
    bottom: usize,
    downs: u64,
}

impl Default for AlwaysLow {
    /// The paper's 2-rail ladder: bottom is level 1 (VDDL).
    fn default() -> Self {
        AlwaysLow::new(1)
    }
}

impl AlwaysLow {
    /// Builds the policy targeting ladder level `bottom`.
    #[must_use]
    pub fn new(bottom: usize) -> Self {
        AlwaysLow { bottom, downs: 0 }
    }

    /// The bottom-of-ladder target decision (on a 2-rail ladder,
    /// `Level(1)` — exactly the old unconditional ramp-down).
    fn dive(&mut self) -> Decision {
        self.downs += 1;
        Decision::Level(self.bottom as u8)
    }
}

impl DvsPolicy for AlwaysLow {
    fn name(&self) -> &'static str {
        "always-low"
    }
    fn on_signal(&mut self, _sig: &VsvSignal, _mode: Mode) -> Decision {
        Decision::Hold
    }
    fn on_tick(&mut self, _now: u64, _outstanding: usize, mode: Mode) -> Decision {
        if mode == Mode::High && self.bottom > 0 {
            self.dive()
        } else {
            Decision::Hold
        }
    }
    fn on_cycle(&mut self, _issued: u32, _mode: Mode) -> Decision {
        Decision::Hold
    }
    fn on_mode_entered(&mut self, mode: Mode, _now: u64, _outstanding: usize) -> Decision {
        // Unreachable in practice (we never ramp up), but a policy
        // must be self-consistent under any controller state.
        if mode == Mode::High && self.bottom > 0 {
            self.dive()
        } else {
            Decision::Hold
        }
    }
    fn idle_skip_allowed(&self, mode: Mode, _outstanding: usize) -> bool {
        // High is never skippable (the very next tick dives) — except
        // on the degenerate depth-1 ladder, where there is nowhere to
        // dive to.
        mode == Mode::Low || self.bottom == 0
    }
    fn stats(&self) -> PolicyStats {
        PolicyStats {
            down_triggers: self.downs,
            ..PolicyStats::default()
        }
    }
    fn clone_box(&self) -> Box<dyn DvsPolicy> {
        Box::new(*self)
    }
}

// ---- ladder-fsm ----------------------------------------------------

/// The dual-FSM logic generalized to the N-level ladder (ROADMAP's
/// "N-level policies" item): each expired zero-issue evidence window
/// steps the supply down *one* level, so sustained memory-bound
/// stalls descend toward VDDL step by step while marginal stalls only
/// pay a shallow, quickly-reversed dip; miss-return pressure (the
/// up-FSM's issuing-run or sole-return rule) retargets straight back
/// to VDDH, reversing a descent even mid-ramp. On a depth-1 ladder
/// there is nowhere to step, so the policy is inert (identical to
/// [`AlwaysHigh`] — `tests/fsm_edges.rs` pins this).
#[derive(Debug, Clone)]
pub struct LadderFsmPolicy {
    down: DownFsm,
    up: UpFsm,
    /// The unscaled down policy the ladder variants are derived from
    /// (see [`LadderFsmPolicy::scaled_down`]).
    base_down: DownPolicy,
    /// Last settled ladder level (kept current by
    /// [`DvsPolicy::on_level`]).
    level: usize,
    /// Deepest ladder level (`depth − 1`).
    bottom: usize,
}

impl LadderFsmPolicy {
    /// Builds the policy around the two monitors for a ladder whose
    /// deepest level is `bottom`. `down` is the evidence rule for the
    /// *full* descent; per-step thresholds are scaled from it.
    #[must_use]
    pub fn new(down: DownPolicy, up: UpPolicy, bottom: usize) -> Self {
        let mut policy = LadderFsmPolicy {
            down: DownFsm::new(down),
            up: UpFsm::new(up),
            base_down: down,
            level: 0,
            bottom,
        };
        policy.down = DownFsm::new(policy.scaled_down(0));
        policy
    }

    /// The down policy gating the step that leaves `level`: the base
    /// monitor threshold is scaled by the fraction of the ladder the
    /// step commits to, `ceil(threshold · (level + 1) / bottom)`, at
    /// least 1. Evidence is proportional to voltage commitment — the
    /// first step off a deep ladder risks little and fires almost
    /// immediately (chasing the stalls `immediate-down` captures),
    /// while the step onto the bottom rail demands the full base
    /// threshold. On a 2-rail ladder the sole step *is* the full
    /// commitment, so this reduces to the base policy exactly and the
    /// paper configuration is untouched. [`DownPolicy::Immediate`]
    /// passes through unscaled.
    fn scaled_down(&self, level: usize) -> DownPolicy {
        match self.base_down {
            DownPolicy::Monitor { threshold, period } if self.bottom > 0 => {
                let t = (threshold as usize * (level + 1)).div_ceil(self.bottom);
                DownPolicy::Monitor {
                    threshold: t.max(1) as u32,
                    period,
                }
            }
            other => other,
        }
    }

    /// Whether another down step exists below the current level.
    fn can_descend(&self) -> bool {
        self.level < self.bottom
    }
}

impl DvsPolicy for LadderFsmPolicy {
    fn name(&self) -> &'static str {
        "ladder-fsm"
    }

    fn on_signal(&mut self, sig: &VsvSignal, mode: Mode) -> Decision {
        match *sig {
            VsvSignal::L2MissDetected { demand, .. } => {
                // Prefetch-only misses never arm the monitors (§4.2).
                // Unlike the 2-rail policy, a detection at an
                // intermediate level (steady Low) also arms: more
                // evidence can justify another step down.
                if demand && self.can_descend() && matches!(mode, Mode::High | Mode::Low) {
                    self.down.arm();
                }
                Decision::Hold
            }
            VsvSignal::L2MissReturned {
                demand,
                outstanding_demand,
                ..
            } => {
                // Return pressure targets VDDH directly (not one step
                // up): the paper's up-FSM rules, applied from any
                // depth. The up-FSM is consulted whenever a `Level(0)`
                // retarget could change the outcome: settled below
                // VDDH, or mid-*descent* from a level already below
                // VDDH (the step in flight settles two or more levels
                // down — reversing it is the ladder's mid-ramp
                // escape). A descent leaving level 0 settles at
                // level 1, where the steady-state rules take over next
                // tick — exactly the 2-rail behaviour, which keeps the
                // depth-2 ladder's FSM counters bit-identical to
                // `dual-fsm`; and an in-flight *up* step is already
                // headed to VDDH, so a retarget is a no-op.
                let reversible = match mode {
                    Mode::Low => true,
                    Mode::DownDistribute | Mode::RampDown => self.level >= 1,
                    Mode::High | Mode::UpDistribute | Mode::RampUp => false,
                };
                if demand && self.level > 0 && reversible && self.up.on_return(outstanding_demand) {
                    Decision::Level(0)
                } else {
                    Decision::Hold
                }
            }
        }
    }

    fn on_tick(&mut self, _now: u64, outstanding_demand: usize, mode: Mode) -> Decision {
        // All misses returned: nothing left to overlap, go home.
        if mode == Mode::Low && outstanding_demand == 0 {
            return Decision::Level(0);
        }
        // The level-triggered refresh rule, active at every level
        // that still has a step below it.
        if outstanding_demand > 0 && self.can_descend() && matches!(mode, Mode::High | Mode::Low) {
            self.down.refresh();
        }
        Decision::Hold
    }

    fn on_cycle(&mut self, issued: u32, mode: Mode) -> Decision {
        match mode {
            Mode::High if self.down.on_cycle(issued) => Decision::RampDown,
            Mode::Low => {
                if self.up.on_cycle(issued) {
                    return Decision::Level(0);
                }
                if self.can_descend() && self.down.on_cycle(issued) {
                    return Decision::RampDown;
                }
                Decision::Hold
            }
            _ => Decision::Hold,
        }
    }

    fn on_mode_entered(&mut self, _mode: Mode, _now: u64, outstanding_demand: usize) -> Decision {
        // Misses detected mid-transition still deserve monitoring once
        // the supply settles — at any level with a step left below.
        if outstanding_demand > 0 && self.can_descend() {
            self.down.arm();
        }
        Decision::Hold
    }

    fn on_transition_start(&mut self) {
        self.down.disarm();
        self.up.disarm();
    }

    fn on_level(&mut self, level: usize) {
        if level != self.level {
            self.level = level;
            self.down.set_policy(self.scaled_down(level));
        }
    }

    fn idle_skip_allowed(&self, mode: Mode, outstanding_demand: usize) -> bool {
        match mode {
            // Same reasoning as the 2-rail policy, except the down-FSM
            // can also be armed at intermediate levels.
            Mode::High => outstanding_demand == 0 && !self.down.is_armed(),
            Mode::Low => {
                outstanding_demand > 0 && !self.down.is_armed() && !self.up.would_trigger_on_idle()
            }
            _ => false,
        }
    }

    fn skip_idle_cycles(&mut self, edges: u64, mode: Mode) {
        if mode == Mode::Low {
            self.up.skip_idle_cycles(edges);
        }
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            down_triggers: self.down.triggers(),
            down_expiries: self.down.expiries(),
            up_triggers: self.up.triggers(),
            up_expiries: self.up.expiries(),
            ..PolicyStats::default()
        }
    }

    fn armed(&self) -> (bool, bool) {
        (self.down.is_armed(), self.up.is_armed())
    }

    fn clone_box(&self) -> Box<dyn DvsPolicy> {
        Box::new(self.clone())
    }
}

// ---- error-backoff -------------------------------------------------

/// Retries counted per engagement window: the rate estimator is a
/// bucketed counter (reset when a retry arrives ≥ window after the
/// bucket opened), cheap and deterministic.
pub const BACKOFF_WINDOW_NS: u64 = 4_000;

/// Retries within one window that trip the backoff.
pub const BACKOFF_RETRY_THRESHOLD: u32 = 2;

/// Retry-free nanoseconds after which an engaged backoff re-arms and
/// hands control back to the wrapped policy.
pub const BACKOFF_COOLDOWN_NS: u64 = 20_000;

/// Error-aware graceful degradation (the risk/reward governor): the
/// wrapped FSM policy chases energy savings as usual, while this
/// wrapper watches the read-retry rate undervolting is causing. When
/// retries cluster — [`BACKOFF_RETRY_THRESHOLD`] within
/// [`BACKOFF_WINDOW_NS`] — it climbs to its *engage level* (the
/// ladder's midpoint rung: VDDH on the paper's two rails) and clamps
/// every deeper move to that rung until [`BACKOFF_COOLDOWN_NS`]
/// retry-free nanoseconds pass, then re-arms. Clamping (rather than
/// blocking) the dives keeps the policy undervolting on every L2-miss
/// window — just never below the rung it deems safe.
///
/// The midpoint engage level is what makes the degradation graceful
/// on ladders deeper than two rails: the error probability falls
/// *quadratically* with undervolt depth, so halving the depth cuts
/// the error exposure to roughly a quarter while keeping well over
/// half of the rung's power saving. Two rails have no middle, so
/// there the backoff climbs all the way to the error-free VDDH.
#[derive(Debug, Clone)]
pub struct ErrorBackoffPolicy {
    inner: Box<dyn DvsPolicy>,
    engage_level: u8,
    window_start: u64,
    window_count: u32,
    last_retry_at: u64,
    engaged: bool,
    engagements: u64,
    vetoes: u64,
}

impl ErrorBackoffPolicy {
    /// Wraps `inner` (normally the FSM policy matching the ladder
    /// depth; see [`PolicySpec::ErrorBackoff`]). `engage_level` is
    /// the shallowest rung the policy retreats to while engaged
    /// (`0` = VDDH; [`PolicySpec::build`] uses the ladder midpoint,
    /// `bottom / 2`).
    #[must_use]
    pub fn new(inner: Box<dyn DvsPolicy>, engage_level: u8) -> Self {
        ErrorBackoffPolicy {
            inner,
            engage_level,
            window_start: 0,
            window_count: 0,
            last_retry_at: 0,
            engaged: false,
            engagements: 0,
            vetoes: 0,
        }
    }

    /// Whether the backoff is currently engaged (vetoing dives).
    #[must_use]
    pub fn engaged(&self) -> bool {
        self.engaged
    }

    /// Filters a wrapped decision: while engaged, any move below the
    /// engage level is clamped to the engage level (counted as a
    /// veto); everything else passes through. (`RampDown` always
    /// targets the ladder bottom, which is strictly below the engage
    /// level whenever the ladder has more than the engage rung.)
    fn gate(&mut self, d: Decision) -> Decision {
        if !self.engaged {
            return d;
        }
        match d {
            Decision::RampDown => {
                self.vetoes += 1;
                Decision::Level(self.engage_level)
            }
            Decision::Level(l) if l > self.engage_level => {
                self.vetoes += 1;
                Decision::Level(self.engage_level)
            }
            other => other,
        }
    }
}

impl DvsPolicy for ErrorBackoffPolicy {
    fn name(&self) -> &'static str {
        "error-backoff"
    }

    fn on_signal(&mut self, sig: &VsvSignal, mode: Mode) -> Decision {
        let d = self.inner.on_signal(sig, mode);
        self.gate(d)
    }

    fn on_tick(&mut self, now: u64, outstanding_demand: usize, mode: Mode) -> Decision {
        // Re-arm after a retry-free cool-down. (This check runs only
        // on stepped ticks; that is exact, because retries are events
        // and events both end fast-forward spans and are the only
        // source of non-Hold gating differences.)
        if self.engaged && now.saturating_sub(self.last_retry_at) >= BACKOFF_COOLDOWN_NS {
            self.engaged = false;
        }
        let d = self.inner.on_tick(now, outstanding_demand, mode);
        self.gate(d)
    }

    fn on_cycle(&mut self, issued: u32, mode: Mode) -> Decision {
        let d = self.inner.on_cycle(issued, mode);
        self.gate(d)
    }

    fn on_mode_entered(&mut self, mode: Mode, now: u64, outstanding_demand: usize) -> Decision {
        let d = self.inner.on_mode_entered(mode, now, outstanding_demand);
        self.gate(d)
    }

    fn on_transition_start(&mut self) {
        self.inner.on_transition_start();
    }

    fn on_read_retry(&mut self, now: u64) -> Decision {
        if now.saturating_sub(self.window_start) >= BACKOFF_WINDOW_NS {
            self.window_start = now;
            self.window_count = 0;
        }
        self.window_count += 1;
        self.last_retry_at = now;
        if !self.engaged && self.window_count >= BACKOFF_RETRY_THRESHOLD {
            self.engaged = true;
            self.engagements += 1;
            // Climb to the engage level (quadratically safer; VDDH
            // on two rails); in-flight descents are retargeted
            // (reversal mid-ramp).
            return Decision::Level(self.engage_level);
        }
        Decision::Hold
    }

    fn on_level(&mut self, level: usize) {
        self.inner.on_level(level);
    }

    fn idle_skip_allowed(&self, mode: Mode, outstanding_demand: usize) -> bool {
        // Sound to delegate: retries are events, events end
        // fast-forward spans, and within a retry-free span the gate
        // only ever sees the Holds the inner policy's own skip
        // contract guarantees. The cool-down check is time-based but
        // observable only through a gated non-Hold decision, which
        // cannot occur inside the span.
        self.inner.idle_skip_allowed(mode, outstanding_demand)
    }

    fn skip_idle_cycles(&mut self, edges: u64, mode: Mode) {
        self.inner.skip_idle_cycles(edges, mode);
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            backoff_engagements: self.engagements,
            backoff_vetoes: self.vetoes,
            ..self.inner.stats()
        }
    }

    fn armed(&self) -> (bool, bool) {
        self.inner.armed()
    }

    fn clone_box(&self) -> Box<dyn DvsPolicy> {
        Box::new(self.clone())
    }
}

// ---- oracle-down ---------------------------------------------------

/// The clairvoyant upper bound: ramps down on the first zero-issue
/// cycle during which some demand miss's already-scheduled DRAM
/// return time proves the stall will outlast the full round-trip
/// transition cost (down distribution + ramp + up distribution +
/// ramp ≈ 30 ns), and ramps up only when the last demand miss has
/// returned. It never dives while the pipeline still issues (unlike
/// `immediate-down`), never waits out a monitoring window (unlike
/// `dual-fsm`), and never pays a mispredicted round trip on a stall
/// too short to refund it — knowledge no hardware policy has.
#[derive(Debug, Clone, Copy)]
pub struct OracleDown {
    /// Round-trip transition cost (ns): a stall shorter than this
    /// cannot pay for its own transitions.
    round_trip_ns: u64,
    /// Latest scheduled demand-return time seen so far. With every
    /// demand miss returned this is ≤ now, so it cannot trigger.
    latest_known_return: u64,
    /// Time of the last steady-mode tick (the controller calls
    /// `on_tick` before any `on_cycle` of the same nanosecond).
    last_now: u64,
    stats: PolicyStats,
}

impl OracleDown {
    /// Builds the oracle for a given round-trip transition cost.
    #[must_use]
    pub fn new(round_trip_ns: u64) -> Self {
        OracleDown {
            round_trip_ns,
            latest_known_return: 0,
            last_now: 0,
            stats: PolicyStats::default(),
        }
    }

    /// Whether some known demand return is provably far enough out to
    /// refund a round trip started now.
    fn stall_pays(&self) -> bool {
        self.latest_known_return.saturating_sub(self.last_now) >= self.round_trip_ns
    }
}

impl DvsPolicy for OracleDown {
    fn name(&self) -> &'static str {
        "oracle-down"
    }

    fn on_signal(&mut self, sig: &VsvSignal, mode: Mode) -> Decision {
        match *sig {
            VsvSignal::L2MissDetected {
                demand,
                earliest_return,
                ..
            } => {
                // Prefetch misses never stall the pipeline; only
                // demand returns may justify a dive.
                if demand {
                    if let Some(ret) = earliest_return {
                        self.latest_known_return = self.latest_known_return.max(ret);
                    }
                }
                Decision::Hold
            }
            VsvSignal::L2MissReturned {
                demand,
                outstanding_demand,
                ..
            } => {
                if demand && mode == Mode::Low && outstanding_demand == 0 {
                    self.stats.up_triggers += 1;
                    Decision::RampUp
                } else {
                    Decision::Hold
                }
            }
        }
    }

    fn on_tick(&mut self, now: u64, outstanding_demand: usize, mode: Mode) -> Decision {
        self.last_now = now;
        // Safety rule shared with the paper's policy: nothing left to
        // wait for (e.g. the last miss returned mid-transition), so
        // go back up.
        if mode == Mode::Low && outstanding_demand == 0 {
            Decision::RampUp
        } else {
            Decision::Hold
        }
    }

    fn on_cycle(&mut self, issued: u32, mode: Mode) -> Decision {
        if mode != Mode::High || issued > 0 {
            return Decision::Hold;
        }
        if self.stall_pays() {
            self.stats.down_triggers += 1;
            Decision::RampDown
        } else {
            // A stalled cycle the oracle declines to convert: either
            // no demand return is scheduled (MSHR-full retry) or the
            // remaining stall is too short to refund the trip.
            if self.latest_known_return > self.last_now {
                self.stats.down_expiries += 1;
            }
            Decision::Hold
        }
    }

    fn on_mode_entered(&mut self, _mode: Mode, now: u64, _outstanding: usize) -> Decision {
        self.last_now = now;
        // Even with misses still in flight, wait for the pipeline to
        // actually run dry: the next zero-issue cycle dives.
        Decision::Hold
    }

    fn idle_skip_allowed(&self, mode: Mode, outstanding_demand: usize) -> bool {
        match mode {
            // High with a demand miss in flight: a zero-issue cycle
            // may dive, so every cycle must be stepped. With nothing
            // outstanding every known return is in the past and
            // `on_cycle` provably holds.
            Mode::High => outstanding_demand == 0,
            // Low: on_tick ramps up the moment nothing is
            // outstanding.
            Mode::Low => outstanding_demand > 0,
            _ => false,
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn clone_box(&self) -> Box<dyn DvsPolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detected(at: u64, earliest_return: Option<u64>) -> VsvSignal {
        VsvSignal::L2MissDetected {
            demand: true,
            at,
            earliest_return,
        }
    }

    #[test]
    fn spec_names_round_trip() {
        for spec in PolicySpec::ALL {
            assert_eq!(PolicySpec::parse(spec.name()), Some(spec), "{spec:?}");
        }
        assert_eq!(PolicySpec::parse("bogus"), None);
        assert_eq!(PolicySpec::default(), PolicySpec::DualFsm);
    }

    #[test]
    fn built_policies_report_their_spec_name() {
        let cfg = crate::VsvConfig::with_fsms();
        for spec in PolicySpec::ALL {
            assert_eq!(spec.build(&cfg).name(), spec.name());
        }
    }

    #[test]
    fn oracle_declines_short_stalls_and_takes_long_ones() {
        let mut o = OracleDown::new(30);
        let _ = o.on_tick(100, 1, Mode::High);
        // Return in 10 ns: a zero-issue cycle is not worth the trip.
        let _ = o.on_signal(&detected(100, Some(110)), Mode::High);
        assert_eq!(o.on_cycle(0, Mode::High), Decision::Hold);
        assert_eq!(o.stats().down_expiries, 1);
        // Return in 80 ns: provably worth it — but never while the
        // pipeline still issues.
        let _ = o.on_signal(&detected(100, Some(180)), Mode::High);
        assert_eq!(o.on_cycle(4, Mode::High), Decision::Hold);
        assert_eq!(o.on_cycle(0, Mode::High), Decision::RampDown);
        assert_eq!(o.stats().down_triggers, 1);
        assert_eq!(o.stats().down_expiries, 1);
    }

    #[test]
    fn oracle_holds_on_unscheduled_stalls() {
        // MSHR-full retry: the miss has no scheduled return yet, so
        // nothing is provable and the oracle stays put.
        let mut o = OracleDown::new(30);
        let _ = o.on_tick(50, 1, Mode::High);
        let _ = o.on_signal(&detected(50, None), Mode::High);
        assert_eq!(o.on_cycle(0, Mode::High), Decision::Hold);
        assert_eq!(o.stats().down_triggers, 0);
    }

    #[test]
    fn oracle_waits_for_the_last_return() {
        let mut o = OracleDown::new(30);
        let ret = |outstanding| VsvSignal::L2MissReturned {
            demand: true,
            at: 0,
            outstanding_demand: outstanding,
        };
        assert_eq!(o.on_signal(&ret(2), Mode::Low), Decision::Hold);
        assert_eq!(o.on_signal(&ret(0), Mode::Low), Decision::RampUp);
        assert_eq!(o.stats().up_triggers, 1);
    }

    #[test]
    fn oracle_redips_on_the_next_stall_cycle_after_reaching_high() {
        let mut o = OracleDown::new(30);
        let _ = o.on_signal(&detected(0, Some(500)), Mode::High);
        // Reaching High with the miss still 400 ns out: the very next
        // zero-issue cycle dives again.
        assert_eq!(o.on_mode_entered(Mode::High, 100, 1), Decision::Hold);
        assert_eq!(o.on_cycle(0, Mode::High), Decision::RampDown);
        // Near the return the remaining stall no longer pays.
        let mut o = OracleDown::new(30);
        let _ = o.on_signal(&detected(0, Some(500)), Mode::High);
        assert_eq!(o.on_mode_entered(Mode::High, 490, 1), Decision::Hold);
        assert_eq!(o.on_cycle(0, Mode::High), Decision::Hold);
    }

    #[test]
    fn always_low_dives_and_stays() {
        let mut p = AlwaysLow::default();
        // On the default 2-rail ladder the dive targets level 1 —
        // exactly the old unconditional ramp-down.
        assert_eq!(p.on_tick(0, 0, Mode::High), Decision::Level(1));
        assert_eq!(p.on_tick(50, 0, Mode::Low), Decision::Hold);
        assert!(!p.idle_skip_allowed(Mode::High, 0));
        assert!(p.idle_skip_allowed(Mode::Low, 0));
        assert_eq!(p.stats().down_triggers, 1);
    }

    #[test]
    fn always_low_on_a_depth_one_ladder_is_inert() {
        let mut p = AlwaysLow::new(0);
        assert_eq!(p.on_tick(0, 0, Mode::High), Decision::Hold);
        assert!(p.idle_skip_allowed(Mode::High, 0), "nowhere to dive");
        assert_eq!(p.stats().down_triggers, 0);
    }

    #[test]
    fn ladder_fsm_steps_down_one_level_per_expired_window() {
        let mut p = LadderFsmPolicy::new(
            crate::DownPolicy::Monitor {
                threshold: 2,
                period: 10,
            },
            crate::UpPolicy::Monitor {
                threshold: 2,
                period: 10,
            },
            3,
        );
        // A demand miss arms the monitor in High...
        let _ = p.on_signal(&detected(0, None), Mode::High);
        assert!(p.armed().0);
        // ...and the first step commits only a third of the swing, so
        // its scaled threshold is ceil(2·1/3) = 1: one zero-issue
        // cycle steps down exactly one level.
        assert_eq!(p.on_cycle(0, Mode::High), Decision::RampDown);
        p.on_transition_start();
        p.on_level(1);
        // At level 1 (steady Low) a fresh detection arms again — the
        // descent can continue one window at a time, now needing
        // ceil(2·2/3) = 2 cycles of evidence.
        let _ = p.on_signal(&detected(20, None), Mode::Low);
        assert_eq!(p.on_cycle(0, Mode::Low), Decision::Hold);
        assert_eq!(p.on_cycle(0, Mode::Low), Decision::RampDown);
        assert_eq!(p.stats().down_triggers, 2);
    }

    #[test]
    fn ladder_fsm_down_threshold_scales_with_commitment() {
        let thresholds = |bottom: usize| -> Vec<u32> {
            let p = LadderFsmPolicy::new(
                crate::DownPolicy::default_monitor(),
                crate::UpPolicy::default_monitor(),
                bottom,
            );
            (0..bottom)
                .map(|k| match p.scaled_down(k) {
                    crate::DownPolicy::Monitor { threshold, .. } => threshold,
                    crate::DownPolicy::Immediate => unreachable!("monitor base stays a monitor"),
                })
                .collect()
        };
        // The 2-rail ladder's sole step is the full commitment: the
        // paper's threshold 3 survives exactly.
        assert_eq!(thresholds(1), [3]);
        assert_eq!(thresholds(2), [2, 3]);
        assert_eq!(thresholds(3), [1, 2, 3]);
        assert_eq!(thresholds(7), [1, 1, 2, 2, 3, 3, 3]);
        // Immediate has no threshold to scale.
        let p = LadderFsmPolicy::new(
            crate::DownPolicy::Immediate,
            crate::UpPolicy::default_monitor(),
            3,
        );
        assert_eq!(p.scaled_down(1), crate::DownPolicy::Immediate);
    }

    #[test]
    fn ladder_fsm_return_pressure_targets_level_zero_from_any_depth() {
        let mut p = LadderFsmPolicy::new(
            crate::DownPolicy::Monitor {
                threshold: 2,
                period: 10,
            },
            crate::UpPolicy::Monitor {
                threshold: 2,
                period: 10,
            },
            3,
        );
        p.on_level(2);
        let sole_return = VsvSignal::L2MissReturned {
            demand: true,
            at: 100,
            outstanding_demand: 0,
        };
        // Sole return two levels down: straight back to VDDH, not one
        // step up — and with no mode gate, so it also fires mid-ramp.
        assert_eq!(
            p.on_signal(&sole_return, Mode::RampDown),
            Decision::Level(0)
        );
    }

    #[test]
    fn ladder_fsm_is_inert_on_a_depth_one_ladder() {
        let mut p = LadderFsmPolicy::new(
            crate::DownPolicy::Monitor {
                threshold: 2,
                period: 10,
            },
            crate::UpPolicy::Monitor {
                threshold: 2,
                period: 10,
            },
            0,
        );
        let _ = p.on_signal(&detected(0, None), Mode::High);
        assert_eq!(p.armed(), (false, false), "nowhere to step: never arms");
        for _ in 0..50 {
            assert_eq!(p.on_cycle(0, Mode::High), Decision::Hold);
        }
        assert_eq!(p.stats(), PolicyStats::default());
        assert!(p.idle_skip_allowed(Mode::High, 0));
    }

    #[test]
    fn error_backoff_engages_on_retry_bursts_and_vetoes_dives() {
        let cfg = crate::VsvConfig::with_fsms();
        let mut p = PolicySpec::ErrorBackoff.build(&cfg);
        assert_eq!(p.name(), "error-backoff");
        // Below the threshold: retries are tolerated.
        for i in 0..u64::from(BACKOFF_RETRY_THRESHOLD) - 1 {
            assert_eq!(p.on_read_retry(100 + i), Decision::Hold);
        }
        // The threshold-crossing retry climbs to VDDH.
        assert_eq!(
            p.on_read_retry(100 + u64::from(BACKOFF_RETRY_THRESHOLD)),
            Decision::Level(0)
        );
        assert_eq!(p.stats().backoff_engagements, 1);
        // While engaged, the wrapped policy's dives are clamped to
        // the engage rung (VDDH on two rails): arm the inner down-FSM
        // and run it to a trigger.
        let _ = p.on_signal(&detected(200, None), Mode::High);
        let mut vetoed = false;
        for _ in 0..100 {
            if p.stats().backoff_vetoes > 0 {
                vetoed = true;
                break;
            }
            let _ = p.on_tick(200, 1, Mode::High);
            let d = p.on_cycle(0, Mode::High);
            assert!(
                d == Decision::Hold || d == Decision::Level(0),
                "dive must be clamped to the engage rung, got {d:?}"
            );
        }
        assert!(vetoed, "inner dual-fsm never triggered a clampable dive");
    }

    #[test]
    fn error_backoff_rearms_after_cooldown() {
        let cfg = crate::VsvConfig::with_fsms();
        let mut p = PolicySpec::ErrorBackoff.build(&cfg);
        for i in 0..u64::from(BACKOFF_RETRY_THRESHOLD) {
            let _ = p.on_read_retry(i);
        }
        assert_eq!(p.stats().backoff_engagements, 1);
        // A retry-free cool-down hands control back to the inner FSM.
        let _ = p.on_tick(BACKOFF_COOLDOWN_NS + 10, 1, Mode::High);
        let _ = p.on_signal(&detected(BACKOFF_COOLDOWN_NS + 11, None), Mode::High);
        let mut dove = false;
        for _ in 0..100 {
            let _ = p.on_tick(BACKOFF_COOLDOWN_NS + 12, 1, Mode::High);
            if p.on_cycle(0, Mode::High) == Decision::RampDown {
                dove = true;
                break;
            }
        }
        assert!(dove, "after the cool-down the inner policy dives again");
        assert_eq!(p.stats().backoff_vetoes, 0);
    }

    #[test]
    fn error_backoff_windows_do_not_accumulate_sparse_retries() {
        let cfg = crate::VsvConfig::with_fsms();
        let mut p = PolicySpec::ErrorBackoff.build(&cfg);
        // One retry per 2 windows: the bucket resets every time, so
        // the threshold is never reached.
        for i in 0..50u64 {
            assert_eq!(
                p.on_read_retry(i * 2 * BACKOFF_WINDOW_NS),
                Decision::Hold,
                "sparse retries must not engage"
            );
        }
        assert_eq!(p.stats().backoff_engagements, 0);
    }

    #[test]
    fn error_backoff_wraps_ladder_fsm_on_deep_ladders() {
        let cfg = crate::VsvConfig::with_fsms().with_ladder_depth(4);
        let p = PolicySpec::ErrorBackoff.build(&cfg);
        // The wrapper reports its own name; behavior checks live in
        // the system-level tests.
        assert_eq!(p.name(), "error-backoff");
    }

    #[test]
    fn always_high_holds_everywhere() {
        let mut p = AlwaysHigh;
        assert_eq!(
            p.on_signal(&detected(0, Some(999)), Mode::High),
            Decision::Hold
        );
        assert_eq!(p.on_tick(0, 5, Mode::High), Decision::Hold);
        assert_eq!(p.on_cycle(0, Mode::High), Decision::Hold);
        assert!(p.idle_skip_allowed(Mode::High, 7));
        assert_eq!(p.stats(), PolicyStats::default());
    }
}
