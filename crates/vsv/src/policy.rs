//! Pluggable DVS decision policies behind the [`DvsPolicy`] trait.
//!
//! The paper's contribution is one *point* in the DVS-policy design
//! space: issue-rate-monitoring dual FSMs (§4.2/§4.4). This module
//! makes that space explorable. A policy observes per-cycle evidence —
//! L2 miss signals, issue counts, the outstanding-miss count, the
//! current [`Mode`] — and emits [`Decision`]s; the
//! [`crate::VsvController`] keeps sole ownership of the circuit-level
//! transition timeline (2 ns control + 2 ns clock-tree distribution,
//! 12 ns supply ramps, the 66 nJ per-ramp charge), so every policy
//! pays honest transition costs.
//!
//! Five policies are built in, selectable by [`PolicySpec`]:
//!
//! | name             | down on                         | up on |
//! |------------------|---------------------------------|-------|
//! | `dual-fsm`       | zero-issue run after a miss     | issuing run / sole return |
//! | `always-high`    | never                           | — |
//! | `always-low`     | immediately, unconditionally    | never |
//! | `immediate-down` | every detected demand miss      | first return |
//! | `oracle-down`    | miss whose stall provably       | last return |
//! |                  | outlasts the round trip         |       |
//!
//! `dual-fsm` is the default and is bit-identical to the pre-policy
//! controller (`tests/policy_equivalence.rs` pins this).
//! `always-high` is the no-DVS control, `always-low` the static
//! low-voltage floor, `immediate-down` the naive scheme the FSMs
//! exist to beat, and `oracle-down` an upper bound that reads the
//! simulator's scheduled miss-return times — knowledge no hardware
//! policy has.

use vsv_mem::VsvSignal;

use crate::controller::Mode;
use crate::fsm::{DownFsm, DownPolicy, UpFsm, UpPolicy};

/// What a policy wants the controller to do right now. The controller
/// applies a decision only when it is actionable (ramp-down from
/// [`Mode::High`], ramp-up from [`Mode::Low`]); anything else is
/// dropped, so policies need not track transition phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Decision {
    /// Stay in the current mode.
    #[default]
    Hold,
    /// Start the high→low transition (Figure 2 timeline).
    RampDown,
    /// Start the low→high transition (Figure 3 timeline).
    RampUp,
}

/// Trigger/decline counters every policy reports, mirroring the dual
/// FSMs' bookkeeping so [`crate::RunResult`] keeps its shape across
/// policies.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Ramp-down decisions emitted.
    pub down_triggers: u64,
    /// Ramp-down opportunities examined and declined (for `dual-fsm`:
    /// monitoring windows that expired on a busy pipeline).
    pub down_expiries: u64,
    /// Ramp-up decisions emitted.
    pub up_triggers: u64,
    /// Ramp-up opportunities examined and declined (for `dual-fsm`:
    /// windows that expired on an idle pipeline).
    pub up_expiries: u64,
}

/// A DVS decision policy.
///
/// The controller drives a policy with, per nanosecond: one
/// [`DvsPolicy::on_signal`] call per hierarchy signal, one
/// [`DvsPolicy::on_tick`] while in a steady mode, and — on pipeline
/// clock edges — one [`DvsPolicy::on_cycle`] with the cycle's issue
/// count. [`DvsPolicy::on_mode_entered`] fires when a transition
/// completes. Policies must be deterministic: decisions may depend
/// only on the evidence fed through these hooks.
pub trait DvsPolicy: std::fmt::Debug + Send {
    /// Stable policy name (the `--policy` spelling).
    fn name(&self) -> &'static str;

    /// Consumes one L2 signal from the hierarchy. `at` inside the
    /// signal is the decision time the controller will apply any
    /// returned transition at.
    fn on_signal(&mut self, sig: &VsvSignal, mode: Mode) -> Decision;

    /// One nanosecond in a steady mode ([`Mode::High`] or
    /// [`Mode::Low`]; the controller owns transition phases).
    fn on_tick(&mut self, now: u64, outstanding_demand: usize, mode: Mode) -> Decision;

    /// The issue count of the pipeline cycle that just ran (edge
    /// ticks only, steady modes only).
    fn on_cycle(&mut self, issued: u32, mode: Mode) -> Decision;

    /// A transition completed and `mode` (always a steady mode) was
    /// entered at time `now` with `outstanding_demand` misses still
    /// in flight.
    fn on_mode_entered(&mut self, mode: Mode, now: u64, outstanding_demand: usize) -> Decision;

    /// A transition is starting (the controller accepted a decision).
    /// Policies drop any armed monitors here — evidence gathered in
    /// the old mode does not carry across a transition.
    fn on_transition_start(&mut self) {}

    /// Whether a window of zero-issue, signal-free nanoseconds in
    /// `mode` may be batch-applied without consulting the policy per
    /// nanosecond — true exactly when every [`DvsPolicy::on_tick`] /
    /// [`DvsPolicy::on_cycle`] pair in such a window would return
    /// [`Decision::Hold`] and mutate nothing beyond what
    /// [`DvsPolicy::skip_idle_cycles`] batch-applies. Powers the
    /// quiescent-stall fast-forward; `tests/policy_equivalence.rs`
    /// cross-checks it against the stepped path for every built-in.
    fn idle_skip_allowed(&self, mode: Mode, outstanding_demand: usize) -> bool;

    /// Batch-applies `edges` idle (zero-issue) pipeline cycles in
    /// `mode` — the bulk counterpart of that many
    /// `on_cycle(0, mode)` calls (the caller has checked
    /// [`DvsPolicy::idle_skip_allowed`]).
    fn skip_idle_cycles(&mut self, edges: u64, mode: Mode) {
        let _ = (edges, mode);
    }

    /// Cumulative trigger/decline counters.
    fn stats(&self) -> PolicyStats;

    /// Whether the policy's (down, up) evidence monitors are currently
    /// armed — i.e. mid-window, gathering evidence toward a trigger.
    /// Structured tracing diffs this to emit
    /// [`crate::trace::TraceEvent::FsmArmed`]; policies without an
    /// arm/fire shape keep the default `(false, false)`.
    fn armed(&self) -> (bool, bool) {
        (false, false)
    }

    /// Clones the policy with its current state (the controller is
    /// [`Clone`]).
    fn clone_box(&self) -> Box<dyn DvsPolicy>;
}

impl Clone for Box<dyn DvsPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Selector for the built-in policies — the [`Copy`] handle that
/// travels through [`crate::SystemConfig`], sweep grids, and report
/// schemas. [`crate::VsvConfig::policy`] holds one;
/// [`PolicySpec::build`] instantiates the live policy at controller
/// construction.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PolicySpec {
    /// The paper's dual issue-rate-monitoring FSMs (the default),
    /// parameterized by [`crate::VsvConfig::down`] /
    /// [`crate::VsvConfig::up`].
    #[default]
    DualFsm,
    /// Never leave [`Mode::High`]: the no-DVS baseline with the
    /// controller enabled (pins the policy layer's overhead to zero).
    AlwaysHigh,
    /// Ramp down immediately and never come back up: the static
    /// low-voltage floor.
    AlwaysLow,
    /// Ramp down on every detected demand miss, up on the first
    /// return — the paper's "without FSMs" scheme as a named policy.
    ImmediateDown,
    /// Ramp down only when the simulator's scheduled return time
    /// proves the stall outlasts the round-trip transition cost; ramp
    /// up when the last miss returns. An upper bound on achievable
    /// savings, not an implementable policy.
    OracleDown,
}

impl PolicySpec {
    /// Every built-in, in `--policy` listing order.
    pub const ALL: [PolicySpec; 5] = [
        PolicySpec::DualFsm,
        PolicySpec::AlwaysHigh,
        PolicySpec::AlwaysLow,
        PolicySpec::ImmediateDown,
        PolicySpec::OracleDown,
    ];

    /// The stable command-line name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PolicySpec::DualFsm => "dual-fsm",
            PolicySpec::AlwaysHigh => "always-high",
            PolicySpec::AlwaysLow => "always-low",
            PolicySpec::ImmediateDown => "immediate-down",
            PolicySpec::OracleDown => "oracle-down",
        }
    }

    /// Parses a command-line name ([`PolicySpec::name`] spellings).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Instantiates the live policy for a configuration (`cfg`
    /// supplies the FSM thresholds for [`PolicySpec::DualFsm`] and
    /// the circuit timing for [`PolicySpec::OracleDown`]'s round-trip
    /// cost).
    #[must_use]
    pub fn build(self, cfg: &crate::controller::VsvConfig) -> Box<dyn DvsPolicy> {
        match self {
            PolicySpec::DualFsm => Box::new(DualFsmPolicy::new("dual-fsm", cfg.down, cfg.up)),
            PolicySpec::AlwaysHigh => Box::new(AlwaysHigh),
            PolicySpec::AlwaysLow => Box::new(AlwaysLow::default()),
            PolicySpec::ImmediateDown => Box::new(DualFsmPolicy::new(
                "immediate-down",
                DownPolicy::Immediate,
                UpPolicy::FirstReturn,
            )),
            PolicySpec::OracleDown => Box::new(OracleDown::new(
                cfg.ctrl_distribute_ns + cfg.clock_tree_ns + cfg.ramp_ns() // down
                    + cfg.ctrl_distribute_ns + cfg.ramp_ns(), // up
            )),
        }
    }
}

// ---- dual-fsm (and immediate-down) ---------------------------------

/// The paper's policy: [`DownFsm`]/[`UpFsm`] issue-rate monitors plus
/// the level-triggered refresh and all-returned safety rules the
/// controller used to hard-wire. With [`DownPolicy::Immediate`] /
/// [`UpPolicy::FirstReturn`] it doubles as `immediate-down`.
#[derive(Debug, Clone)]
pub struct DualFsmPolicy {
    name: &'static str,
    down: DownFsm,
    up: UpFsm,
}

impl DualFsmPolicy {
    /// Builds the policy around the two monitors.
    #[must_use]
    pub fn new(name: &'static str, down: DownPolicy, up: UpPolicy) -> Self {
        DualFsmPolicy {
            name,
            down: DownFsm::new(down),
            up: UpFsm::new(up),
        }
    }
}

impl DvsPolicy for DualFsmPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_signal(&mut self, sig: &VsvSignal, mode: Mode) -> Decision {
        match *sig {
            VsvSignal::L2MissDetected { demand, .. } => {
                // Prefetch-only misses never arm the FSMs (§4.2).
                if demand && mode == Mode::High {
                    self.down.arm();
                }
                Decision::Hold
            }
            VsvSignal::L2MissReturned {
                demand,
                outstanding_demand,
                ..
            } => {
                if demand && mode == Mode::Low && self.up.on_return(outstanding_demand) {
                    Decision::RampUp
                } else {
                    Decision::Hold
                }
            }
        }
    }

    fn on_tick(&mut self, _now: u64, outstanding_demand: usize, mode: Mode) -> Decision {
        // All misses returned while we were heading down or sitting
        // low: nothing left to wait for, so go back up.
        if mode == Mode::Low && outstanding_demand == 0 {
            return Decision::RampUp;
        }
        // The L2 miss signal (Figure 1) is a level: it stays asserted
        // while a demand miss is outstanding, so the down-FSM keeps
        // monitoring for a zero-issue run for as long as the pipeline
        // might yet run dry — not just for one window after the
        // detection edge.
        if mode == Mode::High && outstanding_demand > 0 {
            self.down.refresh();
        }
        Decision::Hold
    }

    fn on_cycle(&mut self, issued: u32, mode: Mode) -> Decision {
        match mode {
            Mode::High if self.down.on_cycle(issued) => Decision::RampDown,
            Mode::Low if self.up.on_cycle(issued) => Decision::RampUp,
            _ => Decision::Hold,
        }
    }

    fn on_mode_entered(&mut self, mode: Mode, _now: u64, outstanding_demand: usize) -> Decision {
        // Misses that were detected mid-transition still deserve
        // monitoring once we are back at speed.
        if mode == Mode::High && outstanding_demand > 0 {
            self.down.arm();
        }
        Decision::Hold
    }

    fn on_transition_start(&mut self) {
        self.down.disarm();
        self.up.disarm();
    }

    fn idle_skip_allowed(&self, mode: Mode, outstanding_demand: usize) -> bool {
        match mode {
            // High: no outstanding miss (else every tick refreshes
            // the down-FSM) and the down-FSM unarmed (else idle edges
            // advance its zero-issue run).
            Mode::High => outstanding_demand == 0 && !self.down.is_armed(),
            // Low: a miss still outstanding (else on_tick ramps up)
            // and the up-FSM unable to trigger on an idle cycle (its
            // window, if open, merely drains — batched exactly by
            // `UpFsm::skip_idle_cycles`).
            Mode::Low => outstanding_demand > 0 && !self.up.would_trigger_on_idle(),
            _ => false,
        }
    }

    fn skip_idle_cycles(&mut self, edges: u64, mode: Mode) {
        if mode == Mode::Low {
            self.up.skip_idle_cycles(edges);
        }
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            down_triggers: self.down.triggers(),
            down_expiries: self.down.expiries(),
            up_triggers: self.up.triggers(),
            up_expiries: self.up.expiries(),
        }
    }

    fn armed(&self) -> (bool, bool) {
        (self.down.is_armed(), self.up.is_armed())
    }

    fn clone_box(&self) -> Box<dyn DvsPolicy> {
        Box::new(self.clone())
    }
}

// ---- always-high ---------------------------------------------------

/// Never transitions: the enabled-but-inert control. A run under this
/// policy must be indistinguishable from the disabled baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysHigh;

impl DvsPolicy for AlwaysHigh {
    fn name(&self) -> &'static str {
        "always-high"
    }
    fn on_signal(&mut self, _sig: &VsvSignal, _mode: Mode) -> Decision {
        Decision::Hold
    }
    fn on_tick(&mut self, _now: u64, _outstanding: usize, _mode: Mode) -> Decision {
        Decision::Hold
    }
    fn on_cycle(&mut self, _issued: u32, _mode: Mode) -> Decision {
        Decision::Hold
    }
    fn on_mode_entered(&mut self, _mode: Mode, _now: u64, _outstanding: usize) -> Decision {
        Decision::Hold
    }
    fn idle_skip_allowed(&self, _mode: Mode, _outstanding: usize) -> bool {
        true
    }
    fn stats(&self) -> PolicyStats {
        PolicyStats::default()
    }
    fn clone_box(&self) -> Box<dyn DvsPolicy> {
        Box::new(*self)
    }
}

// ---- always-low ----------------------------------------------------

/// Ramps down on the first enabled tick and camps in [`Mode::Low`]
/// forever: the static half-speed, low-voltage floor. Maximum
/// theoretical supply savings, unbounded slowdown — the other end of
/// the design space from [`AlwaysHigh`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysLow {
    downs: u64,
}

impl DvsPolicy for AlwaysLow {
    fn name(&self) -> &'static str {
        "always-low"
    }
    fn on_signal(&mut self, _sig: &VsvSignal, _mode: Mode) -> Decision {
        Decision::Hold
    }
    fn on_tick(&mut self, _now: u64, _outstanding: usize, mode: Mode) -> Decision {
        if mode == Mode::High {
            self.downs += 1;
            Decision::RampDown
        } else {
            Decision::Hold
        }
    }
    fn on_cycle(&mut self, _issued: u32, _mode: Mode) -> Decision {
        Decision::Hold
    }
    fn on_mode_entered(&mut self, mode: Mode, _now: u64, _outstanding: usize) -> Decision {
        // Unreachable in practice (we never ramp up), but a policy
        // must be self-consistent under any controller state.
        if mode == Mode::High {
            self.downs += 1;
            Decision::RampDown
        } else {
            Decision::Hold
        }
    }
    fn idle_skip_allowed(&self, mode: Mode, _outstanding: usize) -> bool {
        // High is never skippable: the very next tick ramps down.
        mode == Mode::Low
    }
    fn stats(&self) -> PolicyStats {
        PolicyStats {
            down_triggers: self.downs,
            ..PolicyStats::default()
        }
    }
    fn clone_box(&self) -> Box<dyn DvsPolicy> {
        Box::new(*self)
    }
}

// ---- oracle-down ---------------------------------------------------

/// The clairvoyant upper bound: ramps down on the first zero-issue
/// cycle during which some demand miss's already-scheduled DRAM
/// return time proves the stall will outlast the full round-trip
/// transition cost (down distribution + ramp + up distribution +
/// ramp ≈ 30 ns), and ramps up only when the last demand miss has
/// returned. It never dives while the pipeline still issues (unlike
/// `immediate-down`), never waits out a monitoring window (unlike
/// `dual-fsm`), and never pays a mispredicted round trip on a stall
/// too short to refund it — knowledge no hardware policy has.
#[derive(Debug, Clone, Copy)]
pub struct OracleDown {
    /// Round-trip transition cost (ns): a stall shorter than this
    /// cannot pay for its own transitions.
    round_trip_ns: u64,
    /// Latest scheduled demand-return time seen so far. With every
    /// demand miss returned this is ≤ now, so it cannot trigger.
    latest_known_return: u64,
    /// Time of the last steady-mode tick (the controller calls
    /// `on_tick` before any `on_cycle` of the same nanosecond).
    last_now: u64,
    stats: PolicyStats,
}

impl OracleDown {
    /// Builds the oracle for a given round-trip transition cost.
    #[must_use]
    pub fn new(round_trip_ns: u64) -> Self {
        OracleDown {
            round_trip_ns,
            latest_known_return: 0,
            last_now: 0,
            stats: PolicyStats::default(),
        }
    }

    /// Whether some known demand return is provably far enough out to
    /// refund a round trip started now.
    fn stall_pays(&self) -> bool {
        self.latest_known_return.saturating_sub(self.last_now) >= self.round_trip_ns
    }
}

impl DvsPolicy for OracleDown {
    fn name(&self) -> &'static str {
        "oracle-down"
    }

    fn on_signal(&mut self, sig: &VsvSignal, mode: Mode) -> Decision {
        match *sig {
            VsvSignal::L2MissDetected {
                demand,
                earliest_return,
                ..
            } => {
                // Prefetch misses never stall the pipeline; only
                // demand returns may justify a dive.
                if demand {
                    if let Some(ret) = earliest_return {
                        self.latest_known_return = self.latest_known_return.max(ret);
                    }
                }
                Decision::Hold
            }
            VsvSignal::L2MissReturned {
                demand,
                outstanding_demand,
                ..
            } => {
                if demand && mode == Mode::Low && outstanding_demand == 0 {
                    self.stats.up_triggers += 1;
                    Decision::RampUp
                } else {
                    Decision::Hold
                }
            }
        }
    }

    fn on_tick(&mut self, now: u64, outstanding_demand: usize, mode: Mode) -> Decision {
        self.last_now = now;
        // Safety rule shared with the paper's policy: nothing left to
        // wait for (e.g. the last miss returned mid-transition), so
        // go back up.
        if mode == Mode::Low && outstanding_demand == 0 {
            Decision::RampUp
        } else {
            Decision::Hold
        }
    }

    fn on_cycle(&mut self, issued: u32, mode: Mode) -> Decision {
        if mode != Mode::High || issued > 0 {
            return Decision::Hold;
        }
        if self.stall_pays() {
            self.stats.down_triggers += 1;
            Decision::RampDown
        } else {
            // A stalled cycle the oracle declines to convert: either
            // no demand return is scheduled (MSHR-full retry) or the
            // remaining stall is too short to refund the trip.
            if self.latest_known_return > self.last_now {
                self.stats.down_expiries += 1;
            }
            Decision::Hold
        }
    }

    fn on_mode_entered(&mut self, _mode: Mode, now: u64, _outstanding: usize) -> Decision {
        self.last_now = now;
        // Even with misses still in flight, wait for the pipeline to
        // actually run dry: the next zero-issue cycle dives.
        Decision::Hold
    }

    fn idle_skip_allowed(&self, mode: Mode, outstanding_demand: usize) -> bool {
        match mode {
            // High with a demand miss in flight: a zero-issue cycle
            // may dive, so every cycle must be stepped. With nothing
            // outstanding every known return is in the past and
            // `on_cycle` provably holds.
            Mode::High => outstanding_demand == 0,
            // Low: on_tick ramps up the moment nothing is
            // outstanding.
            Mode::Low => outstanding_demand > 0,
            _ => false,
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }

    fn clone_box(&self) -> Box<dyn DvsPolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detected(at: u64, earliest_return: Option<u64>) -> VsvSignal {
        VsvSignal::L2MissDetected {
            demand: true,
            at,
            earliest_return,
        }
    }

    #[test]
    fn spec_names_round_trip() {
        for spec in PolicySpec::ALL {
            assert_eq!(PolicySpec::parse(spec.name()), Some(spec), "{spec:?}");
        }
        assert_eq!(PolicySpec::parse("bogus"), None);
        assert_eq!(PolicySpec::default(), PolicySpec::DualFsm);
    }

    #[test]
    fn built_policies_report_their_spec_name() {
        let cfg = crate::VsvConfig::with_fsms();
        for spec in PolicySpec::ALL {
            assert_eq!(spec.build(&cfg).name(), spec.name());
        }
    }

    #[test]
    fn oracle_declines_short_stalls_and_takes_long_ones() {
        let mut o = OracleDown::new(30);
        let _ = o.on_tick(100, 1, Mode::High);
        // Return in 10 ns: a zero-issue cycle is not worth the trip.
        let _ = o.on_signal(&detected(100, Some(110)), Mode::High);
        assert_eq!(o.on_cycle(0, Mode::High), Decision::Hold);
        assert_eq!(o.stats().down_expiries, 1);
        // Return in 80 ns: provably worth it — but never while the
        // pipeline still issues.
        let _ = o.on_signal(&detected(100, Some(180)), Mode::High);
        assert_eq!(o.on_cycle(4, Mode::High), Decision::Hold);
        assert_eq!(o.on_cycle(0, Mode::High), Decision::RampDown);
        assert_eq!(o.stats().down_triggers, 1);
        assert_eq!(o.stats().down_expiries, 1);
    }

    #[test]
    fn oracle_holds_on_unscheduled_stalls() {
        // MSHR-full retry: the miss has no scheduled return yet, so
        // nothing is provable and the oracle stays put.
        let mut o = OracleDown::new(30);
        let _ = o.on_tick(50, 1, Mode::High);
        let _ = o.on_signal(&detected(50, None), Mode::High);
        assert_eq!(o.on_cycle(0, Mode::High), Decision::Hold);
        assert_eq!(o.stats().down_triggers, 0);
    }

    #[test]
    fn oracle_waits_for_the_last_return() {
        let mut o = OracleDown::new(30);
        let ret = |outstanding| VsvSignal::L2MissReturned {
            demand: true,
            at: 0,
            outstanding_demand: outstanding,
        };
        assert_eq!(o.on_signal(&ret(2), Mode::Low), Decision::Hold);
        assert_eq!(o.on_signal(&ret(0), Mode::Low), Decision::RampUp);
        assert_eq!(o.stats().up_triggers, 1);
    }

    #[test]
    fn oracle_redips_on_the_next_stall_cycle_after_reaching_high() {
        let mut o = OracleDown::new(30);
        let _ = o.on_signal(&detected(0, Some(500)), Mode::High);
        // Reaching High with the miss still 400 ns out: the very next
        // zero-issue cycle dives again.
        assert_eq!(o.on_mode_entered(Mode::High, 100, 1), Decision::Hold);
        assert_eq!(o.on_cycle(0, Mode::High), Decision::RampDown);
        // Near the return the remaining stall no longer pays.
        let mut o = OracleDown::new(30);
        let _ = o.on_signal(&detected(0, Some(500)), Mode::High);
        assert_eq!(o.on_mode_entered(Mode::High, 490, 1), Decision::Hold);
        assert_eq!(o.on_cycle(0, Mode::High), Decision::Hold);
    }

    #[test]
    fn always_low_dives_and_stays() {
        let mut p = AlwaysLow::default();
        assert_eq!(p.on_tick(0, 0, Mode::High), Decision::RampDown);
        assert_eq!(p.on_tick(50, 0, Mode::Low), Decision::Hold);
        assert!(!p.idle_skip_allowed(Mode::High, 0));
        assert!(p.idle_skip_allowed(Mode::Low, 0));
        assert_eq!(p.stats().down_triggers, 1);
    }

    #[test]
    fn always_high_holds_everywhere() {
        let mut p = AlwaysHigh;
        assert_eq!(
            p.on_signal(&detected(0, Some(999)), Mode::High),
            Decision::Hold
        );
        assert_eq!(p.on_tick(0, 5, Mode::High), Decision::Hold);
        assert_eq!(p.on_cycle(0, Mode::High), Decision::Hold);
        assert!(p.idle_skip_allowed(Mode::High, 7));
        assert_eq!(p.stats(), PolicyStats::default());
    }
}
