//! The issue-rate-monitoring finite state machines (paper §4.2, §4.4).
//!
//! * [`DownFsm`] guards the high→low transition: armed when an L2
//!   demand miss is detected, it watches the issue rate for a short
//!   window (10 full-speed cycles) and fires only if the pipeline
//!   shows a run of zero-issue cycles — i.e. there is no ILP to lose.
//! * [`UpFsm`] guards the low→high transition: armed when an L2 miss
//!   returns while more misses are outstanding, it fires only if the
//!   pipeline shows a run of issuing cycles — i.e. there is ILP worth
//!   speeding up for.

/// Policy for entering the low-power mode.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownPolicy {
    /// Transition as soon as an L2 demand miss is detected (the
    /// paper's "without FSMs" configuration, and threshold 0 in
    /// Figure 5).
    Immediate,
    /// Monitor the issue rate and transition only on a run of
    /// `threshold` consecutive zero-issue cycles within a
    /// `period`-cycle window (full-speed cycles).
    Monitor {
        /// Consecutive zero-issue cycles required (Figure 5: 1/3/5).
        threshold: u32,
        /// Monitoring window length (paper: 10 cycles).
        period: u32,
    },
}

impl DownPolicy {
    /// The paper's best configuration: threshold 3, window 10 (§6.2).
    #[must_use]
    pub fn default_monitor() -> Self {
        DownPolicy::Monitor {
            threshold: 3,
            period: 10,
        }
    }
}

/// Policy for returning to the high-power mode.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpPolicy {
    /// Return when the *first* outstanding miss returns ("First-R" in
    /// §6.3; also the "without FSMs" configuration).
    FirstReturn,
    /// Return only when the *last* outstanding miss returns ("Last-R").
    LastReturn,
    /// Monitor the issue rate after a return and transition on a run
    /// of `threshold` consecutive issuing cycles within a
    /// `period`-cycle window (half-speed cycles). A return that leaves
    /// no misses outstanding always transitions immediately.
    Monitor {
        /// Consecutive issuing cycles required (Figure 6: 1/3/5).
        threshold: u32,
        /// Monitoring window length (paper: 10 half-speed cycles).
        period: u32,
    },
}

impl UpPolicy {
    /// The paper's best configuration: threshold 3, window 10 (§6.3).
    #[must_use]
    pub fn default_monitor() -> Self {
        UpPolicy::Monitor {
            threshold: 3,
            period: 10,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Window {
    cycles_left: u32,
    run: u32,
}

/// The high→low monitor.
///
/// # Examples
///
/// ```
/// use vsv::{DownFsm, DownPolicy};
///
/// let mut fsm = DownFsm::new(DownPolicy::Monitor { threshold: 2, period: 10 });
/// fsm.arm();
/// assert!(!fsm.on_cycle(3)); // issuing: no trigger
/// assert!(!fsm.on_cycle(0)); // first idle cycle
/// assert!(fsm.on_cycle(0));  // second consecutive idle: trigger
/// ```
#[derive(Debug, Clone)]
pub struct DownFsm {
    policy: DownPolicy,
    window: Option<Window>,
    pending_immediate: bool,
    triggers: u64,
    expiries: u64,
}

impl DownFsm {
    /// Creates an idle (unarmed) monitor.
    #[must_use]
    pub fn new(policy: DownPolicy) -> Self {
        DownFsm {
            policy,
            window: None,
            pending_immediate: false,
            triggers: 0,
            expiries: 0,
        }
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> DownPolicy {
        self.policy
    }

    /// Replaces the gating policy (ladder policies scale the evidence
    /// threshold with the depth of the step being considered). Takes
    /// effect from the next monitored cycle; trigger/expiry counters
    /// persist. An open `Monitor` window keeps its remaining cycles
    /// and zero-issue run.
    pub fn set_policy(&mut self, policy: DownPolicy) {
        self.policy = policy;
        if !matches!(policy, DownPolicy::Monitor { .. }) {
            self.window = None;
        }
        if !matches!(policy, DownPolicy::Immediate) {
            self.pending_immediate = false;
        }
    }

    /// Arms the monitor (an L2 demand miss was detected). Re-arming
    /// restarts the window: fresh misses renew the evidence.
    pub fn arm(&mut self) {
        match self.policy {
            DownPolicy::Immediate => self.pending_immediate = true,
            DownPolicy::Monitor { period, .. } => {
                self.window = Some(Window {
                    cycles_left: period,
                    run: 0,
                });
            }
        }
    }

    /// Keeps an open monitoring window from expiring (the L2 miss
    /// *signal* is a level: it stays asserted while a miss is
    /// outstanding, so monitoring persists). Opens a window if none is
    /// open. Unlike [`DownFsm::arm`], an in-progress zero-issue run is
    /// preserved. No effect under [`DownPolicy::Immediate`], which is
    /// edge-triggered by definition.
    pub fn refresh(&mut self) {
        if let DownPolicy::Monitor { period, .. } = self.policy {
            match self.window.as_mut() {
                Some(w) => w.cycles_left = period,
                None => {
                    self.window = Some(Window {
                        cycles_left: period,
                        run: 0,
                    });
                }
            }
        }
    }

    /// Whether the monitor is currently armed.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.window.is_some() || self.pending_immediate
    }

    /// Disarms without triggering (e.g. the mode changed under us).
    pub fn disarm(&mut self) {
        self.window = None;
        self.pending_immediate = false;
    }

    /// Feeds one full-speed pipeline cycle's issue count. Returns
    /// `true` when the low-power transition should start.
    pub fn on_cycle(&mut self, issued: u32) -> bool {
        if self.pending_immediate {
            self.pending_immediate = false;
            self.triggers += 1;
            return true;
        }
        let Some(w) = self.window.as_mut() else {
            return false;
        };
        if issued == 0 {
            w.run += 1;
        } else {
            w.run = 0;
        }
        let DownPolicy::Monitor { threshold, .. } = self.policy else {
            unreachable!("window implies Monitor policy");
        };
        // A threshold of 0 with a window means "trigger on the first
        // monitored cycle" — kept for completeness; Figure 5 models
        // threshold 0 as DownPolicy::Immediate.
        if w.run >= threshold {
            self.window = None;
            self.triggers += 1;
            return true;
        }
        w.cycles_left -= 1;
        if w.cycles_left == 0 {
            self.window = None;
            self.expiries += 1;
        }
        false
    }

    /// Number of transitions this FSM has signalled.
    #[must_use]
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Number of windows that expired without triggering (high ILP
    /// detected: power-saving opportunity declined).
    #[must_use]
    pub fn expiries(&self) -> u64 {
        self.expiries
    }
}

/// The low→high monitor.
///
/// # Examples
///
/// ```
/// use vsv::{UpFsm, UpPolicy};
///
/// let mut fsm = UpFsm::new(UpPolicy::Monitor { threshold: 2, period: 10 });
/// // A return that leaves misses outstanding arms the monitor...
/// assert!(!fsm.on_return(3));
/// assert!(!fsm.on_cycle(1));
/// assert!(fsm.on_cycle(2)); // two consecutive issuing cycles
/// // ...while a sole return transitions unconditionally.
/// let mut fsm = UpFsm::new(UpPolicy::Monitor { threshold: 2, period: 10 });
/// assert!(fsm.on_return(0));
/// ```
#[derive(Debug, Clone)]
pub struct UpFsm {
    policy: UpPolicy,
    window: Option<Window>,
    triggers: u64,
    expiries: u64,
}

impl UpFsm {
    /// Creates an idle monitor.
    #[must_use]
    pub fn new(policy: UpPolicy) -> Self {
        UpFsm {
            policy,
            window: None,
            triggers: 0,
            expiries: 0,
        }
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> UpPolicy {
        self.policy
    }

    /// Reports an L2 demand-miss return in low-power mode, with the
    /// number of demand misses still outstanding *after* the return.
    /// Returns `true` if the high-power transition should start now.
    pub fn on_return(&mut self, outstanding_after: usize) -> bool {
        match self.policy {
            UpPolicy::FirstReturn => {
                self.triggers += 1;
                true
            }
            UpPolicy::LastReturn => {
                if outstanding_after == 0 {
                    self.triggers += 1;
                    true
                } else {
                    false
                }
            }
            UpPolicy::Monitor { period, .. } => {
                if outstanding_after == 0 {
                    // Sole outstanding miss: nothing left to overlap
                    // with; ramp up unconditionally (§4.4).
                    self.window = None;
                    self.triggers += 1;
                    true
                } else {
                    self.window = Some(Window {
                        cycles_left: period,
                        run: 0,
                    });
                    false
                }
            }
        }
    }

    /// Whether a monitoring window is open.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.window.is_some()
    }

    /// Disarms without triggering.
    pub fn disarm(&mut self) {
        self.window = None;
    }

    /// Whether the next [`UpFsm::on_cycle`] with `issued == 0` would
    /// trigger the transition — only possible for an open window under
    /// a degenerate `threshold == 0` monitor (a zero-length run
    /// "completes" instantly).
    #[must_use]
    pub fn would_trigger_on_idle(&self) -> bool {
        self.window.is_some() && matches!(self.policy, UpPolicy::Monitor { threshold: 0, .. })
    }

    /// Batch-applies `cycles` consecutive idle (`issued == 0`)
    /// half-speed cycles: exactly what `cycles` calls to
    /// `on_cycle(0)` would do, provided none of them would trigger
    /// (guaranteed by the caller via
    /// [`UpFsm::would_trigger_on_idle`]). Idle cycles reset the run
    /// and drain the window toward expiry.
    pub fn skip_idle_cycles(&mut self, cycles: u64) {
        if cycles == 0 {
            return;
        }
        let Some(w) = self.window.as_mut() else {
            return;
        };
        debug_assert!(
            !matches!(self.policy, UpPolicy::Monitor { threshold: 0, .. }),
            "threshold-0 monitor would trigger, not expire"
        );
        if u64::from(w.cycles_left) <= cycles {
            self.window = None;
            self.expiries += 1;
        } else {
            w.cycles_left -= cycles as u32;
            w.run = 0;
        }
    }

    /// Feeds one half-speed pipeline cycle's issue count. Returns
    /// `true` when the high-power transition should start.
    pub fn on_cycle(&mut self, issued: u32) -> bool {
        let Some(w) = self.window.as_mut() else {
            return false;
        };
        if issued > 0 {
            w.run += 1;
        } else {
            w.run = 0;
        }
        let UpPolicy::Monitor { threshold, .. } = self.policy else {
            unreachable!("window implies Monitor policy");
        };
        if w.run >= threshold {
            self.window = None;
            self.triggers += 1;
            return true;
        }
        w.cycles_left -= 1;
        if w.cycles_left == 0 {
            self.window = None;
            self.expiries += 1;
        }
        false
    }

    /// Number of transitions this FSM has signalled.
    #[must_use]
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Number of windows that expired without triggering (no ILP
    /// found: stayed in low power).
    #[must_use]
    pub fn expiries(&self) -> u64 {
        self.expiries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn down_immediate_fires_on_next_cycle() {
        let mut f = DownFsm::new(DownPolicy::Immediate);
        assert!(!f.on_cycle(0), "unarmed: no trigger");
        f.arm();
        assert!(f.is_armed());
        assert!(f.on_cycle(5), "immediate fires regardless of issue rate");
        assert!(!f.on_cycle(0), "consumed");
        assert_eq!(f.triggers(), 1);
    }

    #[test]
    fn down_monitor_needs_consecutive_idle() {
        let mut f = DownFsm::new(DownPolicy::Monitor {
            threshold: 3,
            period: 10,
        });
        f.arm();
        assert!(!f.on_cycle(0));
        assert!(!f.on_cycle(0));
        assert!(!f.on_cycle(2), "issue breaks the run");
        assert!(!f.on_cycle(0));
        assert!(!f.on_cycle(0));
        assert!(f.on_cycle(0), "3 consecutive idle cycles");
    }

    #[test]
    fn down_monitor_expires_on_high_ilp() {
        let mut f = DownFsm::new(DownPolicy::Monitor {
            threshold: 3,
            period: 5,
        });
        f.arm();
        for _ in 0..5 {
            assert!(!f.on_cycle(4));
        }
        assert!(!f.is_armed(), "window expired");
        assert_eq!(f.expiries(), 1);
        assert!(!f.on_cycle(0), "expired window never fires");
    }

    #[test]
    fn down_rearm_restarts_window() {
        let mut f = DownFsm::new(DownPolicy::Monitor {
            threshold: 2,
            period: 3,
        });
        f.arm();
        assert!(!f.on_cycle(1));
        assert!(!f.on_cycle(1));
        f.arm(); // new miss: fresh window
        assert!(!f.on_cycle(0));
        assert!(f.on_cycle(0));
    }

    #[test]
    fn down_disarm() {
        let mut f = DownFsm::new(DownPolicy::default_monitor());
        f.arm();
        f.disarm();
        assert!(!f.is_armed());
        for _ in 0..20 {
            assert!(!f.on_cycle(0));
        }
    }

    #[test]
    fn up_first_return_always_fires() {
        let mut f = UpFsm::new(UpPolicy::FirstReturn);
        assert!(f.on_return(7));
        assert!(f.on_return(0));
        assert_eq!(f.triggers(), 2);
    }

    #[test]
    fn up_last_return_waits_for_zero() {
        let mut f = UpFsm::new(UpPolicy::LastReturn);
        assert!(!f.on_return(3));
        assert!(!f.on_return(1));
        assert!(f.on_return(0));
        assert_eq!(f.triggers(), 1);
    }

    #[test]
    fn up_monitor_sole_miss_fires_immediately() {
        let mut f = UpFsm::new(UpPolicy::default_monitor());
        assert!(f.on_return(0));
        assert!(!f.is_armed());
    }

    #[test]
    fn up_monitor_needs_consecutive_issue() {
        let mut f = UpFsm::new(UpPolicy::Monitor {
            threshold: 3,
            period: 10,
        });
        assert!(!f.on_return(2));
        assert!(!f.on_cycle(1));
        assert!(!f.on_cycle(1));
        assert!(!f.on_cycle(0), "idle breaks the run");
        assert!(!f.on_cycle(1));
        assert!(!f.on_cycle(1));
        assert!(f.on_cycle(1));
    }

    #[test]
    fn up_monitor_expires_when_pipeline_stays_idle() {
        let mut f = UpFsm::new(UpPolicy::Monitor {
            threshold: 1,
            period: 4,
        });
        assert!(!f.on_return(5));
        for _ in 0..4 {
            assert!(!f.on_cycle(0));
        }
        assert!(!f.is_armed());
        assert_eq!(f.expiries(), 1);
    }

    #[test]
    fn thresholds_order_trigger_aggressiveness() {
        // Lower up-threshold fires earlier on the same issue trace.
        let trace = [1u32, 0, 1, 1, 0, 1, 1, 1, 1, 1];
        let fired_at = |threshold| {
            let mut f = UpFsm::new(UpPolicy::Monitor {
                threshold,
                period: 10,
            });
            f.on_return(4);
            trace.iter().position(|&i| f.on_cycle(i))
        };
        let t1 = fired_at(1).expect("threshold 1 fires");
        let t3 = fired_at(3).expect("threshold 3 fires");
        assert!(t1 < t3, "threshold 1 at {t1}, threshold 3 at {t3}");
        assert!(fired_at(5).is_none() || fired_at(5) > fired_at(3));
    }
}
