//! Structured tracing: typed [`TraceEvent`]s delivered to a pluggable
//! [`TraceSink`], plus the original bounded per-nanosecond
//! [`ModeTrace`] ring behind Figure 2/3-style timeline plots.
//!
//! Both layers are off by default and cost nothing while off. The
//! event layer is enabled with [`crate::System::set_event_sink`] at a
//! chosen [`TraceLevel`]; the sample ring with
//! [`crate::System::enable_trace`]. Event emission sites and the full
//! field-by-field schema are documented in `docs/observability.md`.
//!
//! Determinism contract: for a fixed configuration and experiment
//! scale, the event stream is a pure function of the simulation — the
//! JSONL a [`JsonlSink`] writes is byte-identical across runs and
//! across sweep worker counts (`tests/trace_determinism.rs` pins
//! this).

use crate::controller::Mode;

/// Verbosity of the structured event stream. Levels are cumulative:
/// each includes everything below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Mode entries and window closes only — enough to reconstruct a
    /// residency timeline.
    Transitions,
    /// Plus FSM arm/fire/expiry, L2 miss detect/return, and
    /// fast-forward batches (the default for `--trace`).
    Events,
    /// Plus one [`TraceEvent::Sample`] per simulated nanosecond.
    /// Expensive; for short diagnostic windows.
    Full,
}

impl TraceLevel {
    /// The stable command-line spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Transitions => "transitions",
            TraceLevel::Events => "events",
            TraceLevel::Full => "full",
        }
    }

    /// Parses a command-line spelling ([`TraceLevel::name`]).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        [
            TraceLevel::Transitions,
            TraceLevel::Events,
            TraceLevel::Full,
        ]
        .into_iter()
        .find(|l| l.name() == s)
    }
}

/// Which issue-rate monitor an FSM event refers to.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmId {
    /// The high→low monitor ([`crate::DownFsm`]).
    Down,
    /// The low→high monitor ([`crate::UpFsm`]).
    Up,
}

/// One structured trace event. All times are simulated nanoseconds;
/// voltages are millivolts (integers, so JSONL bytes are
/// float-formatting-proof). See `docs/observability.md` for the
/// emission site of every variant.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Start-of-job marker a sweep writes before a job's events, so a
    /// concatenated multi-job JSONL file is self-describing.
    JobStart {
        /// Grid index of the job.
        job: u64,
        /// Workload name.
        workload: String,
        /// DVS policy name (`"disabled"` for the baseline).
        policy: String,
        /// FNV-1a digest of the job's `SystemConfig`
        /// ([`crate::config_digest`]).
        config_digest: String,
    },
    /// Start-of-core marker heading one core's events inside a
    /// multicore job's trace: every event after it (until the next
    /// `CoreStart` or the end of the job) belongs to voltage domain
    /// `core`. Single-core traces never contain one, so their byte
    /// streams are unchanged from the pre-multicore format.
    CoreStart {
        /// Core (voltage-domain) index, `0..cores`.
        core: u64,
    },
    /// The controller entered `mode` at time `at` (every Figure 2/3
    /// sub-phase appears: distribute, ramp, steady).
    ModeEntered {
        /// Entry time (ns).
        at: u64,
        /// The mode entered.
        mode: Mode,
        /// Variable-domain supply at entry, millivolts.
        vdd_mv: u32,
    },
    /// An issue-rate monitor armed (started watching for its
    /// trigger condition).
    FsmArmed {
        /// Arm time (ns).
        at: u64,
        /// Which monitor.
        fsm: FsmId,
    },
    /// The policy fired a transition decision (maps to
    /// [`crate::PolicyStats`] trigger counters).
    FsmFired {
        /// Fire time (ns).
        at: u64,
        /// Which monitor (down = ramp-down decision, up = ramp-up).
        fsm: FsmId,
    },
    /// A monitoring opportunity expired without firing (maps to
    /// [`crate::PolicyStats`] expiry counters).
    FsmExpired {
        /// Expiry time (ns).
        at: u64,
        /// Which monitor.
        fsm: FsmId,
    },
    /// An L2 miss was detected, one hit-latency after reaching the
    /// L2 (mirrors `vsv_mem::VsvSignal::L2MissDetected`).
    MissDetected {
        /// Detection time (ns).
        at: u64,
        /// Whether a demand access waits on the miss.
        demand: bool,
        /// Provable lower bound on the return time (simulator
        /// knowledge; `None` when the L2 MSHR file was full).
        earliest_return: Option<u64>,
    },
    /// An L2 miss's data returned to the processor.
    MissReturned {
        /// Return time (ns).
        at: u64,
        /// Whether a demand access was waiting on the miss.
        demand: bool,
        /// Demand misses still outstanding after this return.
        outstanding_demand: u64,
    },
    /// A quiescent-stall fast-forward batch: time jumped from `from`
    /// to `to` with `edges` idle pipeline edges batch-applied.
    FastForward {
        /// First skipped nanosecond.
        from: u64,
        /// First nanosecond *not* skipped.
        to: u64,
        /// Idle pipeline edges in the window.
        edges: u64,
    },
    /// A measurement window closed.
    WindowClosed {
        /// Close time (ns).
        at: u64,
        /// Instructions committed in the window.
        instructions: u64,
        /// The window's per-cycle issue histogram
        /// (`vsv_uarch::IssueHistogram::buckets` delta; `[8]` = 8 or
        /// wider).
        issue_buckets: [u64; 9],
    },
    /// A low-voltage cache read erred and will retry
    /// (`vsv_mem::ReadErrorEvent` with retries remaining).
    ReadError {
        /// When the erroneous delivery was attempted (ns).
        at: u64,
        /// Zero-based attempt number that failed.
        attempt: u8,
    },
    /// A read burned its whole retry budget; the run escalates to
    /// [`crate::SimError::UnrecoverableRead`].
    RetryExhausted {
        /// When the final attempt failed (ns).
        at: u64,
        /// Retries attempted before escalation.
        retries: u8,
    },
    /// The `error-backoff` policy engaged: the windowed retry rate
    /// crossed its threshold, so the policy climbs to its engage rung
    /// (the ladder midpoint; VDDH on two rails) and clamps dives to
    /// that rung until the cool-down re-arms it.
    BackoffEngaged {
        /// Engagement time (ns).
        at: u64,
    },
    /// One open-loop request arrived (traffic scenarios only; see
    /// `vsv_workloads::TrafficSpec`).
    RequestArrived {
        /// Arrival time (ns).
        at: u64,
        /// Queue depth including this request (1 = went straight
        /// into service).
        queued: u64,
    },
    /// One open-loop request finished service.
    RequestCompleted {
        /// Completion time (ns).
        at: u64,
        /// Nanoseconds spent queued before service began.
        wait_ns: u64,
        /// Total arrival → completion latency (ns); the arrival time
        /// is `at - latency_ns`.
        latency_ns: u64,
    },
    /// An MMPP ON (burst) phase began.
    BurstStart {
        /// Phase-boundary time (ns).
        at: u64,
    },
    /// One nanosecond of controller state ([`TraceLevel::Full`]
    /// only) — the event-stream twin of [`TraceSample`].
    Sample {
        /// Simulation time (ns).
        at: u64,
        /// Controller mode.
        mode: Mode,
        /// Effective variable-domain supply, millivolts.
        vdd_mv: u32,
        /// Whether a pipeline clock edge fired.
        edge: bool,
    },
}

impl TraceEvent {
    /// The minimum [`TraceLevel`] at which this event is emitted.
    #[must_use]
    pub fn level(&self) -> TraceLevel {
        match self {
            TraceEvent::JobStart { .. }
            | TraceEvent::CoreStart { .. }
            | TraceEvent::ModeEntered { .. }
            | TraceEvent::WindowClosed { .. } => TraceLevel::Transitions,
            TraceEvent::FsmArmed { .. }
            | TraceEvent::FsmFired { .. }
            | TraceEvent::FsmExpired { .. }
            | TraceEvent::MissDetected { .. }
            | TraceEvent::MissReturned { .. }
            | TraceEvent::FastForward { .. }
            | TraceEvent::ReadError { .. }
            | TraceEvent::RetryExhausted { .. }
            | TraceEvent::BackoffEngaged { .. }
            | TraceEvent::RequestArrived { .. }
            | TraceEvent::RequestCompleted { .. }
            | TraceEvent::BurstStart { .. } => TraceLevel::Events,
            TraceEvent::Sample { .. } => TraceLevel::Full,
        }
    }

    /// The stable variant name (the JSONL object key).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::JobStart { .. } => "JobStart",
            TraceEvent::CoreStart { .. } => "CoreStart",
            TraceEvent::ModeEntered { .. } => "ModeEntered",
            TraceEvent::FsmArmed { .. } => "FsmArmed",
            TraceEvent::FsmFired { .. } => "FsmFired",
            TraceEvent::FsmExpired { .. } => "FsmExpired",
            TraceEvent::MissDetected { .. } => "MissDetected",
            TraceEvent::MissReturned { .. } => "MissReturned",
            TraceEvent::FastForward { .. } => "FastForward",
            TraceEvent::WindowClosed { .. } => "WindowClosed",
            TraceEvent::ReadError { .. } => "ReadError",
            TraceEvent::RetryExhausted { .. } => "RetryExhausted",
            TraceEvent::BackoffEngaged { .. } => "BackoffEngaged",
            TraceEvent::RequestArrived { .. } => "RequestArrived",
            TraceEvent::RequestCompleted { .. } => "RequestCompleted",
            TraceEvent::BurstStart { .. } => "BurstStart",
            TraceEvent::Sample { .. } => "Sample",
        }
    }
}

/// Converts a supply voltage in volts to integer millivolts (the
/// trace-schema representation).
#[must_use]
pub fn vdd_mv(vdd: f64) -> u32 {
    let mv = (vdd * 1000.0).round();
    if mv <= 0.0 {
        0
    } else if mv >= f64::from(u32::MAX) {
        u32::MAX
    } else {
        // Rounded and range-checked just above.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            mv as u32
        }
    }
}

/// A destination for [`TraceEvent`]s. Implementations must be cheap
/// per call — the simulator records events from inside its stepping
/// loop (though only at event sites, never per nanosecond below
/// [`TraceLevel::Full`]).
pub trait TraceSink: Send + std::fmt::Debug {
    /// Receives one event. Level filtering has already happened: the
    /// sink sees exactly the events at or below the configured
    /// [`TraceLevel`].
    fn record(&mut self, event: &TraceEvent);

    /// Flushes any buffered output (called when the sink is detached;
    /// a no-op for in-memory sinks).
    fn flush(&mut self) {}
}

/// Discards every event: the zero-cost sink for proving the
/// instrumented hot loop is within noise of the uninstrumented one
/// (`crates/bench/src/bin/throughput.rs` gates this).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &TraceEvent) {}
}

/// A bounded in-memory ring of events: long runs keep the most
/// recent window, like [`ModeTrace`] but for the structured stream.
#[derive(Debug, Clone)]
pub struct RingSink {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be nonzero");
        RingSink {
            events: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Iterates oldest → newest.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped off the front so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event.clone());
    }
}

/// A shareable, unbounded in-memory buffer of *typed* events: hand a
/// clone (as a [`CaptureSink`]) to the simulator, keep one handle, and
/// [`EventBuf::take`] the events after the run. The multicore runner
/// uses one per core to capture each voltage domain's stream, then
/// replays them — each headed by a [`TraceEvent::CoreStart`] marker —
/// into the caller's single sink.
#[derive(Debug, Clone, Default)]
pub struct EventBuf(std::sync::Arc<std::sync::Mutex<Vec<TraceEvent>>>);

impl EventBuf {
    /// Takes the accumulated events, leaving the buffer empty.
    #[must_use]
    pub fn take(&self) -> Vec<TraceEvent> {
        match self.0.lock() {
            Ok(mut b) => std::mem::take(&mut *b),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        }
    }

    /// Events accumulated so far.
    #[must_use]
    pub fn len(&self) -> usize {
        match self.0.lock() {
            Ok(b) => b.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, event: TraceEvent) {
        match self.0.lock() {
            Ok(mut b) => b.push(event),
            Err(poisoned) => poisoned.into_inner().push(event),
        }
    }
}

/// A [`TraceSink`] recording every event, in order, into a shared
/// [`EventBuf`].
#[derive(Debug, Clone, Default)]
pub struct CaptureSink(EventBuf);

impl CaptureSink {
    /// A sink writing into `buf`.
    #[must_use]
    pub fn new(buf: EventBuf) -> Self {
        CaptureSink(buf)
    }
}

impl TraceSink for CaptureSink {
    fn record(&mut self, event: &TraceEvent) {
        self.0.push(event.clone());
    }
}

/// A shareable in-memory byte buffer implementing [`std::io::Write`]:
/// hand a clone to a [`JsonlSink`] moved into the simulator, keep one
/// handle, and [`SharedBuf::take`] the bytes after the run.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl SharedBuf {
    /// Takes the accumulated bytes, leaving the buffer empty.
    #[must_use]
    pub fn take(&self) -> Vec<u8> {
        match self.0.lock() {
            Ok(mut b) => std::mem::take(&mut *b),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        }
    }

    /// Bytes accumulated so far.
    #[must_use]
    pub fn len(&self) -> usize {
        match self.0.lock() {
            Ok(b) => b.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self.0.lock() {
            Ok(mut b) => b.extend_from_slice(buf),
            Err(poisoned) => poisoned.into_inner().extend_from_slice(buf),
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Writes one JSON object per event, newline-terminated (JSONL). The
/// serialization is deterministic, so for a fixed configuration the
/// emitted bytes are identical across runs and worker counts.
///
/// Write or serialization failures are latched into
/// [`JsonlSink::error`] instead of panicking (the simulator must not
/// die because a trace disk filled up); subsequent events are
/// dropped.
#[cfg(feature = "serde")]
pub struct JsonlSink<W: std::io::Write + Send> {
    writer: W,
    error: Option<String>,
}

#[cfg(feature = "serde")]
impl<W: std::io::Write + Send> JsonlSink<W> {
    /// Builds the sink over a writer.
    #[must_use]
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            error: None,
        }
    }

    /// The first write/serialization error, if any occurred.
    #[must_use]
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }
}

#[cfg(feature = "serde")]
impl<W: std::io::Write + Send> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

#[cfg(feature = "serde")]
impl<W: std::io::Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        match serde_json::to_string(event) {
            Ok(json) => {
                if let Err(e) = writeln!(self.writer, "{json}") {
                    self.error = Some(e.to_string());
                }
            }
            Err(e) => self.error = Some(e.to_string()),
        }
    }

    fn flush(&mut self) {
        if let Err(e) = self.writer.flush() {
            if self.error.is_none() {
                self.error = Some(e.to_string());
            }
        }
    }
}

/// One nanosecond of controller state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSample {
    /// Simulation time, nanoseconds.
    pub ns: u64,
    /// Controller mode during this nanosecond.
    pub mode: Mode,
    /// Effective variable-domain supply voltage.
    pub vdd: f64,
    /// Whether a pipeline clock edge fired this nanosecond.
    pub edge: bool,
}

/// A bounded ring buffer of [`TraceSample`]s.
///
/// # Examples
///
/// ```
/// use vsv::{Mode, ModeTrace, TraceSample};
///
/// let mut t = ModeTrace::new(2);
/// for ns in 0..3 {
///     t.push(TraceSample { ns, mode: Mode::High, vdd: 1.8, edge: true });
/// }
/// let samples: Vec<_> = t.iter().map(|s| s.ns).collect();
/// assert_eq!(samples, vec![1, 2], "oldest sample dropped");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModeTrace {
    samples: std::collections::VecDeque<TraceSample>,
    capacity: usize,
    dropped: u64,
}

impl ModeTrace {
    /// Creates a trace holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be nonzero");
        ModeTrace {
            samples: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a sample, dropping the oldest if full.
    pub fn push(&mut self, sample: TraceSample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceSample> {
        self.samples.iter()
    }

    /// Samples currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples dropped off the front so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The mode changes in the retained window, as `(ns, mode)` pairs
    /// (the first retained sample is always included).
    #[must_use]
    pub fn transitions(&self) -> Vec<(u64, Mode)> {
        let mut out = Vec::new();
        let mut last: Option<Mode> = None;
        for s in &self.samples {
            if last != Some(s.mode) {
                out.push((s.ns, s.mode));
                last = Some(s.mode);
            }
        }
        out
    }

    /// Renders the retained window as a compact one-char-per-ns strip:
    /// `H` high, `d`/`D` down-distribute/ramp-down, `L` low,
    /// `u`/`U` up-distribute/ramp-up. Useful in test failures and
    /// debugging sessions.
    #[must_use]
    pub fn strip(&self) -> String {
        self.samples.iter().map(|s| s.mode.strip_char()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ns: u64, mode: Mode) -> TraceSample {
        TraceSample {
            ns,
            mode,
            vdd: 1.8,
            edge: true,
        }
    }

    #[test]
    fn ring_buffer_caps_and_counts_drops() {
        let mut t = ModeTrace::new(3);
        for ns in 0..10 {
            t.push(sample(ns, Mode::High));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        let first = t.iter().next().expect("nonempty");
        assert_eq!(first.ns, 7);
    }

    #[test]
    fn transitions_collapse_runs() {
        let mut t = ModeTrace::new(16);
        t.push(sample(0, Mode::High));
        t.push(sample(1, Mode::High));
        t.push(sample(2, Mode::DownDistribute));
        t.push(sample(3, Mode::RampDown));
        t.push(sample(4, Mode::RampDown));
        t.push(sample(5, Mode::Low));
        assert_eq!(
            t.transitions(),
            vec![
                (0, Mode::High),
                (2, Mode::DownDistribute),
                (3, Mode::RampDown),
                (5, Mode::Low)
            ]
        );
    }

    #[test]
    fn strip_renders_one_char_per_sample() {
        let mut t = ModeTrace::new(8);
        for (ns, m) in [
            (0, Mode::High),
            (1, Mode::DownDistribute),
            (2, Mode::RampDown),
            (3, Mode::Low),
            (4, Mode::UpDistribute),
            (5, Mode::RampUp),
        ] {
            t.push(sample(ns, m));
        }
        assert_eq!(t.strip(), "HdDLuU");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = ModeTrace::new(0);
    }
}

#[cfg(test)]
mod event_tests {
    use super::*;

    fn fired(at: u64) -> TraceEvent {
        TraceEvent::FsmFired {
            at,
            fsm: FsmId::Down,
        }
    }

    #[test]
    fn levels_are_cumulative_and_parse_round_trips() {
        assert!(TraceLevel::Transitions < TraceLevel::Events);
        assert!(TraceLevel::Events < TraceLevel::Full);
        for l in [
            TraceLevel::Transitions,
            TraceLevel::Events,
            TraceLevel::Full,
        ] {
            assert_eq!(TraceLevel::parse(l.name()), Some(l));
        }
        assert_eq!(TraceLevel::parse("verbose"), None);
    }

    #[test]
    fn event_levels_and_kinds_are_consistent() {
        let sample = TraceEvent::Sample {
            at: 0,
            mode: Mode::High,
            vdd_mv: 1800,
            edge: true,
        };
        assert_eq!(sample.level(), TraceLevel::Full);
        assert_eq!(sample.kind(), "Sample");
        let entered = TraceEvent::ModeEntered {
            at: 4,
            mode: Mode::RampDown,
            vdd_mv: 1800,
        };
        assert_eq!(entered.level(), TraceLevel::Transitions);
        assert_eq!(fired(9).level(), TraceLevel::Events);
    }

    #[test]
    fn vdd_mv_rounds_to_millivolts() {
        assert_eq!(vdd_mv(1.8), 1800);
        assert_eq!(vdd_mv(1.2), 1200);
        assert_eq!(vdd_mv(1.2345), 1235);
        assert_eq!(vdd_mv(-0.5), 0);
    }

    #[test]
    fn ring_sink_caps_and_counts_drops() {
        let mut ring = RingSink::new(2);
        for at in 0..5 {
            ring.record(&fired(at));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let ats: Vec<u64> = ring
            .events()
            .map(|e| match e {
                TraceEvent::FsmFired { at, .. } => *at,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(ats, vec![3, 4]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_ring_panics() {
        let _ = RingSink::new(0);
    }

    #[test]
    fn null_sink_discards() {
        let mut null = NullSink;
        null.record(&fired(1));
        null.flush();
    }

    #[test]
    fn shared_buf_takes_written_bytes() {
        use std::io::Write as _;
        let buf = SharedBuf::default();
        let mut handle = buf.clone();
        handle.write_all(b"hello").expect("in-memory write");
        assert_eq!(buf.len(), 5);
        assert_eq!(buf.take(), b"hello");
        assert!(buf.is_empty());
    }

    #[cfg(feature = "serde")]
    #[test]
    fn jsonl_sink_writes_one_line_per_event_and_round_trips() {
        let buf = SharedBuf::default();
        let mut sink = JsonlSink::new(buf.clone());
        sink.record(&fired(7));
        sink.record(&TraceEvent::MissDetected {
            at: 9,
            demand: true,
            earliest_return: Some(120),
        });
        sink.flush();
        assert!(sink.error().is_none());
        let text = String::from_utf8(buf.take()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let back: TraceEvent = serde_json::from_str(lines[1]).expect("parses");
        assert_eq!(
            back,
            TraceEvent::MissDetected {
                at: 9,
                demand: true,
                earliest_return: Some(120),
            }
        );
    }
}
