//! Bounded mode/voltage tracing — the data behind Figure 2/3-style
//! timeline plots.
//!
//! Tracing is off by default (it costs a few bytes per simulated
//! nanosecond). Enable it with [`crate::System::enable_trace`]; the
//! trace is a ring buffer, so long runs keep the most recent window.

use crate::controller::Mode;

/// One nanosecond of controller state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSample {
    /// Simulation time, nanoseconds.
    pub ns: u64,
    /// Controller mode during this nanosecond.
    pub mode: Mode,
    /// Effective variable-domain supply voltage.
    pub vdd: f64,
    /// Whether a pipeline clock edge fired this nanosecond.
    pub edge: bool,
}

/// A bounded ring buffer of [`TraceSample`]s.
///
/// # Examples
///
/// ```
/// use vsv::{Mode, ModeTrace, TraceSample};
///
/// let mut t = ModeTrace::new(2);
/// for ns in 0..3 {
///     t.push(TraceSample { ns, mode: Mode::High, vdd: 1.8, edge: true });
/// }
/// let samples: Vec<_> = t.iter().map(|s| s.ns).collect();
/// assert_eq!(samples, vec![1, 2], "oldest sample dropped");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModeTrace {
    samples: std::collections::VecDeque<TraceSample>,
    capacity: usize,
    dropped: u64,
}

impl ModeTrace {
    /// Creates a trace holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be nonzero");
        ModeTrace {
            samples: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a sample, dropping the oldest if full.
    pub fn push(&mut self, sample: TraceSample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceSample> {
        self.samples.iter()
    }

    /// Samples currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples dropped off the front so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The mode changes in the retained window, as `(ns, mode)` pairs
    /// (the first retained sample is always included).
    #[must_use]
    pub fn transitions(&self) -> Vec<(u64, Mode)> {
        let mut out = Vec::new();
        let mut last: Option<Mode> = None;
        for s in &self.samples {
            if last != Some(s.mode) {
                out.push((s.ns, s.mode));
                last = Some(s.mode);
            }
        }
        out
    }

    /// Renders the retained window as a compact one-char-per-ns strip:
    /// `H` high, `d`/`D` down-distribute/ramp-down, `L` low,
    /// `u`/`U` up-distribute/ramp-up. Useful in test failures and
    /// debugging sessions.
    #[must_use]
    pub fn strip(&self) -> String {
        self.samples
            .iter()
            .map(|s| match s.mode {
                Mode::High => 'H',
                Mode::DownDistribute => 'd',
                Mode::RampDown => 'D',
                Mode::Low => 'L',
                Mode::UpDistribute => 'u',
                Mode::RampUp => 'U',
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ns: u64, mode: Mode) -> TraceSample {
        TraceSample {
            ns,
            mode,
            vdd: 1.8,
            edge: true,
        }
    }

    #[test]
    fn ring_buffer_caps_and_counts_drops() {
        let mut t = ModeTrace::new(3);
        for ns in 0..10 {
            t.push(sample(ns, Mode::High));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        let first = t.iter().next().expect("nonempty");
        assert_eq!(first.ns, 7);
    }

    #[test]
    fn transitions_collapse_runs() {
        let mut t = ModeTrace::new(16);
        t.push(sample(0, Mode::High));
        t.push(sample(1, Mode::High));
        t.push(sample(2, Mode::DownDistribute));
        t.push(sample(3, Mode::RampDown));
        t.push(sample(4, Mode::RampDown));
        t.push(sample(5, Mode::Low));
        assert_eq!(
            t.transitions(),
            vec![
                (0, Mode::High),
                (2, Mode::DownDistribute),
                (3, Mode::RampDown),
                (5, Mode::Low)
            ]
        );
    }

    #[test]
    fn strip_renders_one_char_per_sample() {
        let mut t = ModeTrace::new(8);
        for (ns, m) in [
            (0, Mode::High),
            (1, Mode::DownDistribute),
            (2, Mode::RampDown),
            (3, Mode::Low),
            (4, Mode::UpDistribute),
            (5, Mode::RampUp),
        ] {
            t.push(sample(ns, m));
        }
        assert_eq!(t.strip(), "HdDLuU");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = ModeTrace::new(0);
    }
}
