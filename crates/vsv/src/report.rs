//! Result types and paper-style derived metrics.

use vsv_power::EnergyBreakdown;
use vsv_uarch::IssueHistogram;

use crate::controller::ModeStats;

/// Measured outcome of one simulation window.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Workload name (empty if unset).
    pub workload: String,
    /// Instructions committed in the window.
    pub instructions: u64,
    /// Wall-clock nanoseconds elapsed (= full-speed cycles at 1 GHz).
    pub elapsed_ns: u64,
    /// Pipeline clock edges in the window (fewer than `elapsed_ns`
    /// when VSV ran at half speed).
    pub pipeline_cycles: u64,
    /// Committed instructions per full-speed-clock cycle — the paper's
    /// IPC metric (Table 2).
    pub ipc: f64,
    /// L2 *demand* misses per 1000 instructions — the paper's MR.
    pub mpki: f64,
    /// L2 prefetch misses per 1000 instructions.
    pub prefetch_mpki: f64,
    /// Total energy dissipated, picojoules.
    pub energy_pj: f64,
    /// Per-structure energy breakdown (Wattch-style view; render with
    /// [`EnergyBreakdown::table`]).
    pub energy: EnergyBreakdown,
    /// Average total processor power, watts.
    pub avg_power_w: f64,
    /// Mode residency and transition counts.
    pub mode: ModeStats,
    /// Down-FSM transitions signalled.
    pub down_triggers: u64,
    /// Down-FSM windows that expired (high ILP detected).
    pub down_expiries: u64,
    /// Up-FSM transitions signalled.
    pub up_triggers: u64,
    /// Up-FSM windows that expired (no ILP found).
    pub up_expiries: u64,
    /// Cycles in which nothing issued.
    pub zero_issue_cycles: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Branches committed.
    pub branches: u64,
    /// Instructions issued per pipeline cycle, bucketed — the
    /// statistic the down/up FSMs sample.
    pub issue_histogram: IssueHistogram,
    /// Erroneous low-voltage cache reads detected in the window
    /// (always 0 with the error model off).
    pub read_errors: u64,
    /// Read retries issued in the window (errors that still had retry
    /// budget; an exhausted budget ends the run with
    /// `SimError::UnrecoverableRead` instead).
    pub read_retries: u64,
    /// The window's reliability outcome against the configured
    /// [`SloSpec`] (`None` when no SLO was set).
    pub slo: Option<SloOutcome>,
}

impl RunResult {
    /// Fraction of cycles with zero issue — the signal VSV's FSMs key
    /// off.
    #[must_use]
    pub fn zero_issue_fraction(&self) -> f64 {
        if self.pipeline_cycles == 0 {
            0.0
        } else {
            self.zero_issue_cycles as f64 / self.pipeline_cycles as f64
        }
    }
}

/// The paper's two headline metrics for a VSV run against its
/// baseline (Figures 4–7).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// Increase in execution time, percent of the baseline
    /// (Figure 4 top).
    pub perf_degradation_pct: f64,
    /// Reduction in average total processor power, percent of the
    /// baseline (Figure 4 bottom).
    pub power_saving_pct: f64,
}

impl Comparison {
    /// Compares a VSV run against its baseline run (same workload,
    /// same instruction window).
    ///
    /// # Panics
    ///
    /// Panics if the baseline window is degenerate (zero time/power).
    #[must_use]
    pub fn of(baseline: &RunResult, vsv: &RunResult) -> Self {
        assert!(baseline.elapsed_ns > 0, "baseline ran for zero time");
        assert!(baseline.avg_power_w > 0.0, "baseline burned zero power");
        Comparison {
            perf_degradation_pct: (vsv.elapsed_ns as f64 / baseline.elapsed_ns as f64 - 1.0)
                * 100.0,
            power_saving_pct: (1.0 - vsv.avg_power_w / baseline.avg_power_w) * 100.0,
        }
    }
}

/// A run's reliability service-level objective: ceilings on how much
/// low-voltage timing-error churn the modeled machine may impose on
/// the workload. Checked per measurement window against the observed
/// retry stream; a violated window marks its [`RunResult::slo`] (and
/// sweep record) non-compliant and bumps the `slo_violations` counter.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSpec {
    /// Maximum tolerated read-retry rate, in retries per million
    /// successful architectural fills.
    pub max_retry_rate_ppm: u64,
    /// Maximum tolerated 99th-percentile *added* fill latency from
    /// error detection and retry, in nanoseconds (each retry adds a
    /// fixed detect + reissue delay; see `vsv-mem`).
    pub max_added_latency_p99_ns: u64,
}

impl SloSpec {
    /// An SLO with the given ceilings.
    #[must_use]
    pub fn new(max_retry_rate_ppm: u64, max_added_latency_p99_ns: u64) -> Self {
        SloSpec {
            max_retry_rate_ppm,
            max_added_latency_p99_ns,
        }
    }

    /// Judges one window's observed reliability numbers against this
    /// objective.
    #[must_use]
    pub fn evaluate(&self, retry_rate_ppm: u64, added_latency_p99_ns: u64) -> SloOutcome {
        SloOutcome {
            retry_rate_ppm,
            added_latency_p99_ns,
            compliant: retry_rate_ppm <= self.max_retry_rate_ppm
                && added_latency_p99_ns <= self.max_added_latency_p99_ns,
        }
    }
}

/// One window's measured reliability, judged against an [`SloSpec`].
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloOutcome {
    /// Observed read-retry rate: retries per million successful
    /// architectural fills (0 when the window had no fills).
    pub retry_rate_ppm: u64,
    /// Observed 99th-percentile added fill latency, ns.
    pub added_latency_p99_ns: u64,
    /// Whether both ceilings held.
    pub compliant: bool,
}

impl std::fmt::Display for SloOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "retry rate {} ppm, p99 added latency {} ns — {}",
            self.retry_rate_ppm,
            self.added_latency_p99_ns,
            if self.compliant {
                "compliant"
            } else {
                "VIOLATED"
            }
        )
    }
}

/// Arithmetic mean of comparisons (the paper averages percentages
/// across benchmarks).
#[must_use]
pub fn mean_comparison(comparisons: &[Comparison]) -> Comparison {
    if comparisons.is_empty() {
        return Comparison {
            perf_degradation_pct: 0.0,
            power_saving_pct: 0.0,
        };
    }
    let n = comparisons.len() as f64;
    Comparison {
        perf_degradation_pct: comparisons
            .iter()
            .map(|c| c.perf_degradation_pct)
            .sum::<f64>()
            / n,
        power_saving_pct: comparisons.iter().map(|c| c.power_saving_pct).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn result(elapsed_ns: u64, power: f64) -> RunResult {
        RunResult {
            workload: String::new(),
            instructions: 1000,
            elapsed_ns,
            pipeline_cycles: elapsed_ns,
            ipc: 1.0,
            mpki: 0.0,
            prefetch_mpki: 0.0,
            energy_pj: power * elapsed_ns as f64 * 1e3,
            energy: EnergyBreakdown {
                per_structure_pj: [0.0; 14],
                ramp_pj: 0.0,
                level_converter_pj: 0.0,
                uncore_pj: 0.0,
                leakage_pj: 0.0,
                cycles: 0,
            },
            avg_power_w: power,
            mode: ModeStats::default(),
            down_triggers: 0,
            down_expiries: 0,
            up_triggers: 0,
            up_expiries: 0,
            zero_issue_cycles: 0,
            mispredicts: 0,
            branches: 0,
            issue_histogram: IssueHistogram::default(),
            read_errors: 0,
            read_retries: 0,
            slo: None,
        }
    }

    #[test]
    fn comparison_signs_follow_paper_convention() {
        let base = result(1000, 40.0);
        let vsv = result(1020, 32.0);
        let c = Comparison::of(&base, &vsv);
        assert!((c.perf_degradation_pct - 2.0).abs() < 1e-9);
        assert!((c.power_saving_pct - 20.0).abs() < 1e-9);
    }

    #[test]
    fn faster_and_hungrier_goes_negative() {
        let base = result(1000, 40.0);
        let vsv = result(990, 44.0);
        let c = Comparison::of(&base, &vsv);
        assert!(c.perf_degradation_pct < 0.0);
        assert!(c.power_saving_pct < 0.0);
    }

    #[test]
    fn mean_comparison_averages() {
        let cs = [
            Comparison {
                perf_degradation_pct: 2.0,
                power_saving_pct: 20.0,
            },
            Comparison {
                perf_degradation_pct: 4.0,
                power_saving_pct: 40.0,
            },
        ];
        let m = mean_comparison(&cs);
        assert!((m.perf_degradation_pct - 3.0).abs() < 1e-9);
        assert!((m.power_saving_pct - 30.0).abs() < 1e-9);
        let empty = mean_comparison(&[]);
        assert_eq!(empty.power_saving_pct, 0.0);
    }

    #[test]
    fn slo_evaluation_checks_both_ceilings() {
        let spec = SloSpec::new(500, 16);
        assert!(spec.evaluate(500, 16).compliant, "at the ceilings is ok");
        assert!(!spec.evaluate(501, 0).compliant, "retry rate over");
        assert!(!spec.evaluate(0, 17).compliant, "latency over");
        let o = spec.evaluate(42, 8);
        assert_eq!(o.retry_rate_ppm, 42);
        assert_eq!(o.added_latency_p99_ns, 8);
        assert!(o.to_string().contains("compliant"), "{o}");
        assert!(spec.evaluate(9999, 0).to_string().contains("VIOLATED"));
    }

    #[test]
    fn run_display_includes_slo_line_only_when_set() {
        let mut r = result(100, 10.0);
        assert!(!r.to_string().contains("slo:"));
        r.slo = Some(SloSpec::new(10, 10).evaluate(3, 0));
        assert!(r.to_string().contains("slo: retry rate 3 ppm"));
    }

    #[test]
    fn zero_issue_fraction() {
        let mut r = result(100, 10.0);
        r.zero_issue_cycles = 25;
        assert!((r.zero_issue_fraction() - 0.25).abs() < 1e-12);
    }
}

impl std::fmt::Display for RunResult {
    /// A compact multi-line summary, suitable for logs and examples.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} insts in {} ns (IPC {:.2}, MR {:.1})",
            if self.workload.is_empty() {
                "run"
            } else {
                &self.workload
            },
            self.instructions,
            self.elapsed_ns,
            self.ipc,
            self.mpki
        )?;
        writeln!(
            f,
            "  power {:.1} W over {} pipeline cycles ({:.0}% zero-issue)",
            self.avg_power_w,
            self.pipeline_cycles,
            self.zero_issue_fraction() * 100.0
        )?;
        write!(
            f,
            "  vsv: {:.0}% low residency, {} down / {} up transitions",
            self.mode.low_residency() * 100.0,
            self.mode.down_transitions,
            self.mode.up_transitions
        )?;
        if let Some(slo) = &self.slo {
            write!(
                f,
                "\n  reliability: {} errors / {} retries; slo: {slo}",
                self.read_errors, self.read_retries
            )?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Comparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1}% power saved at {:.1}% performance degradation",
            self.power_saving_pct, self.perf_degradation_pct
        )
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn run_result_display_is_informative() {
        let mut r = tests::result(1000, 40.0);
        r.workload = "mcf".to_owned();
        let s = r.to_string();
        assert!(s.contains("mcf"));
        assert!(s.contains("40.0 W"));
        assert!(!s.is_empty());
    }

    #[test]
    fn unnamed_run_display_is_nonempty() {
        let r = tests::result(10, 1.0);
        assert!(r.to_string().contains("run:"));
    }

    #[test]
    fn comparison_display() {
        let c = Comparison {
            perf_degradation_pct: 2.0,
            power_saving_pct: 20.7,
        };
        assert_eq!(
            c.to_string(),
            "20.7% power saved at 2.0% performance degradation"
        );
    }
}
