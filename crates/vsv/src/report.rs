//! Result types and paper-style derived metrics.

use vsv_power::EnergyBreakdown;
use vsv_uarch::IssueHistogram;

use crate::controller::ModeStats;

/// Measured outcome of one simulation window.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Workload name (empty if unset).
    pub workload: String,
    /// Instructions committed in the window.
    pub instructions: u64,
    /// Wall-clock nanoseconds elapsed (= full-speed cycles at 1 GHz).
    pub elapsed_ns: u64,
    /// Pipeline clock edges in the window (fewer than `elapsed_ns`
    /// when VSV ran at half speed).
    pub pipeline_cycles: u64,
    /// Committed instructions per full-speed-clock cycle — the paper's
    /// IPC metric (Table 2).
    pub ipc: f64,
    /// L2 *demand* misses per 1000 instructions — the paper's MR.
    pub mpki: f64,
    /// L2 prefetch misses per 1000 instructions.
    pub prefetch_mpki: f64,
    /// Total energy dissipated, picojoules.
    pub energy_pj: f64,
    /// Per-structure energy breakdown (Wattch-style view; render with
    /// [`EnergyBreakdown::table`]).
    pub energy: EnergyBreakdown,
    /// Average total processor power, watts.
    pub avg_power_w: f64,
    /// Mode residency and transition counts.
    pub mode: ModeStats,
    /// Down-FSM transitions signalled.
    pub down_triggers: u64,
    /// Down-FSM windows that expired (high ILP detected).
    pub down_expiries: u64,
    /// Up-FSM transitions signalled.
    pub up_triggers: u64,
    /// Up-FSM windows that expired (no ILP found).
    pub up_expiries: u64,
    /// Cycles in which nothing issued.
    pub zero_issue_cycles: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Branches committed.
    pub branches: u64,
    /// Instructions issued per pipeline cycle, bucketed — the
    /// statistic the down/up FSMs sample.
    pub issue_histogram: IssueHistogram,
    /// Erroneous low-voltage cache reads detected in the window
    /// (always 0 with the error model off).
    pub read_errors: u64,
    /// Read retries issued in the window (errors that still had retry
    /// budget; an exhausted budget ends the run with
    /// `SimError::UnrecoverableRead` instead).
    pub read_retries: u64,
    /// Open-loop requests that arrived in the window (0 with traffic
    /// off).
    #[cfg_attr(feature = "serde", serde(default))]
    pub requests_arrived: u64,
    /// Open-loop requests that completed service in the window.
    #[cfg_attr(feature = "serde", serde(default))]
    pub requests_completed: u64,
    /// Requests still queued when the window closed (nonzero backlog
    /// = offered load exceeded service capacity).
    #[cfg_attr(feature = "serde", serde(default))]
    pub request_backlog: u64,
    /// Median request latency: the log2-bucket upper edge holding the
    /// window's 50th-percentile arrival → completion latency, ns
    /// (0 with traffic off or no completions).
    #[cfg_attr(feature = "serde", serde(default))]
    pub request_p50_ns: u64,
    /// 99th-percentile request latency (same bucket-edge convention).
    #[cfg_attr(feature = "serde", serde(default))]
    pub request_p99_ns: u64,
    /// 99.9th-percentile request latency (same convention).
    #[cfg_attr(feature = "serde", serde(default))]
    pub request_p999_ns: u64,
    /// The window's reliability outcome against the configured
    /// [`SloSpec`] (`None` when no SLO was set).
    pub slo: Option<SloOutcome>,
    /// Per-core measured windows when the run simulated a multicore
    /// chip ([`SystemConfig::cores`](crate::SystemConfig) > 1): entry
    /// `i` is core `i`'s own voltage domain over the shared fabric,
    /// and the top-level fields are the chip-wide aggregate (summed
    /// work and energy over the longest core's window). Empty for
    /// single-core runs.
    #[cfg_attr(feature = "serde", serde(default))]
    pub core_results: Vec<RunResult>,
}

impl RunResult {
    /// Fraction of cycles with zero issue — the signal VSV's FSMs key
    /// off.
    #[must_use]
    pub fn zero_issue_fraction(&self) -> f64 {
        if self.pipeline_cycles == 0 {
            0.0
        } else {
            self.zero_issue_cycles as f64 / self.pipeline_cycles as f64
        }
    }
}

/// The paper's two headline metrics for a VSV run against its
/// baseline (Figures 4–7).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// Increase in execution time, percent of the baseline
    /// (Figure 4 top).
    pub perf_degradation_pct: f64,
    /// Reduction in average total processor power, percent of the
    /// baseline (Figure 4 bottom).
    pub power_saving_pct: f64,
}

impl Comparison {
    /// Compares a VSV run against its baseline run (same workload,
    /// same instruction window).
    ///
    /// # Panics
    ///
    /// Panics if the baseline window is degenerate (zero time/power).
    #[must_use]
    pub fn of(baseline: &RunResult, vsv: &RunResult) -> Self {
        assert!(baseline.elapsed_ns > 0, "baseline ran for zero time");
        assert!(baseline.avg_power_w > 0.0, "baseline burned zero power");
        Comparison {
            perf_degradation_pct: (vsv.elapsed_ns as f64 / baseline.elapsed_ns as f64 - 1.0)
                * 100.0,
            power_saving_pct: (1.0 - vsv.avg_power_w / baseline.avg_power_w) * 100.0,
        }
    }
}

/// A run's service-level objective: ceilings on how much low-voltage
/// timing-error churn the modeled machine may impose on the workload,
/// and — for traffic scenarios — on the request tail latency. Checked
/// per measurement window against the observed retry stream and the
/// request-latency histogram; a violated window marks its
/// [`RunResult::slo`] (and sweep record) non-compliant and bumps the
/// `slo_violations` counter.
///
/// The tail-latency ceilings are optional so latency-only and
/// reliability-only SLOs both express naturally; `None` means
/// unbounded.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSpec {
    /// Maximum tolerated read-retry rate, in retries per million
    /// successful architectural fills.
    pub max_retry_rate_ppm: u64,
    /// Maximum tolerated 99th-percentile *added* fill latency from
    /// error detection and retry, in nanoseconds (each retry adds a
    /// fixed detect + reissue delay; see `vsv-mem`).
    pub max_added_latency_p99_ns: u64,
    /// Maximum tolerated 99th-percentile request latency, ns
    /// (traffic scenarios; `None` = unbounded).
    #[cfg_attr(feature = "serde", serde(default))]
    pub max_request_p99_ns: Option<u64>,
    /// Maximum tolerated 99.9th-percentile request latency, ns.
    #[cfg_attr(feature = "serde", serde(default))]
    pub max_request_p999_ns: Option<u64>,
}

impl SloSpec {
    /// A reliability-only SLO with the given ceilings (request tail
    /// latency unbounded).
    #[must_use]
    pub fn new(max_retry_rate_ppm: u64, max_added_latency_p99_ns: u64) -> Self {
        SloSpec {
            max_retry_rate_ppm,
            max_added_latency_p99_ns,
            max_request_p99_ns: None,
            max_request_p999_ns: None,
        }
    }

    /// Adds a request-p99 ceiling (ns).
    #[must_use]
    pub fn with_request_p99(mut self, ns: u64) -> Self {
        self.max_request_p99_ns = Some(ns);
        self
    }

    /// Adds a request-p999 ceiling (ns).
    #[must_use]
    pub fn with_request_p999(mut self, ns: u64) -> Self {
        self.max_request_p999_ns = Some(ns);
        self
    }

    /// Whether any reliability ceiling is finite (used by the CLI to
    /// warn when a retry-rate bound is asserted without an error
    /// model, where the retry rate is trivially 0).
    #[must_use]
    pub fn bounds_reliability(&self) -> bool {
        self.max_retry_rate_ppm != u64::MAX || self.max_added_latency_p99_ns != u64::MAX
    }

    /// Judges one window's observed reliability numbers against this
    /// objective (no traffic percentiles; request ceilings are judged
    /// vacuously satisfied).
    #[must_use]
    pub fn evaluate(&self, retry_rate_ppm: u64, added_latency_p99_ns: u64) -> SloOutcome {
        self.evaluate_window(retry_rate_ppm, added_latency_p99_ns, None, None)
    }

    /// Judges one window's observed reliability numbers and request
    /// tail latencies (`None` when no traffic scenario ran) against
    /// this objective.
    #[must_use]
    pub fn evaluate_window(
        &self,
        retry_rate_ppm: u64,
        added_latency_p99_ns: u64,
        request_p99_ns: Option<u64>,
        request_p999_ns: Option<u64>,
    ) -> SloOutcome {
        let within = |observed: Option<u64>, ceiling: Option<u64>| match (observed, ceiling) {
            (Some(seen), Some(max)) => seen <= max,
            // An unbounded ceiling, or a ceiling with no traffic to
            // measure against, cannot be violated.
            _ => true,
        };
        SloOutcome {
            retry_rate_ppm,
            added_latency_p99_ns,
            request_p99_ns,
            request_p999_ns,
            compliant: retry_rate_ppm <= self.max_retry_rate_ppm
                && added_latency_p99_ns <= self.max_added_latency_p99_ns
                && within(request_p99_ns, self.max_request_p99_ns)
                && within(request_p999_ns, self.max_request_p999_ns),
        }
    }
}

/// One window's measured reliability and tail latency, judged against
/// an [`SloSpec`].
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloOutcome {
    /// Observed read-retry rate: retries per million successful
    /// architectural fills (0 when the window had no fills).
    pub retry_rate_ppm: u64,
    /// Observed 99th-percentile added fill latency, ns.
    pub added_latency_p99_ns: u64,
    /// Observed 99th-percentile request latency, ns (`None` when no
    /// traffic scenario ran).
    #[cfg_attr(feature = "serde", serde(default))]
    pub request_p99_ns: Option<u64>,
    /// Observed 99.9th-percentile request latency, ns.
    #[cfg_attr(feature = "serde", serde(default))]
    pub request_p999_ns: Option<u64>,
    /// Whether every ceiling held.
    pub compliant: bool,
}

impl std::fmt::Display for SloOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "retry rate {} ppm, p99 added latency {} ns",
            self.retry_rate_ppm, self.added_latency_p99_ns,
        )?;
        if let (Some(p99), Some(p999)) = (self.request_p99_ns, self.request_p999_ns) {
            write!(f, ", request p99 {p99} ns / p999 {p999} ns")?;
        }
        write!(
            f,
            " — {}",
            if self.compliant {
                "compliant"
            } else {
                "VIOLATED"
            }
        )
    }
}

/// Arithmetic mean of comparisons (the paper averages percentages
/// across benchmarks).
#[must_use]
pub fn mean_comparison(comparisons: &[Comparison]) -> Comparison {
    if comparisons.is_empty() {
        return Comparison {
            perf_degradation_pct: 0.0,
            power_saving_pct: 0.0,
        };
    }
    let n = comparisons.len() as f64;
    Comparison {
        perf_degradation_pct: comparisons
            .iter()
            .map(|c| c.perf_degradation_pct)
            .sum::<f64>()
            / n,
        power_saving_pct: comparisons.iter().map(|c| c.power_saving_pct).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn result(elapsed_ns: u64, power: f64) -> RunResult {
        RunResult {
            workload: String::new(),
            instructions: 1000,
            elapsed_ns,
            pipeline_cycles: elapsed_ns,
            ipc: 1.0,
            mpki: 0.0,
            prefetch_mpki: 0.0,
            energy_pj: power * elapsed_ns as f64 * 1e3,
            energy: EnergyBreakdown {
                per_structure_pj: [0.0; 14],
                ramp_pj: 0.0,
                level_converter_pj: 0.0,
                uncore_pj: 0.0,
                leakage_pj: 0.0,
                cycles: 0,
            },
            avg_power_w: power,
            mode: ModeStats::default(),
            down_triggers: 0,
            down_expiries: 0,
            up_triggers: 0,
            up_expiries: 0,
            zero_issue_cycles: 0,
            mispredicts: 0,
            branches: 0,
            issue_histogram: IssueHistogram::default(),
            read_errors: 0,
            read_retries: 0,
            requests_arrived: 0,
            requests_completed: 0,
            request_backlog: 0,
            request_p50_ns: 0,
            request_p99_ns: 0,
            request_p999_ns: 0,
            slo: None,
            core_results: Vec::new(),
        }
    }

    #[test]
    fn comparison_signs_follow_paper_convention() {
        let base = result(1000, 40.0);
        let vsv = result(1020, 32.0);
        let c = Comparison::of(&base, &vsv);
        assert!((c.perf_degradation_pct - 2.0).abs() < 1e-9);
        assert!((c.power_saving_pct - 20.0).abs() < 1e-9);
    }

    #[test]
    fn faster_and_hungrier_goes_negative() {
        let base = result(1000, 40.0);
        let vsv = result(990, 44.0);
        let c = Comparison::of(&base, &vsv);
        assert!(c.perf_degradation_pct < 0.0);
        assert!(c.power_saving_pct < 0.0);
    }

    #[test]
    fn mean_comparison_averages() {
        let cs = [
            Comparison {
                perf_degradation_pct: 2.0,
                power_saving_pct: 20.0,
            },
            Comparison {
                perf_degradation_pct: 4.0,
                power_saving_pct: 40.0,
            },
        ];
        let m = mean_comparison(&cs);
        assert!((m.perf_degradation_pct - 3.0).abs() < 1e-9);
        assert!((m.power_saving_pct - 30.0).abs() < 1e-9);
        let empty = mean_comparison(&[]);
        assert_eq!(empty.power_saving_pct, 0.0);
    }

    #[test]
    fn slo_evaluation_checks_both_ceilings() {
        let spec = SloSpec::new(500, 16);
        assert!(spec.evaluate(500, 16).compliant, "at the ceilings is ok");
        assert!(!spec.evaluate(501, 0).compliant, "retry rate over");
        assert!(!spec.evaluate(0, 17).compliant, "latency over");
        let o = spec.evaluate(42, 8);
        assert_eq!(o.retry_rate_ppm, 42);
        assert_eq!(o.added_latency_p99_ns, 8);
        assert!(o.to_string().contains("compliant"), "{o}");
        assert!(spec.evaluate(9999, 0).to_string().contains("VIOLATED"));
    }

    #[test]
    fn slo_request_ceilings_judge_tail_latency() {
        let spec = SloSpec::new(u64::MAX, u64::MAX).with_request_p99(2000);
        assert!(!spec.bounds_reliability(), "latency-only SLO");
        assert!(SloSpec::new(5, 5).bounds_reliability());
        // No traffic ran: the ceiling is vacuously satisfied.
        assert!(spec.evaluate(0, 0).compliant);
        assert!(spec.evaluate_window(0, 0, Some(2000), Some(9999)).compliant);
        let over = spec.evaluate_window(0, 0, Some(2001), Some(2001));
        assert!(!over.compliant);
        assert_eq!(over.request_p99_ns, Some(2001));
        assert!(over.to_string().contains("request p99 2001 ns"), "{over}");
        let p999 = spec.with_request_p999(4000);
        assert!(!p999.evaluate_window(0, 0, Some(100), Some(4001)).compliant);
    }

    #[test]
    fn run_display_includes_traffic_line_only_under_traffic() {
        let mut r = result(100, 10.0);
        assert!(!r.to_string().contains("traffic:"));
        r.requests_arrived = 12;
        r.requests_completed = 11;
        r.request_backlog = 1;
        r.request_p99_ns = 4095;
        let s = r.to_string();
        assert!(
            s.contains("traffic: 12 arrived / 11 completed (1 queued)"),
            "{s}"
        );
        assert!(s.contains("p99 4095"), "{s}");
    }

    #[test]
    fn run_display_includes_slo_line_only_when_set() {
        let mut r = result(100, 10.0);
        assert!(!r.to_string().contains("slo:"));
        r.slo = Some(SloSpec::new(10, 10).evaluate(3, 0));
        assert!(r.to_string().contains("slo: retry rate 3 ppm"));
    }

    #[test]
    fn zero_issue_fraction() {
        let mut r = result(100, 10.0);
        r.zero_issue_cycles = 25;
        assert!((r.zero_issue_fraction() - 0.25).abs() < 1e-12);
    }
}

impl std::fmt::Display for RunResult {
    /// A compact multi-line summary, suitable for logs and examples.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} insts in {} ns (IPC {:.2}, MR {:.1})",
            if self.workload.is_empty() {
                "run"
            } else {
                &self.workload
            },
            self.instructions,
            self.elapsed_ns,
            self.ipc,
            self.mpki
        )?;
        writeln!(
            f,
            "  power {:.1} W over {} pipeline cycles ({:.0}% zero-issue)",
            self.avg_power_w,
            self.pipeline_cycles,
            self.zero_issue_fraction() * 100.0
        )?;
        write!(
            f,
            "  vsv: {:.0}% low residency, {} down / {} up transitions",
            self.mode.low_residency() * 100.0,
            self.mode.down_transitions,
            self.mode.up_transitions
        )?;
        if self.requests_arrived > 0 || self.request_backlog > 0 {
            write!(
                f,
                "\n  traffic: {} arrived / {} completed ({} queued); latency p50 {} / p99 {} / p999 {} ns",
                self.requests_arrived,
                self.requests_completed,
                self.request_backlog,
                self.request_p50_ns,
                self.request_p99_ns,
                self.request_p999_ns
            )?;
        }
        if let Some(slo) = &self.slo {
            write!(
                f,
                "\n  reliability: {} errors / {} retries; slo: {slo}",
                self.read_errors, self.read_retries
            )?;
        }
        for (i, core) in self.core_results.iter().enumerate() {
            write!(
                f,
                "\n  core {i}: {} insts in {} ns (IPC {:.2}), {:.1} W, {:.0}% low",
                core.instructions,
                core.elapsed_ns,
                core.ipc,
                core.avg_power_w,
                core.mode.low_residency() * 100.0
            )?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Comparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1}% power saved at {:.1}% performance degradation",
            self.power_saving_pct, self.perf_degradation_pct
        )
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn run_result_display_is_informative() {
        let mut r = tests::result(1000, 40.0);
        r.workload = "mcf".to_owned();
        let s = r.to_string();
        assert!(s.contains("mcf"));
        assert!(s.contains("40.0 W"));
        assert!(!s.is_empty());
    }

    #[test]
    fn unnamed_run_display_is_nonempty() {
        let r = tests::result(10, 1.0);
        assert!(r.to_string().contains("run:"));
    }

    #[test]
    fn comparison_display() {
        let c = Comparison {
            perf_degradation_pct: 2.0,
            power_saving_pct: 20.7,
        };
        assert_eq!(
            c.to_string(),
            "20.7% power saved at 2.0% performance degradation"
        );
    }
}
