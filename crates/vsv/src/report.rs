//! Result types and paper-style derived metrics.

use vsv_power::EnergyBreakdown;
use vsv_uarch::IssueHistogram;

use crate::controller::ModeStats;

/// Measured outcome of one simulation window.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Workload name (empty if unset).
    pub workload: String,
    /// Instructions committed in the window.
    pub instructions: u64,
    /// Wall-clock nanoseconds elapsed (= full-speed cycles at 1 GHz).
    pub elapsed_ns: u64,
    /// Pipeline clock edges in the window (fewer than `elapsed_ns`
    /// when VSV ran at half speed).
    pub pipeline_cycles: u64,
    /// Committed instructions per full-speed-clock cycle — the paper's
    /// IPC metric (Table 2).
    pub ipc: f64,
    /// L2 *demand* misses per 1000 instructions — the paper's MR.
    pub mpki: f64,
    /// L2 prefetch misses per 1000 instructions.
    pub prefetch_mpki: f64,
    /// Total energy dissipated, picojoules.
    pub energy_pj: f64,
    /// Per-structure energy breakdown (Wattch-style view; render with
    /// [`EnergyBreakdown::table`]).
    pub energy: EnergyBreakdown,
    /// Average total processor power, watts.
    pub avg_power_w: f64,
    /// Mode residency and transition counts.
    pub mode: ModeStats,
    /// Down-FSM transitions signalled.
    pub down_triggers: u64,
    /// Down-FSM windows that expired (high ILP detected).
    pub down_expiries: u64,
    /// Up-FSM transitions signalled.
    pub up_triggers: u64,
    /// Up-FSM windows that expired (no ILP found).
    pub up_expiries: u64,
    /// Cycles in which nothing issued.
    pub zero_issue_cycles: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Branches committed.
    pub branches: u64,
    /// Instructions issued per pipeline cycle, bucketed — the
    /// statistic the down/up FSMs sample.
    pub issue_histogram: IssueHistogram,
}

impl RunResult {
    /// Fraction of cycles with zero issue — the signal VSV's FSMs key
    /// off.
    #[must_use]
    pub fn zero_issue_fraction(&self) -> f64 {
        if self.pipeline_cycles == 0 {
            0.0
        } else {
            self.zero_issue_cycles as f64 / self.pipeline_cycles as f64
        }
    }
}

/// The paper's two headline metrics for a VSV run against its
/// baseline (Figures 4–7).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// Increase in execution time, percent of the baseline
    /// (Figure 4 top).
    pub perf_degradation_pct: f64,
    /// Reduction in average total processor power, percent of the
    /// baseline (Figure 4 bottom).
    pub power_saving_pct: f64,
}

impl Comparison {
    /// Compares a VSV run against its baseline run (same workload,
    /// same instruction window).
    ///
    /// # Panics
    ///
    /// Panics if the baseline window is degenerate (zero time/power).
    #[must_use]
    pub fn of(baseline: &RunResult, vsv: &RunResult) -> Self {
        assert!(baseline.elapsed_ns > 0, "baseline ran for zero time");
        assert!(baseline.avg_power_w > 0.0, "baseline burned zero power");
        Comparison {
            perf_degradation_pct: (vsv.elapsed_ns as f64 / baseline.elapsed_ns as f64 - 1.0)
                * 100.0,
            power_saving_pct: (1.0 - vsv.avg_power_w / baseline.avg_power_w) * 100.0,
        }
    }
}

/// Arithmetic mean of comparisons (the paper averages percentages
/// across benchmarks).
#[must_use]
pub fn mean_comparison(comparisons: &[Comparison]) -> Comparison {
    if comparisons.is_empty() {
        return Comparison {
            perf_degradation_pct: 0.0,
            power_saving_pct: 0.0,
        };
    }
    let n = comparisons.len() as f64;
    Comparison {
        perf_degradation_pct: comparisons
            .iter()
            .map(|c| c.perf_degradation_pct)
            .sum::<f64>()
            / n,
        power_saving_pct: comparisons.iter().map(|c| c.power_saving_pct).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn result(elapsed_ns: u64, power: f64) -> RunResult {
        RunResult {
            workload: String::new(),
            instructions: 1000,
            elapsed_ns,
            pipeline_cycles: elapsed_ns,
            ipc: 1.0,
            mpki: 0.0,
            prefetch_mpki: 0.0,
            energy_pj: power * elapsed_ns as f64 * 1e3,
            energy: EnergyBreakdown {
                per_structure_pj: [0.0; 14],
                ramp_pj: 0.0,
                level_converter_pj: 0.0,
                uncore_pj: 0.0,
                leakage_pj: 0.0,
                cycles: 0,
            },
            avg_power_w: power,
            mode: ModeStats::default(),
            down_triggers: 0,
            down_expiries: 0,
            up_triggers: 0,
            up_expiries: 0,
            zero_issue_cycles: 0,
            mispredicts: 0,
            branches: 0,
            issue_histogram: IssueHistogram::default(),
        }
    }

    #[test]
    fn comparison_signs_follow_paper_convention() {
        let base = result(1000, 40.0);
        let vsv = result(1020, 32.0);
        let c = Comparison::of(&base, &vsv);
        assert!((c.perf_degradation_pct - 2.0).abs() < 1e-9);
        assert!((c.power_saving_pct - 20.0).abs() < 1e-9);
    }

    #[test]
    fn faster_and_hungrier_goes_negative() {
        let base = result(1000, 40.0);
        let vsv = result(990, 44.0);
        let c = Comparison::of(&base, &vsv);
        assert!(c.perf_degradation_pct < 0.0);
        assert!(c.power_saving_pct < 0.0);
    }

    #[test]
    fn mean_comparison_averages() {
        let cs = [
            Comparison {
                perf_degradation_pct: 2.0,
                power_saving_pct: 20.0,
            },
            Comparison {
                perf_degradation_pct: 4.0,
                power_saving_pct: 40.0,
            },
        ];
        let m = mean_comparison(&cs);
        assert!((m.perf_degradation_pct - 3.0).abs() < 1e-9);
        assert!((m.power_saving_pct - 30.0).abs() < 1e-9);
        let empty = mean_comparison(&[]);
        assert_eq!(empty.power_saving_pct, 0.0);
    }

    #[test]
    fn zero_issue_fraction() {
        let mut r = result(100, 10.0);
        r.zero_issue_cycles = 25;
        assert!((r.zero_issue_fraction() - 0.25).abs() < 1e-12);
    }
}

impl std::fmt::Display for RunResult {
    /// A compact multi-line summary, suitable for logs and examples.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} insts in {} ns (IPC {:.2}, MR {:.1})",
            if self.workload.is_empty() {
                "run"
            } else {
                &self.workload
            },
            self.instructions,
            self.elapsed_ns,
            self.ipc,
            self.mpki
        )?;
        writeln!(
            f,
            "  power {:.1} W over {} pipeline cycles ({:.0}% zero-issue)",
            self.avg_power_w,
            self.pipeline_cycles,
            self.zero_issue_fraction() * 100.0
        )?;
        write!(
            f,
            "  vsv: {:.0}% low residency, {} down / {} up transitions",
            self.mode.low_residency() * 100.0,
            self.mode.down_transitions,
            self.mode.up_transitions
        )
    }
}

impl std::fmt::Display for Comparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.1}% power saved at {:.1}% performance degradation",
            self.power_saving_pct, self.perf_degradation_pct
        )
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn run_result_display_is_informative() {
        let mut r = tests::result(1000, 40.0);
        r.workload = "mcf".to_owned();
        let s = r.to_string();
        assert!(s.contains("mcf"));
        assert!(s.contains("40.0 W"));
        assert!(!s.is_empty());
    }

    #[test]
    fn unnamed_run_display_is_nonempty() {
        let r = tests::result(10, 1.0);
        assert!(r.to_string().contains("run:"));
    }

    #[test]
    fn comparison_display() {
        let c = Comparison {
            perf_degradation_pct: 2.0,
            power_saving_pct: 20.7,
        };
        assert_eq!(
            c.to_string(),
            "20.7% power saved at 2.0% performance degradation"
        );
    }
}
