//! The composed Time-Keeping prefetch engine.

use vsv_isa::Addr;

use crate::decay::DecayTable;
use crate::predictor::AddressPredictor;

/// Parameters of the Time-Keeping engine (paper §5.1).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeKeepingConfig {
    /// Decay-counter resolution in nanoseconds (paper: 16 cycles).
    pub resolution_ns: u64,
    /// Address-predictor entries (2048 × ~8 B ≈ the paper's 16 KB).
    pub predictor_entries: usize,
    /// L1-D block size, for set/tag extraction.
    pub l1_block_bytes: u64,
    /// L1-D set count, for per-set history traces.
    pub l1_sets: u64,
    /// Assumed live time for blocks in sets with no learned history
    /// (`None` disables first-generation dead prediction). A fixed
    /// decay interval, as in cache-decay schemes, so the engine is
    /// productive before every set has seen an eviction.
    pub default_live_ns: Option<u64>,
}

impl TimeKeepingConfig {
    /// The paper's configuration for the baseline 64 KB 2-way L1.
    #[must_use]
    pub fn baseline() -> Self {
        TimeKeepingConfig {
            resolution_ns: 16,
            predictor_entries: 2048,
            l1_block_bytes: 32,
            l1_sets: 1024,
            default_live_ns: Some(256),
        }
    }
}

/// Counters exposed by the engine.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeKeepingStats {
    /// Dead-block predictions made.
    pub dead_predictions: u64,
    /// Prefetch addresses proposed (dead prediction × predictor hit).
    pub prefetches_proposed: u64,
    /// Proposals that came from an exact trained successor entry.
    pub exact_proposals: u64,
    /// Proposals that came from the per-set stride fallback.
    pub stride_proposals: u64,
    /// Per-set history trainings recorded.
    pub trainings: u64,
}

/// The Time-Keeping prefetch engine.
///
/// The owner (the pipeline's memory interface) feeds it L1-D events —
/// [`on_miss`](TimeKeeping::on_miss), [`on_fill`](TimeKeeping::on_fill),
/// [`on_access`](TimeKeeping::on_access), [`on_evict`](TimeKeeping::on_evict)
/// — and polls [`tick`](TimeKeeping::tick) at the decay resolution for
/// prefetch addresses to inject into the hierarchy
/// (`Hierarchy::hw_prefetch`).
///
/// See the crate docs for a worked example.
#[derive(Debug, Clone)]
pub struct TimeKeeping {
    cfg: TimeKeepingConfig,
    decay: DecayTable,
    predictor: AddressPredictor,
    /// Last missing block observed per L1 set ("per-set history").
    set_history: Vec<Option<Addr>>,
    /// Last observed miss-to-miss block delta per L1 set: the stride
    /// fallback when no exact successor entry survives (the aliased
    /// 16 KB table turns over long before a large working set laps).
    set_delta: Vec<Option<i64>>,
    /// Global miss-stride detector: when the whole miss stream
    /// advances by (multiples of) a constant stride — streaming
    /// sweeps, with or without software-prefetch gaps — the per-set
    /// successor is `stride × l1_sets` away even before the set
    /// itself has two misses of history.
    global_last: Option<Addr>,
    /// Current stride candidate (the smallest positive delta seen).
    global_stride: i64,
    global_confidence: u32,
    last_harvest: u64,
    stats: TimeKeepingStats,
}

impl TimeKeeping {
    /// Builds an idle engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero resolution,
    /// non-power-of-two table sizes).
    #[must_use]
    pub fn new(cfg: TimeKeepingConfig) -> Self {
        TimeKeeping {
            decay: DecayTable::with_default_live(cfg.resolution_ns, cfg.default_live_ns),
            predictor: AddressPredictor::new(
                cfg.predictor_entries,
                cfg.l1_block_bytes,
                cfg.l1_sets,
            ),
            set_history: vec![None; cfg.l1_sets as usize],
            set_delta: vec![None; cfg.l1_sets as usize],
            global_last: None,
            global_stride: 0,
            global_confidence: 0,
            last_harvest: 0,
            stats: TimeKeepingStats::default(),
            cfg,
        }
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> TimeKeepingConfig {
        self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> TimeKeepingStats {
        self.stats
    }

    /// The earliest time (ns) at which [`TimeKeeping::tick`] will next
    /// run its harvest scan. Calls strictly before this time are pure
    /// no-ops, so an owner fast-forwarding through an idle window must
    /// not skip past it.
    #[must_use]
    pub fn next_harvest_at(&self) -> u64 {
        self.last_harvest + self.cfg.resolution_ns
    }

    fn set_of(&self, block: Addr) -> usize {
        ((block.0 >> self.cfg.l1_block_bytes.trailing_zeros()) & (self.cfg.l1_sets - 1)) as usize
    }

    fn block_of(&self, addr: Addr) -> Addr {
        addr.block(self.cfg.l1_block_bytes)
    }

    /// Records a demand L1-D miss to `addr`: trains the per-set trace
    /// (previous miss in this set → this block).
    pub fn on_miss(&mut self, _now: u64, addr: Addr) {
        let block = self.block_of(addr);
        let set = self.set_of(block);
        if let Some(prev) = self.set_history[set] {
            if prev != block {
                self.predictor.train(prev, block);
                self.set_delta[set] = Some(block.0 as i64 - prev.0 as i64);
                self.stats.trainings += 1;
            }
        }
        self.set_history[set] = Some(block);
        if let Some(prev) = self.global_last {
            let d = block.0 as i64 - prev.0 as i64;
            if d > 0 {
                // Deltas that are small positive multiples of the
                // candidate confirm it (covered loads punch holes in a
                // strided stream, so exact repetition is too strict);
                // anything else re-seeds the candidate.
                if self.global_stride > 0
                    && d % self.global_stride == 0
                    && d / self.global_stride <= 16
                {
                    if d < self.global_stride {
                        self.global_stride = d;
                    }
                    self.global_confidence = self.global_confidence.saturating_add(1);
                } else {
                    self.global_stride = d;
                    self.global_confidence = 0;
                }
            } else if d < 0 {
                self.global_confidence = 0;
            }
        }
        self.global_last = Some(block);
    }

    /// The confident global miss stride, if any.
    fn confident_global_stride(&self) -> Option<i64> {
        (self.global_confidence >= 4 && self.global_stride > 0).then_some(self.global_stride)
    }

    /// Records an L1-D fill of `addr` (a new block generation begins).
    pub fn on_fill(&mut self, now: u64, addr: Addr) {
        let block = self.block_of(addr);
        self.decay.fill(now, block);
    }

    /// Records a demand L1-D hit to `addr` (resets the block's decay).
    pub fn on_access(&mut self, now: u64, addr: Addr) {
        let block = self.block_of(addr);
        self.decay.touch(now, block);
    }

    /// Records the eviction of `addr` from the L1-D (closes the
    /// generation and learns its live time).
    pub fn on_evict(&mut self, now: u64, addr: Addr) {
        let block = self.block_of(addr);
        let _ = self.decay.evict(now, block);
    }

    /// Advances the decay counters to `now` and returns prefetch
    /// addresses for blocks newly predicted dead. Runs its scan at the
    /// configured resolution; calling more often is free.
    pub fn tick(&mut self, now: u64) -> Vec<Addr> {
        if now < self.last_harvest + self.cfg.resolution_ns {
            return Vec::new();
        }
        self.last_harvest = now;
        let dead = self.decay.harvest_dead(now);
        let mut proposals = Vec::new();
        for block in dead {
            self.stats.dead_predictions += 1;
            if let Some(next) = self.predictor.predict(block) {
                self.stats.prefetches_proposed += 1;
                self.stats.exact_proposals += 1;
                proposals.push(next);
            } else if let Some(delta) = self
                .confident_global_stride()
                // Streaming sweeps: the per-set successor is the
                // global stride times the number of sets away. The
                // global detector regains confidence within one miss
                // burst, so it outranks the per-set delta, which a
                // single unrelated (e.g. hot-set) miss can poison.
                .map(|d| d.saturating_mul(self.cfg.l1_sets as i64))
                .or(self.set_delta[self.set_of(block)])
            {
                // Stride fallback: the set's recent miss-to-miss delta
                // applied to the dying block. Exact for streaming
                // walks; noisy (pollution, as the paper observes for
                // art) for irregular ones.
                if let Some(next) = block.0.checked_add_signed(delta) {
                    self.stats.prefetches_proposed += 1;
                    self.stats.stride_proposals += 1;
                    proposals.push(Addr(next));
                }
            }
        }
        proposals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> TimeKeeping {
        TimeKeeping::new(TimeKeepingConfig::baseline())
    }

    /// Drives one full generation: miss+fill, accesses, evict.
    fn generation(tk: &mut TimeKeeping, t0: u64, block: Addr, live: u64) {
        tk.on_miss(t0, block);
        tk.on_fill(t0, block);
        tk.on_access(t0 + live, block);
        tk.on_evict(t0 + live + 200, block);
    }

    #[test]
    fn predicts_successor_after_learned_live_time() {
        let mut tk = engine();
        let a = Addr(0x1000);
        let b = Addr(0x11000); // same set (stride = sets*block = 32 KB)
        generation(&mut tk, 0, a, 64);
        tk.on_miss(300, b);
        tk.on_fill(300, b);
        // Second generation of `a`.
        tk.on_miss(1000, a);
        tk.on_fill(1000, a);
        tk.on_access(1010, a);
        let mut got = Vec::new();
        for now in (1000..1400).step_by(16) {
            got.extend(tk.tick(now));
        }
        // Two dead predictions: `b` (first generation, but its set has
        // history thanks to per-set learning) proposes its trained
        // successor `a`; then `a`'s second generation proposes `b`.
        assert_eq!(got, vec![a, b]);
        assert_eq!(tk.stats().dead_predictions, 2);
        assert_eq!(tk.stats().prefetches_proposed, 2);
    }

    #[test]
    fn no_prediction_without_history() {
        let mut tk = engine();
        generation(&mut tk, 0, Addr(0x1000), 64);
        tk.on_miss(1000, Addr(0x1000));
        tk.on_fill(1000, Addr(0x1000));
        let mut got = Vec::new();
        for now in (1000..1400).step_by(16) {
            got.extend(tk.tick(now));
        }
        // Dead prediction fires but the predictor has no successor
        // trace for this signature (only a->? trained... a was trained
        // as the *first* miss; no prev->a, and no a->next yet).
        assert!(got.is_empty());
    }

    #[test]
    fn tick_respects_resolution() {
        let mut tk = engine();
        // Sub-resolution ticks do nothing (cheap early-out).
        assert!(tk.tick(1).is_empty());
        assert!(tk.tick(15).is_empty());
        assert!(tk.tick(16).is_empty()); // scan runs, nothing dead
    }

    #[test]
    fn per_set_histories_are_independent() {
        let mut tk = engine();
        let set0_a = Addr(0x0000);
        let set1_b = Addr(0x0020); // next set
        let set0_c = Addr(0x8000); // same set as set0_a
        tk.on_miss(0, set0_a);
        tk.on_miss(1, set1_b);
        tk.on_miss(2, set0_c);
        // set0: a -> c trained; set1: only b seen.
        assert_eq!(tk.stats().trainings, 1);
    }

    #[test]
    fn repeated_miss_to_same_block_does_not_self_train() {
        let mut tk = engine();
        tk.on_miss(0, Addr(0x40));
        tk.on_miss(10, Addr(0x40));
        assert_eq!(tk.stats().trainings, 0);
    }
}
