//! Time-Keeping hardware prefetching (Hu et al., ISCA 2002), as used to
//! stress-test VSV in §5.1/§6.4 of the paper.
//!
//! The idea: most L1 blocks have a stable *live time* (fill → last
//! access). Once a block has been idle longer than its previous
//! generation's live time it is predicted **dead**; a PC-free address
//! predictor — trained with per-set miss-history traces — then guesses
//! the next block that will map near it and prefetches it into the L2
//! and a small prefetch buffer beside the L1 (never into the L1
//! itself).
//!
//! Structures, following the paper's §5.1 parameters:
//!
//! * decay counters with **16-cycle resolution** per live L1-D block;
//! * a **16 KB address predictor** indexed by a signature of nine L1
//!   tag bits and one index bit, holding a predicted successor block;
//! * per-set history traces for training (recommended in Hu et al. for
//!   set-associative L1s);
//! * the 128-entry FIFO prefetch buffer itself lives in `vsv-mem`
//!   (`HierarchyConfig::with_prefetch_buffer`), since refills flow
//!   through the hierarchy.
//!
//! # Examples
//!
//! ```
//! use vsv_isa::Addr;
//! use vsv_prefetch::{TimeKeeping, TimeKeepingConfig};
//!
//! let mut tk = TimeKeeping::new(TimeKeepingConfig::baseline());
//! // Train: miss to A then (same set) miss to B teaches A -> B.
//! tk.on_miss(0, Addr(0x1000));
//! tk.on_fill(10, Addr(0x1000));
//! tk.on_access(20, Addr(0x1000));
//! tk.on_evict(200, Addr(0x1000));
//! tk.on_miss(200, Addr(0x11000)); // same L1 set as 0x1000
//! tk.on_fill(210, Addr(0x11000));
//! // Next generation of A: once idle past its live time, the
//! // predictor proposes B.
//! tk.on_miss(300, Addr(0x1000));
//! tk.on_fill(310, Addr(0x1000));
//! tk.on_access(320, Addr(0x1000));
//! let mut proposals = Vec::new();
//! for now in (320..800).step_by(16) {
//!     proposals.extend(tk.tick(now));
//! }
//! assert!(proposals.contains(&Addr(0x11000)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decay;
mod predictor;
mod timekeeping;

pub use decay::{BlockTimer, DecayTable};
pub use predictor::AddressPredictor;
pub use timekeeping::{TimeKeeping, TimeKeepingConfig, TimeKeepingStats};
