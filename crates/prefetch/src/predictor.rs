//! The Time-Keeping address predictor.
//!
//! A direct-mapped table indexed by a *signature* of the missing
//! block's address — nine bits of L1 tag and one bit of L1 index,
//! per §5.1 of the VSV paper — holding the block observed to miss
//! next in the same L1 set ("per-set history traces").

use vsv_isa::Addr;

/// Direct-mapped next-block predictor.
///
/// # Examples
///
/// ```
/// use vsv_isa::Addr;
/// use vsv_prefetch::AddressPredictor;
///
/// // 1024-set, 32-byte-block L1 geometry.
/// let mut p = AddressPredictor::new(2048, 32, 1024);
/// p.train(Addr(0x1000), Addr(0x2000));
/// assert_eq!(p.predict(Addr(0x1000)), Some(Addr(0x2000)));
/// assert_eq!(p.predict(Addr(0x3000)), None);
/// ```
#[derive(Debug, Clone)]
pub struct AddressPredictor {
    entries: Vec<Option<(u64, Addr)>>,
    index_mask: u64,
    block_shift: u32,
    set_bits: u32,
    trainings: u64,
    hits: u64,
    lookups: u64,
}

impl AddressPredictor {
    /// Creates a predictor with `entries` slots (power of two) for an
    /// L1 with the given block size and set count (both powers of two).
    ///
    /// With 2048 entries of (tag, address) ≈ 16 KB of state, matching
    /// the paper's "16 KB address predictor".
    ///
    /// # Panics
    ///
    /// Panics if any argument is not a nonzero power of two.
    #[must_use]
    pub fn new(entries: usize, l1_block_bytes: u64, l1_sets: u64) -> Self {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "entries must be a power of two"
        );
        assert!(l1_block_bytes.is_power_of_two() && l1_block_bytes > 0);
        assert!(l1_sets.is_power_of_two() && l1_sets > 0);
        AddressPredictor {
            entries: vec![None; entries],
            index_mask: entries as u64 - 1,
            block_shift: l1_block_bytes.trailing_zeros(),
            set_bits: l1_sets.trailing_zeros(),
            trainings: 0,
            hits: 0,
            lookups: 0,
        }
    }

    /// The signature: nine bits of L1 tag, one bit of L1 index
    /// (paper §5.1), folded into the table's index range.
    #[must_use]
    pub fn signature(&self, block: Addr) -> u64 {
        let frame = block.0 >> self.block_shift;
        let index = frame & ((1 << self.set_bits) - 1);
        let tag = frame >> self.set_bits;
        let sig = ((tag & 0x1ff) << 1) | (index & 1);
        sig & self.index_mask
    }

    /// Records that a miss to `from` was followed (in its set) by a
    /// miss to `to`.
    pub fn train(&mut self, from: Addr, to: Addr) {
        let sig = self.signature(from) as usize;
        let tag = self.full_tag(from);
        self.entries[sig] = Some((tag, to));
        self.trainings += 1;
    }

    /// Predicts the successor of `from`, if a matching trace exists.
    pub fn predict(&mut self, from: Addr) -> Option<Addr> {
        self.lookups += 1;
        let sig = self.signature(from) as usize;
        match self.entries[sig] {
            Some((tag, to)) if tag == self.full_tag(from) => {
                self.hits += 1;
                Some(to)
            }
            _ => None,
        }
    }

    /// Total trainings performed.
    #[must_use]
    pub fn trainings(&self) -> u64 {
        self.trainings
    }

    /// Lookups that produced a prediction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// The full tag stored to disambiguate signature aliasing.
    fn full_tag(&self, block: Addr) -> u64 {
        block.0 >> self.block_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> AddressPredictor {
        AddressPredictor::new(2048, 32, 1024)
    }

    #[test]
    fn trains_and_predicts() {
        let mut p = predictor();
        p.train(Addr(0x1000), Addr(0x5000));
        assert_eq!(p.predict(Addr(0x1000)), Some(Addr(0x5000)));
        assert_eq!(p.trainings(), 1);
        assert_eq!(p.hits(), 1);
        assert_eq!(p.lookups(), 1);
    }

    #[test]
    fn unknown_address_predicts_none() {
        let mut p = predictor();
        assert_eq!(p.predict(Addr(0x0dea_d000)), None);
        assert_eq!(p.hits(), 0);
    }

    #[test]
    fn aliasing_signatures_disambiguated_by_tag() {
        let mut p = predictor();
        let a = Addr(0x1000);
        // Construct an alias: same signature bits, different full tag.
        // Signature uses tag bits [0..9) and index bit 0; adding a high
        // tag bit beyond bit 9 keeps the signature identical.
        let alias = Addr(a.0 + (1 << (5 + 10 + 9))); // tag differs at bit 9
        assert_eq!(p.signature(a), p.signature(alias));
        p.train(a, Addr(0x77_0000));
        assert_eq!(p.predict(alias), None, "alias must not hit");
        // Retraining with the alias displaces the entry (direct mapped).
        p.train(alias, Addr(0x88_0000));
        assert_eq!(p.predict(a), None);
        assert_eq!(p.predict(alias), Some(Addr(0x88_0000)));
    }

    #[test]
    fn retraining_updates_successor() {
        let mut p = predictor();
        p.train(Addr(0x40), Addr(0x80));
        p.train(Addr(0x40), Addr(0xc0));
        assert_eq!(p.predict(Addr(0x40)), Some(Addr(0xc0)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_entries_panics() {
        let _ = AddressPredictor::new(1000, 32, 1024);
    }
}
