//! Per-block decay timers with coarse resolution.
//!
//! Real Time-Keeping hardware uses small per-frame counters ticked
//! every 16 cycles; we model the same observable behaviour — idle
//! times and live times quantised to the resolution — with
//! nanosecond-stamped entries.

use std::collections::HashMap;

use vsv_isa::Addr;

/// Lifetime bookkeeping for one resident L1 block generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockTimer {
    /// When this generation was filled (ns).
    pub filled_at: u64,
    /// Last demand access to this generation (ns).
    pub last_access: u64,
    /// Live-time estimate for this generation (learned from the
    /// block's earlier generations, or the table's default), quantised
    /// to the decay resolution. `None` until there is any basis.
    pub prev_live_time: Option<u64>,
    /// Whether this generation has already been predicted dead
    /// (predictions fire at most once per generation).
    pub predicted_dead: bool,
}

/// A table of decay timers for the live blocks of one cache.
///
/// Live times are learned **per block** with an exponential moving
/// average, with two hardware-inspired refinements that keep the
/// engine productive in short simulation windows:
///
/// * blocks with no history use the table's *default live time*
///   (a fixed decay interval, as in cache-decay schemes), so
///   first-generation blocks of a large working set can still die;
/// * a block touched *after* being predicted dead raises its own
///   estimate to the observed idle time (adaptive correction), so
///   hot blocks quickly stop producing false deaths.
///
/// # Examples
///
/// ```
/// use vsv_isa::Addr;
/// use vsv_prefetch::DecayTable;
///
/// let mut t = DecayTable::new(16);
/// t.fill(0, Addr(0x40));
/// t.touch(48, Addr(0x40));
/// // live time of this generation so far: 48 ns, quantised to 48.
/// let lt = t.evict(100, Addr(0x40)).unwrap();
/// assert_eq!(lt, 48);
/// ```
#[derive(Debug, Clone)]
pub struct DecayTable {
    resolution_ns: u64,
    /// Live time assumed for generations whose set has no history yet
    /// (`None` = never predict those dead).
    default_live_ns: Option<u64>,
    blocks: HashMap<Addr, BlockTimer>,
    /// Live time learned per block (EWMA across generations).
    learned: HashMap<Addr, u64>,
}

impl DecayTable {
    /// Creates an empty table with the given counter resolution
    /// (paper: 16 cycles = 16 ns at 1 GHz).
    ///
    /// # Panics
    ///
    /// Panics if `resolution_ns` is zero.
    #[must_use]
    pub fn new(resolution_ns: u64) -> Self {
        Self::with_default_live(resolution_ns, None)
    }

    /// Like [`DecayTable::new`], but generations whose set has no
    /// learned history are assumed to live `default_live_ns` (a fixed
    /// decay interval, as in cache-decay schemes) instead of never
    /// dying.
    ///
    /// # Panics
    ///
    /// Panics if `resolution_ns` is zero.
    #[must_use]
    pub fn with_default_live(resolution_ns: u64, default_live_ns: Option<u64>) -> Self {
        assert!(resolution_ns > 0, "decay resolution must be nonzero");
        DecayTable {
            resolution_ns,
            default_live_ns,
            blocks: HashMap::new(),
            learned: HashMap::new(),
        }
    }

    /// The counter resolution in nanoseconds.
    #[must_use]
    pub fn resolution_ns(&self) -> u64 {
        self.resolution_ns
    }

    /// Quantises a duration down to the counter resolution.
    #[must_use]
    pub fn quantise(&self, ns: u64) -> u64 {
        ns - ns % self.resolution_ns
    }

    /// Starts a new generation for `block`.
    pub fn fill(&mut self, now: u64, block: Addr) {
        let prev = self.learned.get(&block).copied().or(self.default_live_ns);
        self.blocks.insert(
            block,
            BlockTimer {
                filled_at: now,
                last_access: now,
                prev_live_time: prev,
                predicted_dead: false,
            },
        );
    }

    /// Records a demand access to a live `block` (resets its decay).
    /// An access to a block already predicted dead is a
    /// *misprediction*: the block's live-time estimate is raised to
    /// the observed span so it stops dying early.
    pub fn touch(&mut self, now: u64, block: Addr) {
        let resolution = self.resolution_ns;
        if let Some(t) = self.blocks.get_mut(&block) {
            if t.predicted_dead {
                let span = now.saturating_sub(t.filled_at);
                let q = span - span % resolution;
                t.prev_live_time = Some(t.prev_live_time.unwrap_or(0).max(q));
                self.learned
                    .insert(block, t.prev_live_time.expect("just set"));
            }
            t.last_access = now.max(t.last_access);
            t.predicted_dead = false;
        }
    }

    /// Ends the generation for `block`, folding its live time into the
    /// block's estimate (EWMA with weight ½). Returns the quantised
    /// live time, or `None` if untracked.
    pub fn evict(&mut self, _now: u64, block: Addr) -> Option<u64> {
        let t = self.blocks.remove(&block)?;
        let live = self.quantise(t.last_access.saturating_sub(t.filled_at));
        let blended = match self.learned.get(&block) {
            Some(&old) => self.quantise(old / 2 + live / 2),
            None => live,
        };
        self.learned.insert(block, blended);
        Some(live)
    }

    /// Returns blocks whose idle time now exceeds their previous
    /// generation's live time (plus one resolution step of slack) and
    /// marks them predicted-dead. Blocks with no learned history never
    /// fire.
    pub fn harvest_dead(&mut self, now: u64) -> Vec<Addr> {
        let resolution = self.resolution_ns;
        let mut dead = Vec::new();
        for (&addr, t) in &mut self.blocks {
            if t.predicted_dead {
                continue;
            }
            let Some(prev) = t.prev_live_time.or(self.default_live_ns) else {
                continue;
            };
            let idle = now.saturating_sub(t.last_access);
            if idle > prev + resolution {
                t.predicted_dead = true;
                dead.push(addr);
            }
        }
        dead.sort_unstable_by_key(|a| a.0); // deterministic order
        dead
    }

    /// Whether `block` has a live, tracked generation.
    #[must_use]
    pub fn contains(&self, block: Addr) -> bool {
        self.blocks.contains_key(&block)
    }

    /// Number of live tracked generations.
    #[must_use]
    pub fn live_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantisation_floors_to_resolution() {
        let t = DecayTable::new(16);
        assert_eq!(t.quantise(0), 0);
        assert_eq!(t.quantise(15), 0);
        assert_eq!(t.quantise(16), 16);
        assert_eq!(t.quantise(47), 32);
    }

    #[test]
    fn first_generation_never_predicted_dead() {
        let mut t = DecayTable::new(16);
        t.fill(0, Addr(0x40));
        assert!(t.harvest_dead(1_000_000).is_empty());
    }

    #[test]
    fn second_generation_dies_after_learned_live_time() {
        let mut t = DecayTable::new(16);
        t.fill(0, Addr(0x40));
        t.touch(64, Addr(0x40));
        assert_eq!(t.evict(100, Addr(0x40)), Some(64));
        t.fill(200, Addr(0x40));
        t.touch(210, Addr(0x40));
        // idle = 70 < 64 + 16 → still live
        assert!(t.harvest_dead(280).is_empty());
        // idle = 100 > 80 → dead
        assert_eq!(t.harvest_dead(310), vec![Addr(0x40)]);
        // Fires only once per generation.
        assert!(t.harvest_dead(400).is_empty());
    }

    #[test]
    fn touch_resets_decay_and_dead_mark() {
        let mut t = DecayTable::new(16);
        t.fill(0, Addr(0x40));
        t.touch(64, Addr(0x40));
        t.evict(100, Addr(0x40));
        t.fill(200, Addr(0x40));
        assert_eq!(t.harvest_dead(300), vec![Addr(0x40)]);
        // A late access revives the block, and the misprediction
        // raises its live estimate to the observed 110 ns span
        // (quantised to 96)...
        t.touch(310, Addr(0x40));
        assert!(t.harvest_dead(320).is_empty());
        assert!(t.harvest_dead(420).is_empty(), "idle 110 < 96+16");
        // ...so it dies again only after the longer interval.
        assert_eq!(t.harvest_dead(430), vec![Addr(0x40)]);
    }

    #[test]
    fn evict_untracked_returns_none() {
        let mut t = DecayTable::new(16);
        assert_eq!(t.evict(0, Addr(0x40)), None);
    }

    #[test]
    fn live_block_count() {
        let mut t = DecayTable::new(16);
        t.fill(0, Addr(0x00));
        t.fill(0, Addr(0x20));
        assert_eq!(t.live_blocks(), 2);
        assert!(t.contains(Addr(0x20)));
        t.evict(10, Addr(0x20));
        assert_eq!(t.live_blocks(), 1);
    }

    #[test]
    fn default_live_lets_first_generations_die() {
        let mut t = DecayTable::with_default_live(16, Some(64));
        t.fill(0, Addr(0x40));
        // No per-block history, but the default interval applies.
        assert!(t.harvest_dead(70).is_empty(), "idle 70 < 64+16");
        assert_eq!(t.harvest_dead(100), vec![Addr(0x40)]);
    }

    #[test]
    fn misprediction_raises_live_estimate() {
        let mut t = DecayTable::with_default_live(16, Some(64));
        t.fill(0, Addr(0x40));
        assert_eq!(t.harvest_dead(100), vec![Addr(0x40)]);
        // The block turns out to be alive: touch after a false death.
        t.touch(200, Addr(0x40));
        // Its estimate is now >= 192 (the observed span), so it does
        // not die again at the default interval.
        assert!(t.harvest_dead(300).is_empty());
        assert_eq!(t.harvest_dead(420), vec![Addr(0x40)]);
    }

    #[test]
    fn ewma_blends_live_times() {
        let mut t = DecayTable::new(16);
        t.fill(0, Addr(0x40));
        t.touch(160, Addr(0x40));
        t.evict(200, Addr(0x40)); // learned: 160
        t.fill(300, Addr(0x40));
        t.evict(400, Addr(0x40)); // live 0 -> blended 80
                                  // Third generation inherits the blended 80 ns estimate:
        t.fill(500, Addr(0x40));
        assert!(t.harvest_dead(560).is_empty(), "idle 60 < 80+16");
        assert_eq!(t.harvest_dead(600), vec![Addr(0x40)]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_resolution_panics() {
        let _ = DecayTable::new(0);
    }
}
