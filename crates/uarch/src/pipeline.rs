//! The 8-way out-of-order pipeline.
//!
//! A trace-driven `sim-outorder`-style model: fetch follows the
//! *predicted* path (wrong-path work is modeled as fetch bubbles: fetch
//! halts at a mispredicted branch and resumes `mispredict_penalty`
//! cycles after it resolves), instructions rename into the RUU, issue
//! out of order when operands and a functional unit are ready, execute
//! with class latencies, and commit in order.
//!
//! # Clocking contract
//!
//! [`Core::cycle`] advances the *pipeline* by one clock edge and must
//! be passed the current wall-clock time in nanoseconds; the owner
//! decides the edge cadence (every 1 ns at full speed, every 2 ns in
//! VSV's low-power mode). [`Core::tick_mem`] advances the asynchronous
//! L2/bus/DRAM domain and must be called every nanosecond.
//!
//! # Model simplifications
//!
//! * Wrong-path instructions are not executed (their timing cost is
//!   the misprediction bubble; their power is not charged).
//! * Loads may issue past older stores to different blocks (perfect
//!   memory disambiguation); same-block older stores forward in one
//!   cycle.
//! * Stores write the D-cache at commit and do not block commit on a
//!   miss (write-buffer semantics); a full MSHR does stall commit.

use std::collections::VecDeque;

use vsv_isa::{Addr, BranchInfo, Inst, InstStream, OpClass};
use vsv_mem::{AccessKind, Completion, FxHashMap, Hierarchy, L1Outcome, MemToken};
use vsv_prefetch::TimeKeeping;

use crate::activity::{CoreStats, CycleActivity};
use crate::bpred::BranchPredictor;
use crate::config::CoreConfig;
use crate::fu::FuSet;
use crate::ruu::{Ruu, Seq};

/// The out-of-order core, owning its memory hierarchy and (optionally)
/// a Time-Keeping prefetch engine.
///
/// # Examples
///
/// ```
/// use vsv_isa::{ArchReg, Inst, InstStream, Pc, VecStream};
/// use vsv_mem::{Hierarchy, HierarchyConfig};
/// use vsv_uarch::{Core, CoreConfig};
///
/// let program: VecStream = (0..100)
///     .map(|i| Inst::alu(Pc(i * 4), ArchReg::int(1), &[]))
///     .collect();
/// let mut core = Core::new(
///     CoreConfig::baseline(),
///     Hierarchy::new(HierarchyConfig::baseline()),
///     program,
/// );
/// let mut now = 0;
/// while !core.done() && now < 10_000 {
///     core.tick_mem(now);
///     core.cycle(now);
///     now += 1;
/// }
/// assert_eq!(core.stats().committed, 100);
/// ```
#[derive(Debug)]
pub struct Core<S> {
    cfg: CoreConfig,
    stream: S,
    peeked: Option<Inst>,
    ruu: Ruu,
    fus: FuSet,
    bpred: BranchPredictor,
    mem: Hierarchy,
    tk: Option<TimeKeeping>,
    fetch_queue: VecDeque<(Inst, bool)>,
    icache_wait: Option<MemToken>,
    halted_for_branch: bool,
    resume_fetch_at: Option<u64>,
    // Fx-hashed: point lookups only, never iterated, so the hash
    // function cannot affect simulated results.
    pending_loads: FxHashMap<MemToken, Seq>,
    pending_fills: FxHashMap<MemToken, Addr>,
    exec_done: ExecWheel,
    cycle: u64,
    last_fetch_block: Option<Addr>,
    stream_exhausted: bool,
    // Copied out of the hierarchy config at construction: the fetch
    // and issue stages consult these every instruction.
    l1i_block_bytes: u64,
    l1d_block_bytes: u64,
    stats: CoreStats,
    // Scratch buffers reused across cycles so the steady-state hot
    // loop performs no heap allocation.
    completion_scratch: Vec<Completion>,
    eviction_scratch: Vec<Addr>,
    ready_scratch: Vec<Seq>,
    writeback_scratch: Vec<Seq>,
}

impl<S: InstStream> Core<S> {
    /// Builds a core over `mem`, fed by `stream`, with the default
    /// Table 1 branch predictor.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CoreConfig::validate`]; the fallible
    /// form is [`Core::try_new`].
    #[must_use]
    pub fn new(cfg: CoreConfig, mem: Hierarchy, stream: S) -> Self {
        Self::try_new(cfg, mem, stream)
            .unwrap_or_else(|e| panic!("invalid core configuration: {e}"))
    }

    /// Builds a core over `mem`, fed by `stream`, validating `cfg`
    /// first.
    ///
    /// # Errors
    ///
    /// Returns the [`CoreConfig::validate`] message when `cfg` is
    /// internally inconsistent.
    pub fn try_new(cfg: CoreConfig, mem: Hierarchy, stream: S) -> Result<Self, String> {
        cfg.validate()?;
        Ok(Core {
            ruu: Ruu::new(cfg.ruu_entries, cfg.lsq_entries),
            fus: FuSet::new(&cfg),
            bpred: BranchPredictor::new(cfg.bpred),
            l1i_block_bytes: mem.config().l1i.block_bytes,
            l1d_block_bytes: mem.config().l1d.block_bytes,
            mem,
            tk: None,
            stream,
            peeked: None,
            fetch_queue: VecDeque::with_capacity(cfg.fetch_queue),
            icache_wait: None,
            halted_for_branch: false,
            resume_fetch_at: None,
            pending_loads: FxHashMap::default(),
            pending_fills: FxHashMap::default(),
            exec_done: ExecWheel::new(),
            cycle: 0,
            last_fetch_block: None,
            stream_exhausted: false,
            stats: CoreStats::default(),
            completion_scratch: Vec::new(),
            eviction_scratch: Vec::new(),
            ready_scratch: Vec::new(),
            writeback_scratch: Vec::new(),
            cfg,
        })
    }

    /// Attaches a Time-Keeping prefetch engine (requires the hierarchy
    /// to have been built with a prefetch buffer).
    pub fn attach_prefetcher(&mut self, tk: TimeKeeping) {
        self.tk = Some(tk);
    }

    /// The core configuration.
    #[must_use]
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Whole-run statistics.
    #[must_use]
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Committed-instruction count. Cheaper than [`Core::stats`] (which
    /// copies the whole statistics struct) for per-nanosecond polling.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.stats.committed
    }

    /// Shared access to the memory hierarchy (stats, VSV signals).
    #[must_use]
    pub fn mem(&self) -> &Hierarchy {
        &self.mem
    }

    /// Exclusive access to the memory hierarchy (signal draining).
    pub fn mem_mut(&mut self) -> &mut Hierarchy {
        &mut self.mem
    }

    /// The attached prefetch engine, if any.
    #[must_use]
    pub fn prefetcher(&self) -> Option<&TimeKeeping> {
        self.tk.as_ref()
    }

    /// The branch predictor (for accuracy reporting).
    #[must_use]
    pub fn bpred(&self) -> &BranchPredictor {
        &self.bpred
    }

    /// Current RUU occupancy (for power/occupancy traces).
    #[must_use]
    pub fn ruu_occupancy(&self) -> usize {
        self.ruu.occupancy()
    }

    /// Whether the program has fully drained: the stream ended and no
    /// instruction remains anywhere in the machine.
    #[must_use]
    pub fn done(&self) -> bool {
        self.stream_exhausted
            && self.peeked.is_none()
            && self.fetch_queue.is_empty()
            && self.ruu.is_empty()
    }

    /// Whether the pipeline is provably quiescent: no clock edge can
    /// make progress or change any architectural or micro-architectural
    /// state other than the cycle counters, until some external memory
    /// completion arrives. A quiescent core's [`Core::cycle`] is
    /// exactly a zero-activity cycle, so an owner may batch-apply any
    /// number of such cycles via [`Core::skip_idle_cycles`].
    ///
    /// The conditions, stage by stage:
    ///
    /// * no functional-unit completion is scheduled (`exec_done`
    ///   empty), so writeback is idle at every future cycle;
    /// * no RUU entry is issue-eligible and none can become so without
    ///   a completion, so issue is idle;
    /// * the RUU head is not completed, so commit is idle (this also
    ///   excludes the commit-blocked-store retry case);
    /// * dispatch is blocked (empty fetch queue, or window/LSQ full);
    /// * fetch is blocked on an I-miss, a yet-unresolved mispredict, a
    ///   full fetch queue, or stream exhaustion — and *not* merely
    ///   waiting out a redirect penalty, which elapses with cycles;
    /// * with a prefetch engine attached, no L1-D eviction is buffered
    ///   (its hand-off to the engine is timestamped per nanosecond).
    #[must_use]
    pub fn quiescent(&self) -> bool {
        self.exec_done.is_empty()
            && !self.ruu.any_ready()
            && self.ruu.commit_ready().is_none()
            && self.dispatch_blocked()
            && self.fetch_blocked()
            && (self.tk.is_none() || !self.mem.has_buffered_l1d_evictions())
    }

    fn dispatch_blocked(&self) -> bool {
        match self.fetch_queue.front() {
            None => true,
            Some((inst, _)) => !self.ruu.can_dispatch(inst),
        }
    }

    fn fetch_blocked(&self) -> bool {
        if self.icache_wait.is_some() {
            return true;
        }
        if self.halted_for_branch {
            // A pending redirect (`resume_fetch_at` set) elapses with
            // cycles, so fetch is only *indefinitely* blocked while the
            // branch is unresolved.
            return self.resume_fetch_at.is_none();
        }
        self.fetch_queue.len() >= self.cfg.fetch_queue
            || (self.stream_exhausted && self.peeked.is_none())
    }

    /// Batch-applies `edges` quiescent clock edges: exactly what
    /// `edges` calls to [`Core::cycle`] would do while
    /// [`Core::quiescent`] holds (each is a zero-issue, zero-activity
    /// cycle touching only the cycle counters).
    pub fn skip_idle_cycles(&mut self, edges: u64) {
        self.stats.cycles += edges;
        self.stats.zero_issue_cycles += edges;
        self.stats.issue_histogram.buckets[0] += edges;
        self.cycle += edges;
    }

    /// The next time (ns) the attached prefetch engine will run its
    /// harvest scan, if one is attached. Its per-nanosecond `tick` is a
    /// pure no-op strictly before this time.
    #[must_use]
    pub fn prefetch_harvest_at(&self) -> Option<u64> {
        self.tk
            .as_ref()
            .map(vsv_prefetch::TimeKeeping::next_harvest_at)
    }

    /// Advances the asynchronous memory domain to `now` (call every
    /// nanosecond) and runs the prefetch engine.
    pub fn tick_mem(&mut self, now: u64) {
        self.mem.tick(now);
        let mut victims = std::mem::take(&mut self.eviction_scratch);
        self.mem.take_l1d_evictions_into(&mut victims);
        if let Some(tk) = self.tk.as_mut() {
            for &victim in &victims {
                tk.on_evict(now, victim);
            }
            let proposals = tk.tick(now);
            for addr in proposals {
                let _ = self.mem.hw_prefetch(now, addr);
            }
        }
        self.eviction_scratch = victims;
    }

    /// Runs one pipeline clock edge at wall-clock time `now` (ns) and
    /// reports the cycle's structure activity.
    pub fn cycle(&mut self, now: u64) -> CycleActivity {
        let mut act = CycleActivity::default();
        let cycle = self.cycle;

        self.drain_memory(now, &mut act);
        self.writeback(cycle, &mut act);
        self.commit(now, &mut act);
        self.issue(now, cycle, &mut act);
        self.dispatch(&mut act);
        self.fetch(now, cycle, &mut act);

        self.stats.cycles += 1;
        self.stats.issued += u64::from(act.issued);
        self.stats.fetched += u64::from(act.fetched);
        self.stats.issue_histogram.record(act.issued);
        if act.issued == 0 {
            self.stats.zero_issue_cycles += 1;
        }
        self.cycle += 1;
        act
    }

    // ---- stages (reverse pipeline order) ---------------------------

    /// Absorbs refill completions from the ns domain into this clock
    /// edge: missing loads complete; a pending I-fetch resumes.
    fn drain_memory(&mut self, now: u64, act: &mut CycleActivity) {
        let mut completions = std::mem::take(&mut self.completion_scratch);
        self.mem.take_completions_into(&mut completions);
        for c in &completions {
            if self.icache_wait == Some(c.token) {
                self.icache_wait = None;
                continue;
            }
            if let Some(addr) = self.pending_fills.remove(&c.token) {
                if let Some(tk) = self.tk.as_mut() {
                    tk.on_fill(now, addr);
                }
            }
            if let Some(seq) = self.pending_loads.remove(&c.token) {
                self.complete_entry(seq, act);
            }
        }
        self.completion_scratch = completions;
    }

    /// Completes instructions whose functional-unit latency elapses at
    /// this cycle.
    fn writeback(&mut self, cycle: u64, act: &mut CycleActivity) {
        let mut done = std::mem::take(&mut self.writeback_scratch);
        self.exec_done.pop_at_into(cycle, &mut done);
        for &seq in &done {
            self.complete_entry(seq, act);
        }
        self.writeback_scratch = done;
    }

    fn complete_entry(&mut self, seq: Seq, act: &mut CycleActivity) {
        let (is_branch_mispredict, has_dst) = match self.ruu.entry(seq) {
            Some(e) => (
                e.mispredicted && e.inst.op() == OpClass::Branch,
                e.inst.dst().is_some(),
            ),
            None => return,
        };
        let woken = self.ruu.complete(seq);
        act.ruu_wakeups += woken;
        act.resultbus_ops += 1;
        if has_dst {
            act.regfile_writes += 1;
        }
        if is_branch_mispredict {
            // The fetch redirect arrives `penalty` cycles after the
            // branch resolves (Table 1: 8 cycles).
            self.resume_fetch_at = Some(self.cycle + u64::from(self.cfg.mispredict_penalty));
        }
    }

    /// In-order commit; stores write the D-cache here.
    fn commit(&mut self, now: u64, act: &mut CycleActivity) {
        while u64::from(act.committed) < self.cfg.commit_width as u64 {
            let Some(head) = self.ruu.commit_ready() else {
                break;
            };
            let inst = head.inst;
            let mispredicted = head.mispredicted;
            if inst.op() == OpClass::Store {
                let addr = inst.mem_addr().expect("store has an address");
                act.dl1_accesses += 1;
                act.lsq_accesses += 1;
                match self.mem.access_data(now, addr, AccessKind::Write) {
                    L1Outcome::Blocked(_) => {
                        // Retry next cycle; commit stalls here to stay
                        // in order.
                        break;
                    }
                    L1Outcome::Hit | L1Outcome::PrefetchBufferHit => {
                        if let Some(tk) = self.tk.as_mut() {
                            tk.on_access(now, addr);
                        }
                    }
                    L1Outcome::Miss(token) => {
                        // Write-buffer semantics: commit proceeds; the
                        // fill is tracked only for the prefetch engine.
                        if self.tk.is_some() {
                            self.pending_fills.insert(token, addr);
                        }
                        if let Some(tk) = self.tk.as_mut() {
                            tk.on_miss(now, addr);
                        }
                    }
                }
            }
            let entry = self.ruu.pop_commit();
            debug_assert_eq!(entry.inst.pc(), inst.pc());
            act.committed += 1;
            self.stats.committed += 1;
            match inst.op() {
                OpClass::Load => self.stats.loads += 1,
                OpClass::Store => self.stats.stores += 1,
                OpClass::Prefetch => self.stats.sw_prefetches += 1,
                OpClass::Branch => {
                    self.stats.branches += 1;
                    if mispredicted {
                        self.stats.mispredicts += 1;
                    }
                    let info = inst.branch_info().expect("branch has info");
                    self.bpred
                        .update(inst.pc(), info.kind, info.taken, info.target);
                    act.bpred_accesses += 1;
                }
                _ => {}
            }
        }
    }

    /// Out-of-order issue of up to `issue_width` ready instructions.
    fn issue(&mut self, now: u64, cycle: u64, act: &mut CycleActivity) {
        let mut candidates = std::mem::take(&mut self.ready_scratch);
        self.ruu
            .ready_seqs_into(self.cfg.ruu_entries, &mut candidates);
        let mut issued = 0usize;
        for &seq in &candidates {
            if issued >= self.cfg.issue_width {
                break;
            }
            let inst = match self.ruu.entry(seq) {
                Some(e) => e.inst,
                None => continue,
            };
            let op = inst.op();

            // Functional-unit availability (NOPs use none).
            let latency = self.latency_for(op);
            let fu_done = match self.fus.pool_for(op) {
                Some(pool) => match pool.try_issue(cycle, latency) {
                    Some(done) => Some(done),
                    None => continue, // structural hazard: try younger ops
                },
                None => None,
            };

            // Memory ops talk to the D-side now.
            let completion_cycle = match op {
                OpClass::Load => {
                    let addr = inst.mem_addr().expect("load has an address");
                    act.lsq_accesses += 1;
                    if self.cfg.conservative_mem_disambiguation
                        && self.ruu.has_older_store(seq)
                        && !self
                            .ruu
                            .older_store_to_block(seq, addr, self.l1d_block_bytes)
                    {
                        // Conservative mode: loads wait behind every
                        // older store (same-block stores still forward
                        // below).
                        continue;
                    }
                    if self
                        .ruu
                        .older_store_to_block(seq, addr, self.l1d_block_bytes)
                    {
                        self.stats.forwarded_loads += 1;
                        Some(cycle + 1)
                    } else {
                        act.dl1_accesses += 1;
                        match self.mem.access_data(now, addr, AccessKind::Read) {
                            L1Outcome::Hit => {
                                if let Some(tk) = self.tk.as_mut() {
                                    tk.on_access(now, addr);
                                }
                                Some(cycle + u64::from(self.cfg.l1_hit_latency))
                            }
                            L1Outcome::PrefetchBufferHit => {
                                if let Some(tk) = self.tk.as_mut() {
                                    tk.on_fill(now, addr);
                                    tk.on_access(now, addr);
                                }
                                Some(cycle + u64::from(self.cfg.pb_hit_latency))
                            }
                            L1Outcome::Miss(token) => {
                                self.pending_loads.insert(token, seq);
                                if self.tk.is_some() {
                                    self.pending_fills.insert(token, addr);
                                }
                                if let Some(tk) = self.tk.as_mut() {
                                    tk.on_miss(now, addr);
                                }
                                None // completes via drain_memory
                            }
                            L1Outcome::Blocked(_) => {
                                self.stats.mshr_blocked_issues += 1;
                                continue; // stays Ready; retry next cycle
                            }
                        }
                    }
                }
                OpClass::Prefetch => {
                    let addr = inst.mem_addr().expect("prefetch has an address");
                    act.dl1_accesses += 1;
                    // Non-binding: issue the access and complete
                    // immediately whatever the outcome.
                    let _ = self.mem.access_data(now, addr, AccessKind::SwPrefetch);
                    Some(cycle + 1)
                }
                OpClass::Store => {
                    // Address generation; the cache write happens at
                    // commit.
                    act.lsq_accesses += 1;
                    Some(cycle + 1)
                }
                OpClass::Nop => Some(cycle + 1),
                _ => fu_done,
            };

            self.ruu.mark_issued(seq, cycle);
            if let Some(done) = completion_cycle {
                self.exec_done.push(done, seq);
            }
            issued += 1;
            act.issued += 1;
            act.ruu_reads += 1;
            act.regfile_reads += inst.srcs().iter().flatten().count() as u32;
            match op {
                OpClass::IntMulDiv => act.int_muldiv_ops += 1,
                OpClass::FpAlu => act.fp_alu_ops += 1,
                OpClass::FpMulDiv => act.fp_muldiv_ops += 1,
                OpClass::Nop => {}
                _ => act.int_alu_ops += 1,
            }
        }
        self.ready_scratch = candidates;
    }

    fn latency_for(&self, op: OpClass) -> u32 {
        let l = &self.cfg.latencies;
        match op {
            OpClass::IntAlu | OpClass::Load | OpClass::Store | OpClass::Prefetch => l.int_alu,
            OpClass::IntMulDiv => l.int_muldiv,
            OpClass::FpAlu => l.fp_alu,
            OpClass::FpMulDiv => l.fp_muldiv,
            OpClass::Branch => l.branch,
            OpClass::Nop => 1,
        }
    }

    /// Renames fetched instructions into the window.
    fn dispatch(&mut self, act: &mut CycleActivity) {
        for _ in 0..self.cfg.decode_width {
            let Some(&(inst, flag)) = self.fetch_queue.front() else {
                break;
            };
            if !self.ruu.can_dispatch(&inst) {
                break;
            }
            self.fetch_queue.pop_front();
            let _seq = self.ruu.dispatch(inst, flag);
            act.dispatched += 1;
            act.ruu_writes += 1;
            if inst.op().is_mem() {
                act.lsq_accesses += 1;
            }
        }
    }

    /// Fetches along the predicted path.
    fn fetch(&mut self, now: u64, cycle: u64, act: &mut CycleActivity) {
        if self.icache_wait.is_some() {
            return;
        }
        if self.halted_for_branch {
            match self.resume_fetch_at {
                Some(at) if cycle >= at => {
                    self.halted_for_branch = false;
                    self.resume_fetch_at = None;
                    self.last_fetch_block = None;
                }
                _ => return,
            }
        }
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_queue.len() >= self.cfg.fetch_queue {
                break;
            }
            let Some(inst) = self.peek_stream() else {
                break;
            };
            // One I-cache access per block transition.
            let block = Addr(inst.pc().0).block(self.l1i_block_bytes);
            if self.last_fetch_block != Some(block) {
                act.il1_accesses += 1;
                match self.mem.access_inst(now, Addr(inst.pc().0)) {
                    L1Outcome::Hit | L1Outcome::PrefetchBufferHit => {
                        self.last_fetch_block = Some(block);
                    }
                    L1Outcome::Miss(token) => {
                        self.icache_wait = Some(token);
                        return;
                    }
                    L1Outcome::Blocked(_) => return,
                }
            }
            let inst = self.take_stream().expect("peeked");
            act.fetched += 1;

            if let Some(info) = inst.branch_info() {
                act.bpred_accesses += 1;
                let pred = self.bpred.predict(inst.pc(), info.kind);
                let correct = prediction_correct(&pred, &info);
                self.fetch_queue.push_back((inst, !correct));
                if !correct {
                    // Fetch goes down the wrong path: halt until the
                    // branch resolves plus the redirect penalty.
                    self.halted_for_branch = true;
                    self.resume_fetch_at = None;
                    return;
                }
                if info.taken {
                    // A (correctly) predicted-taken branch ends the
                    // fetch group and redirects the block tracker.
                    self.last_fetch_block = None;
                    return;
                }
            } else {
                self.fetch_queue.push_back((inst, false));
            }
        }
    }

    fn peek_stream(&mut self) -> Option<Inst> {
        if self.peeked.is_none() {
            self.peeked = self.stream.next_inst();
            if self.peeked.is_none() {
                self.stream_exhausted = true;
            }
        }
        self.peeked
    }

    fn take_stream(&mut self) -> Option<Inst> {
        let i = self.peek_stream();
        self.peeked = None;
        i
    }
}

/// A calendar-wheel schedule of functional-unit completions, indexed
/// by completion cycle modulo the wheel size. Latencies are small and
/// bounded (a handful of cycles), so completions land within one wheel
/// revolution of the current cycle and each slot only ever holds one
/// distinct completion time; the wheel doubles (re-bucketing) if a
/// pathological latency configuration ever violates that. Entries in
/// a slot pop in insertion order, matching the FIFO tie-break of the
/// event queue this replaces, so simulated results are unchanged — the
/// wheel just makes the every-cycle writeback poll O(1) with no heap.
#[derive(Debug)]
struct ExecWheel {
    slots: Vec<Vec<(u64, Seq)>>,
    mask: u64,
    pending: usize,
}

impl ExecWheel {
    fn new() -> Self {
        // 64 slots cover every latency in `OpLatencies::table1` with
        // room to spare; the wheel grows on demand for larger configs.
        ExecWheel {
            slots: vec![Vec::new(); 64],
            mask: 63,
            pending: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Schedules `seq` to complete at cycle `done`.
    fn push(&mut self, done: u64, seq: Seq) {
        let idx = (done & self.mask) as usize;
        if self.slots[idx].first().is_some_and(|&(at, _)| at != done) {
            self.grow(done);
            return self.push(done, seq);
        }
        self.slots[idx].push((done, seq));
        self.pending += 1;
    }

    /// Doubles the wheel until `done` no longer collides, preserving
    /// per-slot insertion order.
    fn grow(&mut self, done: u64) {
        let mut all: Vec<(u64, Seq)> = self
            .slots
            .iter_mut()
            .flat_map(|slot| slot.drain(..))
            .collect();
        // Re-bucketing must keep FIFO order within a completion time;
        // a stable sort by time only (original order preserved within
        // equal times) guarantees it regardless of slot layout.
        all.sort_by_key(|&(at, _)| at);
        let mut size = (self.mask + 1) * 2;
        let needs = |size: u64| {
            let mask = size - 1;
            let mut seen = vec![u64::MAX; size as usize];
            all.iter()
                .map(|&(at, _)| at)
                .chain(std::iter::once(done))
                .any(|at| {
                    let s = &mut seen[(at & mask) as usize];
                    let clash = *s != u64::MAX && *s != at;
                    *s = at;
                    clash
                })
        };
        while needs(size) {
            size *= 2;
        }
        self.slots = vec![Vec::new(); size as usize];
        self.mask = size - 1;
        self.pending = 0;
        for (at, seq) in all {
            self.push(at, seq);
        }
    }

    /// Drains every completion scheduled for exactly `cycle` into
    /// `out` (cleared first), in insertion order.
    fn pop_at_into(&mut self, cycle: u64, out: &mut Vec<Seq>) {
        out.clear();
        if self.pending == 0 {
            return;
        }
        let slot = &mut self.slots[(cycle & self.mask) as usize];
        if slot.first().is_some_and(|&(at, _)| at == cycle) {
            self.pending -= slot.len();
            out.extend(slot.drain(..).map(|(_, seq)| seq));
        }
    }
}

/// Whether a fetch-time prediction matches the resolved outcome.
fn prediction_correct(pred: &crate::bpred::Prediction, actual: &BranchInfo) -> bool {
    if actual.taken {
        pred.taken && pred.target == Some(actual.target)
    } else {
        !pred.taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsv_isa::{ArchReg, BranchKind, Pc, VecStream};
    use vsv_mem::HierarchyConfig;

    fn run(stream: VecStream, limit_ns: u64) -> Core<VecStream> {
        let mut core = Core::new(
            CoreConfig::baseline(),
            Hierarchy::new(HierarchyConfig::baseline()),
            stream,
        );
        let mut now = 0;
        while !core.done() && now < limit_ns {
            core.tick_mem(now);
            core.cycle(now);
            now += 1;
        }
        assert!(core.done(), "program did not drain within {limit_ns} ns");
        core
    }

    /// Loops PCs over a small code footprint so the I-cache warms up
    /// after the first pass, as in real loop-dominated code.
    fn loop_pc(i: u64) -> Pc {
        Pc((i % 128) * 4)
    }

    fn alu_chain(n: u64, dependent: bool) -> VecStream {
        (0..n)
            .map(|i| {
                if dependent {
                    Inst::alu(loop_pc(i), ArchReg::int(1), &[ArchReg::int(1)])
                } else {
                    Inst::alu(loop_pc(i), ArchReg::int((i % 8) as u8), &[])
                }
            })
            .collect()
    }

    #[test]
    fn independent_alus_reach_high_ipc() {
        let core = run(alu_chain(40_000, false), 100_000);
        let ipc = core.stats().ipc();
        assert!(ipc > 5.0, "8-wide core on independent ALUs: got IPC {ipc}");
    }

    #[test]
    fn dependent_chain_is_ipc_one_at_best() {
        let core = run(alu_chain(20_000, true), 100_000);
        let ipc = core.stats().ipc();
        assert!(ipc <= 1.05, "serial chain cannot exceed IPC 1, got {ipc}");
        assert!(
            ipc > 0.8,
            "back-to-back bypass should keep IPC near 1, got {ipc}"
        );
    }

    #[test]
    fn all_instructions_commit_exactly_once() {
        let core = run(alu_chain(777, false), 50_000);
        assert_eq!(core.stats().committed, 777);
    }

    #[test]
    fn load_miss_stalls_dependent_chain() {
        // A load to cold memory followed by a long dependent chain.
        let mut insts = vec![Inst::load(Pc(0), ArchReg::int(1), Addr(0x10_0000))];
        for i in 1..50u64 {
            insts.push(Inst::alu(Pc(i * 4), ArchReg::int(1), &[ArchReg::int(1)]));
        }
        let core = run(VecStream::new(insts), 50_000);
        // ~124 ns memory latency + 49 dependent cycles.
        assert!(
            core.stats().cycles > 150,
            "expected a memory-bound run, got {} cycles",
            core.stats().cycles
        );
    }

    #[test]
    fn mispredicted_branch_costs_bubble() {
        // Alternating taken/not-taken branches are learnable; a stream
        // of random-ish one-off branches to fresh PCs is not. Compare
        // cycles for never-taken (predicted well after warmup) versus
        // all-mispredicted first-encounter taken branches.
        let not_taken: VecStream = (0..500u64)
            .map(|i| {
                Inst::branch(
                    Pc(i * 4),
                    BranchInfo {
                        kind: BranchKind::Conditional,
                        taken: false,
                        target: Pc(i * 4 + 400),
                    },
                    None,
                )
            })
            .collect();
        let taken_fresh: VecStream = (0..500u64)
            .map(|i| {
                Inst::branch(
                    Pc(i * 4096), // fresh PC each time: BTB cold
                    BranchInfo {
                        kind: BranchKind::Conditional,
                        taken: true,
                        target: Pc(i * 4096 + 4),
                    },
                    None,
                )
            })
            .collect();
        let fast = run(not_taken, 100_000).stats().cycles;
        let slow_core = run(taken_fresh, 1_000_000);
        let slow = slow_core.stats().cycles;
        assert!(
            slow > fast * 3,
            "mispredictions must hurt: {slow} vs {fast} cycles"
        );
        assert!(slow_core.stats().mispredicts > 400);
    }

    #[test]
    fn store_to_load_forwarding() {
        let insts = vec![
            Inst::alu(Pc(0), ArchReg::int(1), &[]),
            Inst::store(Pc(4), Addr(0x40), ArchReg::int(1)),
            Inst::load(Pc(8), ArchReg::int(2), Addr(0x40)),
        ];
        let core = run(VecStream::new(insts), 10_000);
        assert_eq!(core.stats().forwarded_loads, 1);
        // The load never touched memory: no D-L1 miss for its block.
        assert_eq!(core.stats().committed, 3);
    }

    #[test]
    fn zero_issue_cycles_counted_during_miss() {
        let mut insts = vec![Inst::load(Pc(0), ArchReg::int(1), Addr(0x20_0000))];
        for i in 1..10u64 {
            insts.push(Inst::alu(Pc(i * 4), ArchReg::int(1), &[ArchReg::int(1)]));
        }
        let core = run(VecStream::new(insts), 50_000);
        assert!(
            core.stats().zero_issue_cycles > 80,
            "pipeline should sit idle during the L2 miss, got {}",
            core.stats().zero_issue_cycles
        );
    }

    #[test]
    fn software_prefetch_commits_without_waiting() {
        let insts = vec![
            Inst::prefetch(Pc(0), Addr(0x30_0000)),
            Inst::alu(Pc(4), ArchReg::int(1), &[]),
        ];
        let core = run(VecStream::new(insts), 5_000);
        assert_eq!(core.stats().sw_prefetches, 1);
        // One cold I-miss (~124 ns) is paid, but the program must NOT
        // additionally wait for the prefetch's own memory latency.
        assert!(core.stats().cycles < 200, "got {}", core.stats().cycles);
    }

    #[test]
    fn sw_prefetch_warms_cache_for_later_load() {
        // prefetch A, spin on ALUs for > memory latency, then load A.
        let mut insts = vec![Inst::prefetch(Pc(0), Addr(0x30_0000))];
        for i in 1..400u64 {
            insts.push(Inst::alu(loop_pc(i), ArchReg::int(1), &[ArchReg::int(1)]));
        }
        insts.push(Inst::load(loop_pc(400), ArchReg::int(2), Addr(0x30_0000)));
        let core = run(VecStream::new(insts), 50_000);
        let (_, l1d, _) = core.mem().cache_stats();
        // The prefetch (not the load) took the L2 miss for the data
        // block, so the final load hits in the L1.
        assert_eq!(core.mem().stats().l2_prefetch_misses, 1);
        assert!(l1d.hits >= 1);
    }

    #[test]
    fn icache_misses_stall_fetch_but_resolve() {
        // Jump far every instruction so each fetch touches a cold
        // I-block: massive I-side misses, still must drain.
        let insts: VecStream = (0..50u64)
            .map(|i| {
                Inst::branch(
                    Pc(i << 16),
                    BranchInfo {
                        kind: BranchKind::Jump,
                        taken: true,
                        target: Pc((i + 1) << 16),
                    },
                    None,
                )
            })
            .collect();
        let core = run(insts, 200_000);
        assert_eq!(core.stats().committed, 50);
        let (l1i, _, _) = core.mem().cache_stats();
        assert!(l1i.misses >= 50);
    }

    #[test]
    fn done_is_false_midway() {
        let mut core = Core::new(
            CoreConfig::baseline(),
            Hierarchy::new(HierarchyConfig::baseline()),
            alu_chain(100, false),
        );
        assert!(!core.done());
        core.tick_mem(0);
        core.cycle(0);
        assert!(!core.done());
    }

    #[test]
    fn ipc_is_bounded_by_width() {
        let core = run(alu_chain(8000, false), 100_000);
        assert!(core.stats().ipc() <= 8.0 + 1e-9);
    }
}

#[cfg(test)]
mod backpressure_tests {
    use super::*;
    use vsv_isa::{ArchReg, BranchKind, Pc, VecStream};
    use vsv_mem::HierarchyConfig;

    fn run_with(
        cfg: CoreConfig,
        mem: HierarchyConfig,
        stream: VecStream,
        limit: u64,
    ) -> Core<VecStream> {
        let mut core = Core::new(cfg, Hierarchy::new(mem), stream);
        let mut now = 0;
        while !core.done() && now < limit {
            core.tick_mem(now);
            core.cycle(now);
            now += 1;
        }
        assert!(core.done(), "program did not drain within {limit} ns");
        core
    }

    #[test]
    fn call_return_pairs_predict_after_warmup() {
        // A loop of call -> work -> return; the RAS should predict the
        // returns once the BTB knows the call targets.
        let mut insts = Vec::new();
        for lap in 0..200u64 {
            let _ = lap;
            insts.push(Inst::branch(
                Pc(0x100),
                vsv_isa::BranchInfo {
                    kind: BranchKind::Call,
                    taken: true,
                    target: Pc(0x400),
                },
                None,
            ));
            insts.push(Inst::alu(Pc(0x400), ArchReg::int(1), &[]));
            insts.push(Inst::branch(
                Pc(0x404),
                vsv_isa::BranchInfo {
                    kind: BranchKind::Return,
                    taken: true,
                    target: Pc(0x104),
                },
                None,
            ));
            insts.push(Inst::alu(Pc(0x104), ArchReg::int(2), &[]));
            // Jump back to the call site.
            insts.push(Inst::branch(
                Pc(0x108),
                vsv_isa::BranchInfo {
                    kind: BranchKind::Jump,
                    taken: true,
                    target: Pc(0x100),
                },
                None,
            ));
        }
        let core = run_with(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            VecStream::new(insts),
            100_000,
        );
        let s = core.stats();
        assert_eq!(s.committed, 1000);
        // After the first lap or two, all three branches per lap are
        // predicted: mispredicts should be a small fraction.
        assert!(
            s.mispredict_rate() < 0.05,
            "call/return loop should predict, rate {}",
            s.mispredict_rate()
        );
    }

    #[test]
    fn lsq_full_throttles_but_completes() {
        let mut cfg = CoreConfig::baseline();
        cfg.lsq_entries = 2;
        // A burst of independent hot loads larger than the LSQ.
        let insts: VecStream = (0..200u64)
            .map(|i| {
                Inst::load(
                    Pc((i % 32) * 4),
                    ArchReg::int((i % 4) as u8),
                    Addr(0x100 + (i % 8) * 32),
                )
            })
            .collect();
        let core = run_with(cfg, HierarchyConfig::baseline(), insts, 200_000);
        assert_eq!(core.stats().committed, 200);
        assert_eq!(core.stats().loads, 200);
    }

    #[test]
    fn dl1_mshr_full_retries_until_done() {
        let mut mem = HierarchyConfig::baseline();
        mem.dl1_mshrs = 1;
        // Many independent far loads: only one can be outstanding.
        let insts: VecStream = (0..24u64)
            .map(|i| {
                Inst::load(
                    Pc((i % 16) * 4),
                    ArchReg::int((i % 8) as u8),
                    Addr(0x100_0000 + i * 4096),
                )
            })
            .collect();
        let core = run_with(CoreConfig::baseline(), mem, insts, 200_000);
        assert_eq!(core.stats().committed, 24);
        assert!(
            core.stats().mshr_blocked_issues > 0,
            "the single MSHR must have caused retries"
        );
    }

    #[test]
    fn unpipelined_muldiv_serialises_on_two_units() {
        // 16 independent int divides on 2 unpipelined units, latency 8:
        // lower bound 16/2*8 = 64 cycles.
        let insts: VecStream = (0..16u64)
            .map(|i| {
                Inst::compute(
                    Pc((i % 16) * 4),
                    OpClass::IntMulDiv,
                    ArchReg::int((i % 8) as u8),
                    &[],
                )
            })
            .collect();
        let core = run_with(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            insts,
            200_000,
        );
        assert!(
            core.stats().cycles >= 64,
            "2 unpipelined units x 8 cycles bound, got {}",
            core.stats().cycles
        );
    }

    #[test]
    fn issue_never_exceeds_width() {
        let mut core = Core::new(
            CoreConfig::baseline(),
            Hierarchy::new(HierarchyConfig::baseline()),
            (0..4000u64)
                .map(|i| Inst::alu(Pc((i % 128) * 4), ArchReg::int((i % 8) as u8), &[]))
                .collect::<VecStream>(),
        );
        let mut now = 0;
        while !core.done() && now < 50_000 {
            core.tick_mem(now);
            let act = core.cycle(now);
            assert!(act.issued <= 8, "issued {} > width", act.issued);
            assert!(act.committed <= 8);
            assert!(act.fetched <= 8);
            now += 1;
        }
    }

    #[test]
    fn single_mispredict_costs_at_least_the_penalty() {
        // Two programs identical except one branch direction flips on
        // its single dynamic execution after the predictor was trained
        // the other way.
        let build = |taken: bool| {
            let mut v = Vec::new();
            for i in 0..64u64 {
                v.push(Inst::alu(Pc(i * 4), ArchReg::int(1), &[]));
            }
            v.push(Inst::branch(
                Pc(0x100),
                vsv_isa::BranchInfo {
                    kind: BranchKind::Conditional,
                    taken,
                    target: Pc(0x108),
                },
                None,
            ));
            let next = if taken { 0x108u64 } else { 0x104 };
            for i in 0..64u64 {
                v.push(Inst::alu(Pc(next + i * 4), ArchReg::int(2), &[]));
            }
            VecStream::new(v)
        };
        // Not-taken is the cold predictor's default: no bubble.
        let fast = run_with(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            build(false),
            100_000,
        );
        let slow = run_with(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            build(true),
            100_000,
        );
        assert_eq!(slow.stats().mispredicts, 1);
        assert!(
            slow.stats().cycles >= fast.stats().cycles + 8,
            "one mispredict must cost >= the 8-cycle penalty: {} vs {}",
            slow.stats().cycles,
            fast.stats().cycles
        );
    }

    #[test]
    fn store_misses_do_not_block_commit() {
        // Stores to cold far memory: commit should proceed long before
        // the ~124 ns fills would complete.
        let mut insts = Vec::new();
        for i in 0..8u64 {
            insts.push(Inst::store(
                Pc(i * 4),
                Addr(0x200_0000 + i * 4096),
                ArchReg::int(1),
            ));
        }
        for i in 8..40u64 {
            insts.push(Inst::alu(Pc(i * 4), ArchReg::int(2), &[]));
        }
        let core = run_with(
            CoreConfig::baseline(),
            HierarchyConfig::baseline(),
            VecStream::new(insts),
            100_000,
        );
        // Everything drains; the stores' misses ride the write buffer.
        // The run pays ~5 serial cold I-block misses (~620 cycles); if
        // the 8 store misses also serialised commit it would take
        // ~1000 cycles more.
        assert_eq!(core.stats().stores, 8);
        assert!(
            core.stats().cycles < 800,
            "store misses must not serialise commit: {} cycles",
            core.stats().cycles
        );
    }
}

#[cfg(test)]
mod disambiguation_tests {
    use super::*;
    use vsv_isa::{ArchReg, Pc, VecStream};
    use vsv_mem::HierarchyConfig;

    /// Alternating stores (to the hot set) and independent far loads.
    fn store_load_mix() -> VecStream {
        let mut v = Vec::new();
        for i in 0..400u64 {
            let pc = Pc((i % 64) * 4);
            if i % 2 == 0 {
                v.push(Inst::store(
                    pc,
                    Addr(0x1000 + (i % 16) * 32),
                    ArchReg::int(1),
                ));
            } else {
                v.push(Inst::load(
                    pc,
                    ArchReg::int((i % 4) as u8 + 2),
                    Addr(0x4000 + (i % 32) * 32),
                ));
            }
        }
        VecStream::new(v)
    }

    fn run_mode(conservative: bool) -> CoreStats {
        let mut cfg = CoreConfig::baseline();
        cfg.conservative_mem_disambiguation = conservative;
        let mut core = Core::new(
            cfg,
            Hierarchy::new(HierarchyConfig::baseline()),
            store_load_mix(),
        );
        let mut now = 0;
        while !core.done() && now < 100_000 {
            core.tick_mem(now);
            core.cycle(now);
            now += 1;
        }
        assert!(core.done());
        core.stats()
    }

    #[test]
    fn conservative_disambiguation_is_slower_but_correct() {
        let aggressive = run_mode(false);
        let conservative = run_mode(true);
        assert_eq!(aggressive.committed, conservative.committed);
        assert_eq!(aggressive.loads, conservative.loads);
        assert!(
            conservative.cycles > aggressive.cycles,
            "waiting behind stores must cost cycles: {} vs {}",
            conservative.cycles,
            aggressive.cycles
        );
    }

    #[test]
    fn forwarding_still_works_in_conservative_mode() {
        let mut cfg = CoreConfig::baseline();
        cfg.conservative_mem_disambiguation = true;
        let insts = vec![
            Inst::alu(Pc(0), ArchReg::int(1), &[]),
            Inst::store(Pc(4), Addr(0x40), ArchReg::int(1)),
            Inst::load(Pc(8), ArchReg::int(2), Addr(0x40)),
        ];
        let mut core = Core::new(
            cfg,
            Hierarchy::new(HierarchyConfig::baseline()),
            VecStream::new(insts),
        );
        let mut now = 0;
        while !core.done() && now < 10_000 {
            core.tick_mem(now);
            core.cycle(now);
            now += 1;
        }
        assert_eq!(core.stats().forwarded_loads, 1);
    }

    #[test]
    fn try_new_returns_validation_errors() {
        let mut cfg = CoreConfig::baseline();
        cfg.lsq_entries = cfg.ruu_entries + 1;
        let err = Core::try_new(
            cfg,
            Hierarchy::new(HierarchyConfig::baseline()),
            VecStream::new(Vec::new()),
        )
        .expect_err("lsq > ruu is invalid");
        assert!(err.contains("lsq_entries"), "{err}");
        assert!(Core::try_new(
            CoreConfig::baseline(),
            Hierarchy::new(HierarchyConfig::baseline()),
            VecStream::new(Vec::new()),
        )
        .is_ok());
    }
}
