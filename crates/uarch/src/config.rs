//! Core configuration (Table 1 of the paper).

/// Execution latencies per op class, in pipeline cycles.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpLatencies {
    /// Integer ALU (single cycle).
    pub int_alu: u32,
    /// Integer multiply/divide (blended; unpipelined).
    pub int_muldiv: u32,
    /// FP add/compare/convert (pipelined).
    pub fp_alu: u32,
    /// FP multiply/divide (blended; unpipelined).
    pub fp_muldiv: u32,
    /// Branch resolution latency.
    pub branch: u32,
}

impl OpLatencies {
    /// SimpleScalar-flavoured defaults for a 1 GHz 0.18 µm core.
    #[must_use]
    pub fn baseline() -> Self {
        OpLatencies {
            int_alu: 1,
            int_muldiv: 8,
            fp_alu: 2,
            fp_muldiv: 12,
            branch: 1,
        }
    }
}

/// Configuration of the out-of-order core.
///
/// Defaults ([`CoreConfig::baseline`]) reproduce Table 1: an 8-way
/// issue core with a 128-entry RUU, 64-entry LSQ, 8 integer ALUs, 2
/// integer mul/div units, 4 FP ALUs, 4 FP mul/div units, and an
/// 8-cycle branch-misprediction penalty.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions renamed/dispatched per cycle.
    pub decode_width: usize,
    /// Instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Register-update-unit (instruction window + ROB) entries.
    pub ruu_entries: usize,
    /// Load/store-queue entries.
    pub lsq_entries: usize,
    /// Fetch-queue entries decoupling fetch from dispatch.
    pub fetch_queue: usize,
    /// Integer ALU count.
    pub int_alu_units: usize,
    /// Integer multiplier/divider count.
    pub int_muldiv_units: usize,
    /// FP ALU count.
    pub fp_alu_units: usize,
    /// FP multiplier/divider count.
    pub fp_muldiv_units: usize,
    /// Branch-misprediction penalty in cycles (fetch-redirect bubble
    /// charged after the mispredicted branch resolves).
    pub mispredict_penalty: u32,
    /// L1 hit latency in *pipeline* cycles (the L1s are clocked with
    /// the pipeline; §4.3).
    pub l1_hit_latency: u32,
    /// Prefetch-buffer hit latency in pipeline cycles.
    pub pb_hit_latency: u32,
    /// Memory-disambiguation policy: `false` (default, the paper's
    /// aggressive baseline) lets loads issue past older stores to
    /// other blocks; `true` makes loads wait for every older store to
    /// leave the window — the conservative in-order-memory model, as
    /// an ablation axis.
    pub conservative_mem_disambiguation: bool,
    /// Execution latencies.
    pub latencies: OpLatencies,
    /// Branch predictor organisation (Table 1's hybrid by default).
    pub bpred: crate::bpred::BranchPredictorConfig,
}

impl CoreConfig {
    /// The paper's Table 1 core.
    #[must_use]
    pub fn baseline() -> Self {
        CoreConfig {
            fetch_width: 8,
            decode_width: 8,
            issue_width: 8,
            commit_width: 8,
            ruu_entries: 128,
            lsq_entries: 64,
            fetch_queue: 16,
            int_alu_units: 8,
            int_muldiv_units: 2,
            fp_alu_units: 4,
            fp_muldiv_units: 4,
            mispredict_penalty: 8,
            l1_hit_latency: 2,
            pb_hit_latency: 2,
            conservative_mem_disambiguation: false,
            latencies: OpLatencies::baseline(),
            bpred: crate::bpred::BranchPredictorConfig::baseline(),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency
    /// found (zero widths or empty structures).
    pub fn validate(&self) -> Result<(), String> {
        let positive = [
            ("fetch_width", self.fetch_width),
            ("decode_width", self.decode_width),
            ("issue_width", self.issue_width),
            ("commit_width", self.commit_width),
            ("ruu_entries", self.ruu_entries),
            ("lsq_entries", self.lsq_entries),
            ("fetch_queue", self.fetch_queue),
            ("int_alu_units", self.int_alu_units),
        ];
        for (name, v) in positive {
            if v == 0 {
                return Err(format!("{name} must be nonzero"));
            }
        }
        if self.lsq_entries > self.ruu_entries {
            return Err("lsq_entries cannot exceed ruu_entries".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let c = CoreConfig::baseline();
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.ruu_entries, 128);
        assert_eq!(c.lsq_entries, 64);
        assert_eq!(c.int_alu_units, 8);
        assert_eq!(c.int_muldiv_units, 2);
        assert_eq!(c.fp_alu_units, 4);
        assert_eq!(c.fp_muldiv_units, 4);
        assert_eq!(c.mispredict_penalty, 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_zero_widths() {
        let mut c = CoreConfig::baseline();
        c.issue_width = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_lsq_bigger_than_ruu() {
        let mut c = CoreConfig::baseline();
        c.lsq_entries = c.ruu_entries + 1;
        assert!(c.validate().is_err());
    }
}
