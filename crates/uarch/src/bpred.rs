//! Hybrid branch predictor, BTB and return-address stack.
//!
//! Table 1: "8K/8K/8K hybrid predictor; 32-entry RAS, 8192-entry 4-way
//! BTB, 8 cycle misprediction penalty". The hybrid combines an 8K-entry
//! bimodal table and an 8K-entry gshare table through an 8K-entry meta
//! (chooser) table, as in the Alpha 21264 tournament scheme.

use vsv_isa::{BranchKind, Pc};

/// Saturating 2-bit counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Counter2(u8);

impl Counter2 {
    fn taken(self) -> bool {
        self.0 >= 2
    }
    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Which direction-prediction scheme the predictor uses.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictorKind {
    /// Bimodal + gshare selected by a meta chooser (Table 1; the
    /// Alpha 21264 tournament scheme).
    #[default]
    Hybrid,
    /// Bimodal only: per-PC 2-bit counters.
    Bimodal,
    /// Gshare only: global-history-xor-PC 2-bit counters.
    Gshare,
}

/// Predictor table sizes.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchPredictorConfig {
    /// Direction scheme.
    pub kind: PredictorKind,
    /// Bimodal-table entries.
    pub bimodal_entries: usize,
    /// Gshare-table entries (also sets the history length).
    pub gshare_entries: usize,
    /// Meta-chooser entries.
    pub meta_entries: usize,
    /// BTB entries.
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_assoc: usize,
    /// Return-address-stack depth.
    pub ras_entries: usize,
}

impl BranchPredictorConfig {
    /// Table 1's 8K/8K/8K hybrid, 8192×4-way BTB, 32-entry RAS.
    #[must_use]
    pub fn baseline() -> Self {
        BranchPredictorConfig {
            kind: PredictorKind::Hybrid,
            bimodal_entries: 8192,
            gshare_entries: 8192,
            meta_entries: 8192,
            btb_entries: 8192,
            btb_assoc: 4,
            ras_entries: 32,
        }
    }
}

/// A direction + target prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (always `true` for unconditional kinds).
    pub taken: bool,
    /// Predicted target, when one is available (BTB or RAS hit).
    pub target: Option<Pc>,
}

/// Counters for predictor accuracy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchPredictorStats {
    /// Predictions made.
    pub lookups: u64,
    /// Updates applied.
    pub updates: u64,
    /// BTB lookups that found a target.
    pub btb_hits: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct BtbLine {
    valid: bool,
    tag: u64,
    target: Pc,
    last_use: u64,
}

/// The tournament predictor with BTB and RAS.
///
/// # Examples
///
/// ```
/// use vsv_isa::{BranchKind, Pc};
/// use vsv_uarch::{BranchPredictor, BranchPredictorConfig};
///
/// let mut bp = BranchPredictor::new(BranchPredictorConfig::baseline());
/// // Train a strongly-taken branch.
/// for _ in 0..4 {
///     bp.update(Pc(0x40), BranchKind::Conditional, true, Pc(0x100));
/// }
/// let p = bp.predict(Pc(0x40), BranchKind::Conditional);
/// assert!(p.taken);
/// assert_eq!(p.target, Some(Pc(0x100)));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    cfg: BranchPredictorConfig,
    bimodal: Vec<Counter2>,
    gshare: Vec<Counter2>,
    /// Meta counter: high means "trust gshare".
    meta: Vec<Counter2>,
    history: u64,
    // Flat BTB: `btb_assoc` consecutive ways per set.
    btb: Vec<BtbLine>,
    btb_sets: usize,
    ras: Vec<Pc>,
    use_counter: u64,
    stats: BranchPredictorStats,
}

impl BranchPredictor {
    /// Builds a predictor with all counters weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if any table size is zero or not a power of two, or the
    /// BTB entries are not divisible by its associativity.
    #[must_use]
    pub fn new(cfg: BranchPredictorConfig) -> Self {
        for (name, n) in [
            ("bimodal_entries", cfg.bimodal_entries),
            ("gshare_entries", cfg.gshare_entries),
            ("meta_entries", cfg.meta_entries),
        ] {
            assert!(
                n.is_power_of_two() && n > 0,
                "{name} must be a power of two"
            );
        }
        assert!(cfg.btb_assoc > 0 && cfg.btb_entries.is_multiple_of(cfg.btb_assoc));
        let btb_sets = cfg.btb_entries / cfg.btb_assoc;
        assert!(
            btb_sets.is_power_of_two(),
            "BTB set count must be a power of two"
        );
        assert!(cfg.ras_entries > 0, "RAS must have entries");
        BranchPredictor {
            bimodal: vec![Counter2(1); cfg.bimodal_entries],
            gshare: vec![Counter2(1); cfg.gshare_entries],
            meta: vec![Counter2(1); cfg.meta_entries],
            history: 0,
            btb: vec![BtbLine::default(); cfg.btb_entries],
            btb_sets,
            ras: Vec::with_capacity(cfg.ras_entries),
            use_counter: 0,
            stats: BranchPredictorStats::default(),
            cfg,
        }
    }

    /// The predictor configuration.
    #[must_use]
    pub fn config(&self) -> BranchPredictorConfig {
        self.cfg
    }

    /// Accuracy counters.
    #[must_use]
    pub fn stats(&self) -> BranchPredictorStats {
        self.stats
    }

    fn pc_index(pc: Pc, entries: usize) -> usize {
        ((pc.0 >> 2) as usize) & (entries - 1)
    }

    fn gshare_index(&self, pc: Pc) -> usize {
        (((pc.0 >> 2) ^ self.history) as usize) & (self.cfg.gshare_entries - 1)
    }

    /// Predicts the branch at `pc`. Calls (`BranchKind::Call`) push the
    /// fall-through PC on the RAS; returns pop it.
    pub fn predict(&mut self, pc: Pc, kind: BranchKind) -> Prediction {
        self.stats.lookups += 1;
        match kind {
            BranchKind::Conditional => {
                let b = self.bimodal[Self::pc_index(pc, self.cfg.bimodal_entries)].taken();
                let g = self.gshare[self.gshare_index(pc)].taken();
                let taken = match self.cfg.kind {
                    PredictorKind::Bimodal => b,
                    PredictorKind::Gshare => g,
                    PredictorKind::Hybrid => {
                        if self.meta[Self::pc_index(pc, self.cfg.meta_entries)].taken() {
                            g
                        } else {
                            b
                        }
                    }
                };
                let target = if taken { self.btb_lookup(pc) } else { None };
                Prediction { taken, target }
            }
            BranchKind::Jump => Prediction {
                taken: true,
                target: self.btb_lookup(pc),
            },
            BranchKind::Call => {
                let target = self.btb_lookup(pc);
                if self.ras.len() == self.cfg.ras_entries {
                    self.ras.remove(0);
                }
                self.ras.push(pc.next());
                Prediction {
                    taken: true,
                    target,
                }
            }
            BranchKind::Return => Prediction {
                taken: true,
                target: self.ras.pop(),
            },
        }
    }

    /// Trains the tables with the resolved outcome. `target` is the
    /// actual taken-target (used to fill the BTB for taken branches).
    pub fn update(&mut self, pc: Pc, kind: BranchKind, taken: bool, target: Pc) {
        self.stats.updates += 1;
        if kind == BranchKind::Conditional {
            let bi = Self::pc_index(pc, self.cfg.bimodal_entries);
            let gi = self.gshare_index(pc);
            let mi = Self::pc_index(pc, self.cfg.meta_entries);
            let b_correct = self.bimodal[bi].taken() == taken;
            let g_correct = self.gshare[gi].taken() == taken;
            // Meta trains toward whichever component was right.
            if b_correct != g_correct {
                self.meta[mi].update(g_correct);
            }
            self.bimodal[bi].update(taken);
            self.gshare[gi].update(taken);
            self.history = (self.history << 1) | u64::from(taken);
        }
        if taken && kind != BranchKind::Return {
            self.btb_fill(pc, target);
        }
    }

    fn btb_sets(&self) -> usize {
        self.btb_sets
    }

    /// The ways of BTB set `set`, in way order.
    fn btb_set_mut(&mut self, set: usize) -> &mut [BtbLine] {
        let a = self.cfg.btb_assoc;
        &mut self.btb[set * a..set * a + a]
    }

    fn btb_lookup(&mut self, pc: Pc) -> Option<Pc> {
        let sets = self.btb_sets();
        let set = ((pc.0 >> 2) as usize) & (sets - 1);
        let tag = pc.0 >> 2 >> sets.trailing_zeros();
        self.use_counter += 1;
        let counter = self.use_counter;
        let hit = self
            .btb_set_mut(set)
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| {
                l.last_use = counter;
                l.target
            });
        if hit.is_some() {
            self.stats.btb_hits += 1;
        }
        hit
    }

    fn btb_fill(&mut self, pc: Pc, target: Pc) {
        let sets = self.btb_sets();
        let set = ((pc.0 >> 2) as usize) & (sets - 1);
        let tag = pc.0 >> 2 >> sets.trailing_zeros();
        self.use_counter += 1;
        let counter = self.use_counter;
        let ways = self.btb_set_mut(set);
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.target = target;
            line.last_use = counter;
            return;
        }
        let victim = match ways.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("assoc >= 1"),
        };
        ways[victim] = BtbLine {
            valid: true,
            tag,
            target,
            last_use: counter,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp() -> BranchPredictor {
        BranchPredictor::new(BranchPredictorConfig::baseline())
    }

    #[test]
    fn learns_always_taken() {
        let mut p = bp();
        let pc = Pc(0x100);
        for _ in 0..4 {
            p.update(pc, BranchKind::Conditional, true, Pc(0x200));
        }
        let pred = p.predict(pc, BranchKind::Conditional);
        assert!(pred.taken);
        assert_eq!(pred.target, Some(Pc(0x200)));
    }

    #[test]
    fn learns_always_not_taken() {
        let mut p = bp();
        let pc = Pc(0x100);
        for _ in 0..4 {
            p.update(pc, BranchKind::Conditional, false, Pc(0x200));
        }
        let pred = p.predict(pc, BranchKind::Conditional);
        assert!(!pred.taken);
        assert_eq!(pred.target, None, "not-taken predictions carry no target");
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        let mut p = bp();
        let pc = Pc(0x40);
        // Alternating T/N/T/N: bimodal dithers, gshare nails it.
        let mut correct = 0;
        for i in 0..200u32 {
            let actual = i % 2 == 0;
            let pred = p.predict(pc, BranchKind::Conditional);
            if pred.taken == actual {
                correct += 1;
            }
            p.update(pc, BranchKind::Conditional, actual, Pc(0x80));
        }
        assert!(
            correct > 150,
            "hybrid should learn alternation, got {correct}/200"
        );
    }

    #[test]
    fn ras_predicts_matching_return() {
        let mut p = bp();
        let call_pc = Pc(0x1000);
        let pred_call = p.predict(call_pc, BranchKind::Call);
        assert!(pred_call.taken);
        let pred_ret = p.predict(Pc(0x2000), BranchKind::Return);
        assert_eq!(pred_ret.target, Some(call_pc.next()));
        // Stack now empty: next return has no target.
        assert_eq!(p.predict(Pc(0x2000), BranchKind::Return).target, None);
    }

    #[test]
    fn ras_handles_nesting_and_overflow() {
        let mut p = bp();
        for i in 0..40u64 {
            p.predict(Pc(0x100 + 4 * i), BranchKind::Call);
        }
        // Depth capped at 32: the 8 oldest were dropped.
        let mut targets = Vec::new();
        for _ in 0..40 {
            targets.push(p.predict(Pc(0), BranchKind::Return).target);
        }
        let valid = targets.iter().filter(|t| t.is_some()).count();
        assert_eq!(valid, 32);
        // Returns come in LIFO order.
        assert_eq!(targets[0], Some(Pc(0x100 + 4 * 39).next()));
    }

    #[test]
    fn jumps_predict_taken_with_btb_target() {
        let mut p = bp();
        let pc = Pc(0x500);
        assert_eq!(p.predict(pc, BranchKind::Jump).target, None);
        p.update(pc, BranchKind::Jump, true, Pc(0x900));
        let pred = p.predict(pc, BranchKind::Jump);
        assert!(pred.taken);
        assert_eq!(pred.target, Some(Pc(0x900)));
    }

    #[test]
    fn btb_replaces_lru_within_set() {
        let mut cfg = BranchPredictorConfig::baseline();
        cfg.btb_entries = 8;
        cfg.btb_assoc = 2;
        let mut p = BranchPredictor::new(cfg);
        // Three taken branches mapping to the same BTB set (4 sets).
        let a = Pc(0x00);
        let b = Pc(0x40);
        let c = Pc(0x80);
        p.update(a, BranchKind::Jump, true, Pc(0x1000));
        p.update(b, BranchKind::Jump, true, Pc(0x2000));
        let _ = p.predict(a, BranchKind::Jump); // refresh a
        p.update(c, BranchKind::Jump, true, Pc(0x3000)); // evicts b
        assert_eq!(p.predict(a, BranchKind::Jump).target, Some(Pc(0x1000)));
        assert_eq!(p.predict(b, BranchKind::Jump).target, None);
        assert_eq!(p.predict(c, BranchKind::Jump).target, Some(Pc(0x3000)));
    }

    #[test]
    fn stats_count() {
        let mut p = bp();
        p.update(Pc(0), BranchKind::Conditional, true, Pc(8));
        let _ = p.predict(Pc(0), BranchKind::Conditional);
        assert_eq!(p.stats().updates, 1);
        assert_eq!(p.stats().lookups, 1);
    }
}

#[cfg(test)]
mod kind_tests {
    use super::*;

    fn accuracy(kind: PredictorKind, outcomes: impl Iterator<Item = bool>) -> f64 {
        let mut cfg = BranchPredictorConfig::baseline();
        cfg.kind = kind;
        let mut p = BranchPredictor::new(cfg);
        let pc = Pc(0x40);
        let (mut total, mut right) = (0u64, 0u64);
        for (i, actual) in outcomes.enumerate() {
            let pred = p.predict(pc, BranchKind::Conditional);
            if i > 50 {
                total += 1;
                if pred.taken == actual {
                    right += 1;
                }
            }
            p.update(pc, BranchKind::Conditional, actual, Pc(0x80));
        }
        right as f64 / total as f64
    }

    #[test]
    fn gshare_beats_bimodal_on_alternation() {
        let alt = |n: usize| (0..n).map(|i| i % 2 == 0);
        let bimodal = accuracy(PredictorKind::Bimodal, alt(400));
        let gshare = accuracy(PredictorKind::Gshare, alt(400));
        let hybrid = accuracy(PredictorKind::Hybrid, alt(400));
        assert!(gshare > 0.95, "gshare learns alternation: {gshare}");
        assert!(bimodal < 0.7, "bimodal dithers on alternation: {bimodal}");
        assert!(hybrid > 0.9, "the chooser routes to gshare: {hybrid}");
    }

    #[test]
    fn all_kinds_learn_a_constant_direction() {
        for kind in [
            PredictorKind::Bimodal,
            PredictorKind::Gshare,
            PredictorKind::Hybrid,
        ] {
            let acc = accuracy(kind, (0..300).map(|_| true));
            assert!(acc > 0.98, "{kind:?}: {acc}");
        }
    }
}
