//! Functional-unit pools.

use vsv_isa::OpClass;

use crate::config::CoreConfig;

/// One pool of identical functional units.
///
/// ALU pools are fully pipelined (a unit accepts a new op every cycle);
/// mul/div pools are unpipelined (a unit is busy for the op's full
/// latency).
#[derive(Debug, Clone)]
pub struct FuPool {
    /// Cycle at which each unit becomes free.
    free_at: Vec<u64>,
    pipelined: bool,
    issued: u64,
    structural_stalls: u64,
}

impl FuPool {
    /// Creates a pool of `units` units.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero.
    #[must_use]
    pub fn new(units: usize, pipelined: bool) -> Self {
        assert!(units > 0, "a functional-unit pool needs at least one unit");
        FuPool {
            free_at: vec![0; units],
            pipelined,
            issued: 0,
            structural_stalls: 0,
        }
    }

    /// Tries to start an op of `latency` cycles at `cycle`.
    /// Returns the completion cycle, or `None` if no unit is free
    /// (a structural hazard).
    pub fn try_issue(&mut self, cycle: u64, latency: u32) -> Option<u64> {
        match self.free_at.iter_mut().find(|f| **f <= cycle) {
            Some(slot) => {
                let done = cycle + u64::from(latency.max(1));
                // Pipelined units accept a new op next cycle; the
                // others are busy until completion.
                *slot = if self.pipelined { cycle + 1 } else { done };
                self.issued += 1;
                Some(done)
            }
            None => {
                self.structural_stalls += 1;
                None
            }
        }
    }

    /// Ops issued to this pool.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Issue attempts rejected for lack of a free unit.
    #[must_use]
    pub fn structural_stalls(&self) -> u64 {
        self.structural_stalls
    }

    /// Number of units in the pool.
    #[must_use]
    pub fn units(&self) -> usize {
        self.free_at.len()
    }
}

/// The full set of pools from Table 1.
#[derive(Debug, Clone)]
pub struct FuSet {
    /// Integer ALUs (8, pipelined). Also execute branches, stores'
    /// address generation and software prefetches.
    pub int_alu: FuPool,
    /// Integer mul/div (2, unpipelined).
    pub int_muldiv: FuPool,
    /// FP ALUs (4, pipelined).
    pub fp_alu: FuPool,
    /// FP mul/div (4, unpipelined).
    pub fp_muldiv: FuPool,
}

impl FuSet {
    /// Builds the pools described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if any pool size is zero.
    #[must_use]
    pub fn new(cfg: &CoreConfig) -> Self {
        FuSet {
            int_alu: FuPool::new(cfg.int_alu_units, true),
            int_muldiv: FuPool::new(cfg.int_muldiv_units, false),
            fp_alu: FuPool::new(cfg.fp_alu_units, true),
            fp_muldiv: FuPool::new(cfg.fp_muldiv_units, false),
        }
    }

    /// The pool an op class executes on. Loads/stores/prefetches use
    /// an integer ALU for address generation; branches resolve on an
    /// integer ALU; NOPs consume no unit (`None`).
    pub fn pool_for(&mut self, op: OpClass) -> Option<&mut FuPool> {
        match op {
            OpClass::IntAlu
            | OpClass::Branch
            | OpClass::Load
            | OpClass::Store
            | OpClass::Prefetch => Some(&mut self.int_alu),
            OpClass::IntMulDiv => Some(&mut self.int_muldiv),
            OpClass::FpAlu => Some(&mut self.fp_alu),
            OpClass::FpMulDiv => Some(&mut self.fp_muldiv),
            OpClass::Nop => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_pool_accepts_back_to_back() {
        let mut p = FuPool::new(1, true);
        assert_eq!(p.try_issue(0, 3), Some(3));
        assert_eq!(p.try_issue(1, 3), Some(4), "pipelined: next cycle OK");
        assert_eq!(p.try_issue(1, 3), None, "but only one per cycle per unit");
    }

    #[test]
    fn unpipelined_pool_blocks_until_done() {
        let mut p = FuPool::new(1, false);
        assert_eq!(p.try_issue(0, 8), Some(8));
        assert_eq!(p.try_issue(4, 8), None);
        assert_eq!(p.structural_stalls(), 1);
        assert_eq!(p.try_issue(8, 8), Some(16));
    }

    #[test]
    fn multiple_units_issue_same_cycle() {
        let mut p = FuPool::new(2, false);
        assert!(p.try_issue(0, 8).is_some());
        assert!(p.try_issue(0, 8).is_some());
        assert!(p.try_issue(0, 8).is_none());
        assert_eq!(p.issued(), 2);
    }

    #[test]
    fn zero_latency_clamps_to_one() {
        let mut p = FuPool::new(1, true);
        assert_eq!(p.try_issue(5, 0), Some(6));
    }

    #[test]
    fn pool_routing() {
        let mut set = FuSet::new(&CoreConfig::baseline());
        assert_eq!(set.pool_for(OpClass::Load).unwrap().units(), 8);
        assert_eq!(set.pool_for(OpClass::IntMulDiv).unwrap().units(), 2);
        assert_eq!(set.pool_for(OpClass::FpAlu).unwrap().units(), 4);
        assert_eq!(set.pool_for(OpClass::FpMulDiv).unwrap().units(), 4);
        assert!(set.pool_for(OpClass::Nop).is_none());
    }
}
