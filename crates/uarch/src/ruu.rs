//! The Register Update Unit: a combined instruction window / reorder
//! buffer with register renaming, as in SimpleScalar's `sim-outorder`
//! (the simulator family the paper's Wattch setup derives from).

use std::collections::VecDeque;

use vsv_isa::{Addr, ArchReg, Inst, OpClass};

/// A dynamic-instruction sequence number: dense, monotonically
/// increasing in program order.
pub type Seq = u64;

/// Lifecycle of an RUU entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Waiting on source operands.
    Waiting,
    /// Operands ready; eligible for issue.
    Ready,
    /// Executing on a functional unit (or waiting on a cache miss).
    Issued,
    /// Result produced; eligible for in-order commit.
    Completed,
}

/// One in-flight instruction.
#[derive(Debug, Clone)]
pub struct RuuEntry {
    /// Program-order sequence number.
    pub seq: Seq,
    /// The instruction itself.
    pub inst: Inst,
    /// Current lifecycle state.
    pub state: EntryState,
    /// Unresolved source dependences.
    pub deps_outstanding: u8,
    /// Entries waiting on this one's result.
    pub consumers: Vec<Seq>,
    /// Set at dispatch for branches whose fetch-time prediction was
    /// wrong; fetch resumes `penalty` cycles after this resolves.
    pub mispredicted: bool,
    /// Cycle the entry was issued (for occupancy stats).
    pub issued_at: Option<u64>,
}

/// The register update unit plus LSQ occupancy accounting.
///
/// # Examples
///
/// ```
/// use vsv_isa::{ArchReg, Inst, Pc};
/// use vsv_uarch::{EntryState, Ruu};
///
/// let mut ruu = Ruu::new(4, 2);
/// let producer = ruu.dispatch(Inst::alu(Pc(0), ArchReg::int(1), &[]), false);
/// let consumer = ruu.dispatch(
///     Inst::alu(Pc(4), ArchReg::int(2), &[ArchReg::int(1)]),
///     false,
/// );
/// assert_eq!(ruu.entry(consumer).unwrap().state, EntryState::Waiting);
/// ruu.mark_issued(producer, 0);
/// ruu.complete(producer);
/// assert_eq!(ruu.entry(consumer).unwrap().state, EntryState::Ready);
/// ```
#[derive(Debug, Clone)]
pub struct Ruu {
    entries: VecDeque<RuuEntry>,
    head_seq: Seq,
    next_seq: Seq,
    capacity: usize,
    lsq_capacity: usize,
    lsq_occupancy: usize,
    reg_producer: [Option<Seq>; ArchReg::COUNT],
    peak_occupancy: usize,
    // Count of entries in `EntryState::Ready`, maintained at every
    // state transition so the issue stage can skip its window scan
    // (and the fast-forward path can test quiescence) in O(1).
    ready_count: usize,
    // In-flight store sequence numbers, oldest first. Entries only
    // leave the window through in-order commit, so this stays sorted,
    // which makes `has_older_store` O(1) and `older_store_to_block` a
    // scan over stores only instead of the whole window.
    store_seqs: VecDeque<Seq>,
    // Bit i set ⇔ the entry at window index i (seq = head_seq + i) is
    // Ready. Lets `ready_seqs_into` walk set bits instead of scanning
    // a window full of Waiting entries; commit shifts the map right by
    // one (a couple of word ops for a 128-entry window).
    ready_bits: Vec<u64>,
    // Retired consumer lists, kept (empty, capacity intact) for reuse
    // by later dispatches so wakeup-list growth never re-allocates in
    // steady state.
    consumer_pool: Vec<Vec<Seq>>,
}

impl Ruu {
    /// Creates an empty window of `capacity` entries with an LSQ of
    /// `lsq_capacity` memory slots.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    #[must_use]
    pub fn new(capacity: usize, lsq_capacity: usize) -> Self {
        assert!(capacity > 0, "RUU capacity must be nonzero");
        assert!(lsq_capacity > 0, "LSQ capacity must be nonzero");
        Ruu {
            entries: VecDeque::with_capacity(capacity),
            head_seq: 0,
            next_seq: 0,
            capacity,
            lsq_capacity,
            lsq_occupancy: 0,
            reg_producer: [None; ArchReg::COUNT],
            peak_occupancy: 0,
            ready_count: 0,
            store_seqs: VecDeque::new(),
            ready_bits: vec![0; capacity.div_ceil(64)],
            consumer_pool: Vec::new(),
        }
    }

    /// Sets the ready bit for in-window `seq`.
    fn set_ready_bit(&mut self, seq: Seq) {
        let i = (seq - self.head_seq) as usize;
        self.ready_bits[i / 64] |= 1 << (i % 64);
    }

    /// Clears the ready bit for in-window `seq`.
    fn clear_ready_bit(&mut self, seq: Seq) {
        let i = (seq - self.head_seq) as usize;
        self.ready_bits[i / 64] &= !(1 << (i % 64));
    }

    /// Whether the window has no free entry.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Live entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Live memory (LSQ) entries.
    #[must_use]
    pub fn lsq_occupancy(&self) -> usize {
        self.lsq_occupancy
    }

    /// High-water mark of window occupancy.
    #[must_use]
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Whether dispatching `op` would exceed the LSQ.
    #[must_use]
    pub fn lsq_blocks(&self, op: OpClass) -> bool {
        op.is_mem() && self.lsq_occupancy >= self.lsq_capacity
    }

    /// Whether `inst` can be dispatched right now.
    #[must_use]
    pub fn can_dispatch(&self, inst: &Inst) -> bool {
        !self.is_full() && !self.lsq_blocks(inst.op())
    }

    /// Renames and allocates `inst`, returning its sequence number.
    /// `mispredicted` flags a branch whose prediction was wrong.
    ///
    /// # Panics
    ///
    /// Panics if the window or (for memory ops) the LSQ is full; call
    /// [`Ruu::can_dispatch`] first.
    pub fn dispatch(&mut self, inst: Inst, mispredicted: bool) -> Seq {
        assert!(!self.is_full(), "RUU full");
        assert!(!self.lsq_blocks(inst.op()), "LSQ full");
        let seq = self.next_seq;
        self.next_seq += 1;
        if inst.op().is_mem() {
            self.lsq_occupancy += 1;
        }
        if inst.op() == OpClass::Store {
            self.store_seqs.push_back(seq);
        }

        let mut deps = 0u8;
        let mut dep_seqs: [Option<Seq>; 2] = [None; 2];
        for (slot, src) in dep_seqs.iter_mut().zip(inst.srcs().iter()) {
            if let Some(reg) = src {
                if let Some(prod) = self.reg_producer[reg.index()] {
                    // Only a still-live, incomplete producer creates a
                    // dependence (completed values forward from the
                    // regfile/bypass).
                    if self
                        .entry(prod)
                        .is_some_and(|e| e.state != EntryState::Completed)
                    {
                        *slot = Some(prod);
                        deps += 1;
                    }
                }
            }
        }

        let state = if deps == 0 {
            self.ready_count += 1;
            self.set_ready_bit(seq);
            EntryState::Ready
        } else {
            EntryState::Waiting
        };
        self.entries.push_back(RuuEntry {
            seq,
            inst,
            state,
            deps_outstanding: deps,
            consumers: self.consumer_pool.pop().unwrap_or_default(),
            mispredicted,
            issued_at: None,
        });
        self.peak_occupancy = self.peak_occupancy.max(self.entries.len());

        // Register in producers' consumer lists (after push so a
        // self-dependence like `r1 <- [r1]` is handled by the lookup
        // above using the *previous* producer).
        for prod in dep_seqs.into_iter().flatten() {
            if let Some(e) = self.entry_mut(prod) {
                e.consumers.push(seq);
            }
        }
        if let Some(dst) = inst.dst() {
            self.reg_producer[dst.index()] = Some(seq);
        }
        seq
    }

    /// Shared access to entry `seq`, if still in the window.
    #[must_use]
    pub fn entry(&self, seq: Seq) -> Option<&RuuEntry> {
        let idx = seq.checked_sub(self.head_seq)? as usize;
        self.entries.get(idx)
    }

    fn entry_mut(&mut self, seq: Seq) -> Option<&mut RuuEntry> {
        let idx = seq.checked_sub(self.head_seq)? as usize;
        self.entries.get_mut(idx)
    }

    /// Whether any entry is issue-eligible. O(1).
    #[must_use]
    pub fn any_ready(&self) -> bool {
        self.ready_count > 0
    }

    /// Sequence numbers of up to `max` issue-eligible entries, oldest
    /// first.
    #[must_use]
    pub fn ready_seqs(&self, max: usize) -> Vec<Seq> {
        let mut out = Vec::new();
        self.ready_seqs_into(max, &mut out);
        out
    }

    /// Fills `out` (cleared first) with up to `max` issue-eligible
    /// sequence numbers, oldest first. Reusing the same scratch `Vec`
    /// keeps the issue stage allocation-free; the maintained ready
    /// count lets the scan stop as soon as all ready entries are found
    /// (or never start when there are none).
    pub fn ready_seqs_into(&self, max: usize, out: &mut Vec<Seq>) {
        out.clear();
        if self.ready_count == 0 {
            return;
        }
        let want = max.min(self.ready_count);
        'words: for (w, &word) in self.ready_bits.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                debug_assert_eq!(
                    self.entries.get(i).map(|e| e.state),
                    Some(EntryState::Ready),
                    "ready bitmap out of sync at index {i}"
                );
                out.push(self.head_seq + i as Seq);
                if out.len() == want {
                    break 'words;
                }
            }
        }
    }

    /// Transitions `seq` to [`EntryState::Issued`].
    pub fn mark_issued(&mut self, seq: Seq, cycle: u64) {
        if let Some(e) = self.entry_mut(seq) {
            debug_assert_eq!(e.state, EntryState::Ready);
            e.state = EntryState::Issued;
            e.issued_at = Some(cycle);
            self.ready_count -= 1;
            self.clear_ready_bit(seq);
        }
    }

    /// Completes `seq`, waking consumers. Returns the number of
    /// consumers woken (for wakeup-port activity accounting).
    pub fn complete(&mut self, seq: Seq) -> u32 {
        let (was_ready, consumers) = match self.entry_mut(seq) {
            Some(e) => {
                let was_ready = e.state == EntryState::Ready;
                e.state = EntryState::Completed;
                (was_ready, std::mem::take(&mut e.consumers))
            }
            None => return 0,
        };
        if was_ready {
            // Defensive: completion of a never-issued entry.
            self.ready_count -= 1;
            self.clear_ready_bit(seq);
        }
        let woken = consumers.len() as u32;
        for &c in &consumers {
            if let Some(e) = self.entry_mut(c) {
                e.deps_outstanding = e.deps_outstanding.saturating_sub(1);
                if e.deps_outstanding == 0 && e.state == EntryState::Waiting {
                    e.state = EntryState::Ready;
                    self.ready_count += 1;
                    self.set_ready_bit(c);
                }
            }
        }
        let mut consumers = consumers;
        consumers.clear();
        self.consumer_pool.push(consumers);
        woken
    }

    /// The head entry, if it is completed and thus committable.
    #[must_use]
    pub fn commit_ready(&self) -> Option<&RuuEntry> {
        self.entries
            .front()
            .filter(|e| e.state == EntryState::Completed)
    }

    /// Removes and returns the head entry (which must be completed).
    ///
    /// # Panics
    ///
    /// Panics if the head is missing or not completed.
    pub fn pop_commit(&mut self) -> RuuEntry {
        let e = self.entries.pop_front().expect("commit from empty RUU");
        assert_eq!(e.state, EntryState::Completed, "commit of incomplete entry");
        self.head_seq = e.seq + 1;
        // Window indices all drop by one: shift the ready map down.
        // (The head's own bit is already clear — it was Completed.)
        for w in 0..self.ready_bits.len() {
            let carry = self.ready_bits.get(w + 1).map_or(0, |&next| next << 63);
            self.ready_bits[w] = (self.ready_bits[w] >> 1) | carry;
        }
        if e.inst.op().is_mem() {
            self.lsq_occupancy -= 1;
        }
        if e.inst.op() == OpClass::Store {
            let front = self.store_seqs.pop_front();
            debug_assert_eq!(front, Some(e.seq), "stores commit in order");
        }
        // The architectural value now lives in the regfile.
        if let Some(dst) = e.inst.dst() {
            if self.reg_producer[dst.index()] == Some(e.seq) {
                self.reg_producer[dst.index()] = None;
            }
        }
        e
    }

    /// Whether *any* older store is still in flight ahead of `seq`
    /// (used by the conservative disambiguation mode, where loads may
    /// not issue past unretired stores). O(1): the oldest in-flight
    /// store is the front of the maintained store list.
    #[must_use]
    pub fn has_older_store(&self, seq: Seq) -> bool {
        self.store_seqs.front().is_some_and(|&s| s < seq)
    }

    /// Whether an older, still-in-flight store writes the same block
    /// as `addr` (store-to-load forwarding opportunity for the load at
    /// `seq`). Scans only the in-flight stores, not the whole window.
    #[must_use]
    pub fn older_store_to_block(&self, seq: Seq, addr: Addr, block_bytes: u64) -> bool {
        let block = addr.block(block_bytes);
        self.store_seqs.iter().take_while(|&&s| s < seq).any(|&s| {
            self.entry(s)
                .and_then(|e| e.inst.mem_addr())
                .is_some_and(|a| a.block(block_bytes) == block)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsv_isa::Pc;

    fn alu(pc: u64, dst: u8, srcs: &[u8]) -> Inst {
        let regs: Vec<ArchReg> = srcs.iter().map(|&n| ArchReg::int(n)).collect();
        Inst::alu(Pc(pc), ArchReg::int(dst), &regs)
    }

    #[test]
    fn independent_insts_are_ready_at_dispatch() {
        let mut r = Ruu::new(8, 4);
        let s = r.dispatch(alu(0, 1, &[]), false);
        assert_eq!(r.entry(s).unwrap().state, EntryState::Ready);
    }

    #[test]
    fn dependence_chain_wakes_in_order() {
        let mut r = Ruu::new(8, 4);
        let a = r.dispatch(alu(0, 1, &[]), false);
        let b = r.dispatch(alu(4, 2, &[1]), false);
        let c = r.dispatch(alu(8, 3, &[2]), false);
        assert_eq!(r.ready_seqs(8), vec![a]);
        r.mark_issued(a, 0);
        assert_eq!(r.complete(a), 1);
        assert_eq!(r.ready_seqs(8), vec![b]);
        r.mark_issued(b, 1);
        r.complete(b);
        assert_eq!(r.ready_seqs(8), vec![c]);
    }

    #[test]
    fn two_source_instruction_waits_for_both() {
        let mut r = Ruu::new(8, 4);
        let a = r.dispatch(alu(0, 1, &[]), false);
        let b = r.dispatch(alu(4, 2, &[]), false);
        let c = r.dispatch(alu(8, 3, &[1, 2]), false);
        r.mark_issued(a, 0);
        r.complete(a);
        assert_eq!(r.entry(c).unwrap().state, EntryState::Waiting);
        r.mark_issued(b, 0);
        r.complete(b);
        assert_eq!(r.entry(c).unwrap().state, EntryState::Ready);
    }

    #[test]
    fn completed_producer_creates_no_dependence() {
        let mut r = Ruu::new(8, 4);
        let a = r.dispatch(alu(0, 1, &[]), false);
        r.mark_issued(a, 0);
        r.complete(a);
        let b = r.dispatch(alu(4, 2, &[1]), false);
        assert_eq!(r.entry(b).unwrap().state, EntryState::Ready);
    }

    #[test]
    fn rename_tracks_latest_producer() {
        let mut r = Ruu::new(8, 4);
        let _old = r.dispatch(alu(0, 1, &[]), false);
        let new = r.dispatch(alu(4, 1, &[]), false);
        let user = r.dispatch(alu(8, 2, &[1]), false);
        // user depends on `new`, not `old`.
        r.mark_issued(new, 0);
        r.complete(new);
        assert_eq!(r.entry(user).unwrap().state, EntryState::Ready);
    }

    #[test]
    fn self_dependence_uses_previous_producer() {
        let mut r = Ruu::new(8, 4);
        let a = r.dispatch(alu(0, 1, &[]), false);
        // r1 <- f(r1): depends on the previous writer of r1, not itself.
        let b = r.dispatch(alu(4, 1, &[1]), false);
        assert_eq!(r.entry(b).unwrap().state, EntryState::Waiting);
        r.mark_issued(a, 0);
        r.complete(a);
        assert_eq!(r.entry(b).unwrap().state, EntryState::Ready);
    }

    #[test]
    fn in_order_commit_only_when_head_completed() {
        let mut r = Ruu::new(8, 4);
        let a = r.dispatch(alu(0, 1, &[]), false);
        let b = r.dispatch(alu(4, 2, &[]), false);
        r.mark_issued(b, 0);
        r.complete(b);
        assert!(r.commit_ready().is_none(), "head (a) not complete yet");
        r.mark_issued(a, 1);
        r.complete(a);
        assert_eq!(r.commit_ready().unwrap().seq, a);
        assert_eq!(r.pop_commit().seq, a);
        assert_eq!(r.pop_commit().seq, b);
        assert!(r.is_empty());
    }

    #[test]
    fn capacity_and_lsq_limits() {
        let mut r = Ruu::new(2, 1);
        let ld = Inst::load(Pc(0), ArchReg::int(1), Addr(0x40));
        assert!(r.can_dispatch(&ld));
        r.dispatch(ld, false);
        let ld2 = Inst::load(Pc(4), ArchReg::int(2), Addr(0x80));
        assert!(!r.can_dispatch(&ld2), "LSQ full");
        let a = alu(8, 3, &[]);
        assert!(r.can_dispatch(&a), "non-mem op unaffected by LSQ");
        r.dispatch(a, false);
        assert!(r.is_full());
        assert!(!r.can_dispatch(&alu(12, 4, &[])));
    }

    #[test]
    fn lsq_frees_at_commit() {
        let mut r = Ruu::new(4, 1);
        let s = r.dispatch(Inst::load(Pc(0), ArchReg::int(1), Addr(0x40)), false);
        assert_eq!(r.lsq_occupancy(), 1);
        r.mark_issued(s, 0);
        r.complete(s);
        r.pop_commit();
        assert_eq!(r.lsq_occupancy(), 0);
    }

    #[test]
    fn store_forwarding_visibility() {
        let mut r = Ruu::new(8, 4);
        let _st = r.dispatch(Inst::store(Pc(0), Addr(0x44), ArchReg::int(1)), false);
        let ld = r.dispatch(Inst::load(Pc(4), ArchReg::int(2), Addr(0x40)), false);
        assert!(r.older_store_to_block(ld, Addr(0x40), 32), "same 32B block");
        assert!(!r.older_store_to_block(ld, Addr(0x80), 32));
        // A *younger* store must not forward to an older load.
        let st2 = r.dispatch(Inst::store(Pc(8), Addr(0xc0), ArchReg::int(1)), false);
        let _ = st2;
        assert!(!r.older_store_to_block(ld, Addr(0xc0), 32));
    }

    #[test]
    fn commit_clears_stale_rename_mapping() {
        let mut r = Ruu::new(8, 4);
        let a = r.dispatch(alu(0, 1, &[]), false);
        r.mark_issued(a, 0);
        r.complete(a);
        r.pop_commit();
        // A new consumer of r1 sees no in-flight producer.
        let b = r.dispatch(alu(4, 2, &[1]), false);
        assert_eq!(r.entry(b).unwrap().state, EntryState::Ready);
    }

    #[test]
    fn peak_occupancy_high_water() {
        let mut r = Ruu::new(8, 8);
        for i in 0..5 {
            r.dispatch(alu(i * 4, 1, &[]), false);
        }
        assert_eq!(r.peak_occupancy(), 5);
    }

    #[test]
    #[should_panic(expected = "RUU full")]
    fn dispatch_into_full_window_panics() {
        let mut r = Ruu::new(1, 1);
        r.dispatch(alu(0, 1, &[]), false);
        r.dispatch(alu(4, 2, &[]), false);
    }
}
