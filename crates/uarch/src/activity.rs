//! Per-cycle activity vectors consumed by the power model.

/// Structure-access counts for one pipeline cycle.
///
/// The power model (`vsv-power`) multiplies these by per-access
/// energies, applies clock gating to idle structures, and scales
/// variable-VDD structures by the square of the instantaneous supply
/// voltage (paper §5.2).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleActivity {
    /// Instructions fetched into the fetch queue.
    pub fetched: u32,
    /// Instructions renamed/dispatched into the RUU.
    pub dispatched: u32,
    /// Instructions issued to functional units.
    pub issued: u32,
    /// Instructions committed.
    pub committed: u32,
    /// I-L1 block accesses.
    pub il1_accesses: u32,
    /// D-L1 accesses (loads at issue, stores at commit, prefetches).
    pub dl1_accesses: u32,
    /// Branch-predictor lookups plus updates.
    pub bpred_accesses: u32,
    /// Architectural register-file reads (operand fetch at issue).
    pub regfile_reads: u32,
    /// Architectural register-file writes (at writeback).
    pub regfile_writes: u32,
    /// RUU writes (dispatch).
    pub ruu_writes: u32,
    /// RUU reads (issue selection).
    pub ruu_reads: u32,
    /// RUU wakeup-port broadcasts (consumers woken at writeback).
    pub ruu_wakeups: u32,
    /// LSQ associative searches and inserts.
    pub lsq_accesses: u32,
    /// Integer-ALU operations (includes address generation, branches).
    pub int_alu_ops: u32,
    /// Integer multiply/divide operations.
    pub int_muldiv_ops: u32,
    /// FP-ALU operations.
    pub fp_alu_ops: u32,
    /// FP multiply/divide operations.
    pub fp_muldiv_ops: u32,
    /// Result-bus transfers (writebacks).
    pub resultbus_ops: u32,
}

impl CycleActivity {
    /// Sums every counter — a crude "how busy was this cycle" figure
    /// used by tests and debugging output.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        let fields = [
            self.fetched,
            self.dispatched,
            self.issued,
            self.committed,
            self.il1_accesses,
            self.dl1_accesses,
            self.bpred_accesses,
            self.regfile_reads,
            self.regfile_writes,
            self.ruu_writes,
            self.ruu_reads,
            self.ruu_wakeups,
            self.lsq_accesses,
            self.int_alu_ops,
            self.int_muldiv_ops,
            self.fp_alu_ops,
            self.fp_muldiv_ops,
            self.resultbus_ops,
        ];
        fields.iter().map(|&f| u64::from(f)).sum()
    }
}

/// Histogram of instructions issued per cycle (0..=8 for the Table 1
/// core). This is exactly the statistic VSV's FSMs sample: bucket 0 is
/// the zero-issue evidence the down-FSM looks for, and the upper
/// buckets are the ILP the up-FSM looks for.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IssueHistogram {
    /// `buckets[n]` counts cycles that issued exactly `n` instructions;
    /// `buckets[8]` also absorbs anything wider.
    pub buckets: [u64; 9],
}

impl IssueHistogram {
    /// Records one cycle's issue count.
    pub fn record(&mut self, issued: u32) {
        let i = (issued as usize).min(self.buckets.len() - 1);
        self.buckets[i] += 1;
    }

    /// Total cycles recorded.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Fraction of cycles issuing exactly `n`, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside the histogram (n > 8).
    #[must_use]
    pub fn fraction(&self, n: usize) -> f64 {
        let total = self.cycles();
        if total == 0 {
            0.0
        } else {
            self.buckets[n] as f64 / total as f64
        }
    }

    /// Mean issue rate over the recorded cycles.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let total = self.cycles();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(n, c)| n as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }
}

/// Whole-run counters maintained by the core.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Pipeline cycles executed.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions fetched.
    pub fetched: u64,
    /// Instructions issued.
    pub issued: u64,
    /// Loads committed.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// Branches committed.
    pub branches: u64,
    /// Mispredicted branches committed.
    pub mispredicts: u64,
    /// Software prefetches committed.
    pub sw_prefetches: u64,
    /// Cycles in which no instruction issued.
    pub zero_issue_cycles: u64,
    /// Issue attempts blocked by a full MSHR.
    pub mshr_blocked_issues: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub forwarded_loads: u64,
    /// Instructions issued per cycle, bucketed.
    pub issue_histogram: IssueHistogram,
}

impl CoreStats {
    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate in `[0, 1]`.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_accesses_sums_fields() {
        let mut a = CycleActivity::default();
        assert_eq!(a.total_accesses(), 0);
        a.fetched = 2;
        a.int_alu_ops = 3;
        assert_eq!(a.total_accesses(), 5);
    }

    #[test]
    fn ipc_handles_zero_cycles() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        let s = CoreStats {
            cycles: 100,
            committed: 250,
            ..CoreStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn issue_histogram_records_and_summarises() {
        let mut h = IssueHistogram::default();
        h.record(0);
        h.record(0);
        h.record(4);
        h.record(12); // clamps into the top bucket
        assert_eq!(h.cycles(), 4);
        assert!((h.fraction(0) - 0.5).abs() < 1e-12);
        assert_eq!(h.buckets[8], 1);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(IssueHistogram::default().mean(), 0.0);
    }

    #[test]
    fn mispredict_rate() {
        let s = CoreStats {
            branches: 10,
            mispredicts: 3,
            ..CoreStats::default()
        };
        assert!((s.mispredict_rate() - 0.3).abs() < 1e-12);
        assert_eq!(CoreStats::default().mispredict_rate(), 0.0);
    }
}
