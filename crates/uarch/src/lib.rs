//! The 8-way out-of-order superscalar core of the VSV simulator.
//!
//! Implements the paper's Table 1 baseline processor from scratch:
//!
//! * trace-driven fetch with a hybrid 8K/8K/8K branch predictor,
//!   8192-entry 4-way BTB and 32-entry return-address stack
//!   ([`BranchPredictor`]);
//! * register renaming into a 128-entry RUU with a 64-entry LSQ
//!   ([`Ruu`]);
//! * out-of-order issue to 8 integer ALUs, 2 integer mul/div, 4 FP
//!   ALUs and 4 FP mul/div units ([`FuSet`]);
//! * in-order commit, 8 wide;
//! * per-cycle activity vectors for the Wattch-style power model
//!   ([`CycleActivity`]).
//!
//! The core owns its [`vsv_mem::Hierarchy`] and optionally a
//! [`vsv_prefetch::TimeKeeping`] engine. See [`Core`] for the
//! clocking contract that makes VSV's two clock domains work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod bpred;
mod config;
mod fu;
mod pipeline;
mod ruu;

pub use activity::{CoreStats, CycleActivity, IssueHistogram};
pub use bpred::{
    BranchPredictor, BranchPredictorConfig, BranchPredictorStats, Prediction, PredictorKind,
};
pub use config::{CoreConfig, OpLatencies};
pub use fu::{FuPool, FuSet};
pub use pipeline::Core;
pub use ruu::{EntryState, Ruu, RuuEntry, Seq};
