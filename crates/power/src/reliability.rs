//! Voltage-dependent timing-error model for low-voltage SRAM reads.
//!
//! The paper treats the VDDL rail as free of correctness risk, but
//! real low-voltage SRAM is not: timing-speculative reads under
//! reduced supply pay a detect-and-retry tax (TS-Cache,
//! arxiv 1904.11200). [`ErrorCurve`] charges that tax: it maps an
//! operating point to a per-read error probability — exactly 0 at
//! VDDH, a configured rate at VDDL, and a quadratic interpolation at
//! intermediate ladder levels (timing slack shrinks roughly linearly
//! with voltage while the bit-flip likelihood of the marginal path
//! grows superlinearly, so a convex curve is the conservative shape).
//!
//! Randomness is *counter-based*: the consumer keeps a monotone draw
//! counter and evaluates [`counter_rng`] on `(seed, counter)` — a
//! stateless splitmix64-style hash — so a read's outcome depends only
//! on its ordinal position in the delivery stream, never on thread
//! count, fast-forward batching, or allocation order. Thresholds live
//! in u64 space ([`ErrorCurve::threshold`]): a draw errs iff
//! `counter_rng(seed, counter) < threshold`, which is exact for
//! probability 0 (threshold 0 → no draw can err) and saturates to
//! `u64::MAX` at probability ≥ 1.
//!
//! # Examples
//!
//! ```
//! use vsv_power::{counter_rng, ErrorCurve};
//!
//! let curve = ErrorCurve::new(1.8, 1.2, 1e-4);
//! assert_eq!(curve.threshold(1.8), 0);           // VDDH is error-free
//! assert!(curve.probability(1.2) > 0.0);         // VDDL pays the tax
//! let thr = curve.threshold(1.2);
//! let errs = counter_rng(42, 7) < thr;           // deterministic draw
//! assert_eq!(errs, counter_rng(42, 7) < thr);    // bit-identical replay
//! ```

/// Stateless counter-based PRNG: a splitmix64-style finalizer over
/// `seed + counter`. Uniform over `u64`, bit-identical everywhere —
/// the draw depends only on the pair, not on any hidden state.
#[must_use]
pub fn counter_rng(seed: u64, counter: u64) -> u64 {
    let mut z = seed.wrapping_add(counter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-read error probability as a function of the operating point.
///
/// `probability(v)` is exactly 0 for `v ≥ vddh`, `rate_at_vddl` at
/// `v = vddl`, and scales quadratically with the voltage deficit in
/// between (and beyond, for ladder levels below VDDL), clamped to
/// `[0, 1]`.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorCurve {
    /// Nominal supply: reads at (or above) this voltage never err.
    pub vddh: f64,
    /// Reference low supply where the configured rate applies.
    pub vddl: f64,
    /// Per-read error probability at `vddl`.
    pub rate_at_vddl: f64,
}

impl ErrorCurve {
    /// Builds a curve anchored at the two rails.
    #[must_use]
    pub fn new(vddh: f64, vddl: f64, rate_at_vddl: f64) -> Self {
        ErrorCurve {
            vddh,
            vddl,
            rate_at_vddl,
        }
    }

    /// Per-read error probability at supply `v`, in `[0, 1]`.
    /// Exactly `0.0` at or above VDDH (no float dust — the branch is
    /// taken before any arithmetic), `rate_at_vddl` at VDDL,
    /// quadratic in the normalized deficit elsewhere.
    #[must_use]
    pub fn probability(&self, v: f64) -> f64 {
        if v >= self.vddh || self.rate_at_vddl <= 0.0 {
            return 0.0;
        }
        let span = self.vddh - self.vddl;
        if span <= 0.0 {
            return self.rate_at_vddl.clamp(0.0, 1.0);
        }
        let deficit = (self.vddh - v) / span;
        (self.rate_at_vddl * deficit * deficit).clamp(0.0, 1.0)
    }

    /// The probability at `v` mapped into u64 threshold space: a draw
    /// `counter_rng(seed, counter) < threshold(v)` errs with the right
    /// probability. Probability 0 maps to threshold 0 (no u64 is below
    /// it); probability ≥ 1 saturates to `u64::MAX`.
    #[must_use]
    pub fn threshold(&self, v: f64) -> u64 {
        let p = self.probability(v);
        if p <= 0.0 {
            0
        } else if p >= 1.0 {
            u64::MAX
        } else {
            // 2^64 as f64; the cast saturates, so p just below 1
            // cannot overflow past u64::MAX.
            (p * 18_446_744_073_709_551_616.0) as u64
        }
    }

    /// Validates the curve parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency (non-finite or
    /// out-of-range rate, non-positive rails, VDDL above VDDH).
    pub fn validate(&self) -> Result<(), String> {
        if !self.rate_at_vddl.is_finite() || !(0.0..=1.0).contains(&self.rate_at_vddl) {
            return Err(format!(
                "error rate must be a finite probability in [0, 1], got {}",
                self.rate_at_vddl
            ));
        }
        if self.vddh <= 0.0 || self.vddl <= 0.0 {
            return Err("error-curve rails must be positive".into());
        }
        if self.vddl > self.vddh {
            return Err("error-curve VDDL must not exceed VDDH".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vddh_is_exactly_error_free() {
        let c = ErrorCurve::new(1.8, 1.2, 0.5);
        assert_eq!(c.probability(1.8), 0.0);
        assert_eq!(c.probability(2.5), 0.0);
        assert_eq!(c.threshold(1.8), 0);
        // Threshold 0 means no draw errs, for any counter.
        for counter in 0..64 {
            assert!(counter_rng(99, counter) >= c.threshold(1.8));
        }
    }

    #[test]
    fn curve_hits_the_vddl_anchor_and_is_monotone() {
        let c = ErrorCurve::new(1.8, 1.2, 1e-3);
        assert!((c.probability(1.2) - 1e-3).abs() < 1e-15);
        let mid = c.probability(1.5);
        assert!(mid > 0.0 && mid < 1e-3, "got {mid}");
        // Quadratic: halfway in voltage is a quarter of the rate.
        assert!((mid - 2.5e-4).abs() < 1e-12);
        // Below VDDL keeps climbing, clamped at 1.
        assert!(c.probability(0.9) > c.probability(1.2));
        assert_eq!(ErrorCurve::new(1.8, 1.2, 1.0).probability(0.1), 1.0);
    }

    #[test]
    fn zero_rate_disables_the_curve_everywhere() {
        let c = ErrorCurve::new(1.8, 1.2, 0.0);
        assert_eq!(c.probability(1.2), 0.0);
        assert_eq!(c.probability(0.5), 0.0);
        assert_eq!(c.threshold(0.5), 0);
    }

    #[test]
    fn threshold_saturates_and_scales() {
        let c = ErrorCurve::new(1.8, 1.2, 1.0);
        assert_eq!(c.threshold(1.2), u64::MAX);
        let half = ErrorCurve::new(1.8, 1.2, 0.5).threshold(1.2);
        // 0.5 · 2^64 = 2^63.
        assert_eq!(half, 1u64 << 63);
    }

    #[test]
    fn counter_rng_is_deterministic_and_spread_out() {
        assert_eq!(counter_rng(1, 2), counter_rng(1, 2));
        assert_ne!(counter_rng(1, 2), counter_rng(1, 3));
        assert_ne!(counter_rng(1, 2), counter_rng(2, 2));
        // Empirical hit-rate sanity: p = 1/16 over 4096 draws lands
        // within a loose band (this is a fixed function — the check
        // can never flake).
        let thr = ErrorCurve::new(1.8, 1.2, 1.0 / 16.0).threshold(1.2);
        let hits = (0..4096u64).filter(|&i| counter_rng(7, i) < thr).count();
        assert!((150..=370).contains(&hits), "got {hits}");
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(ErrorCurve::new(1.8, 1.2, 0.5).validate().is_ok());
        assert!(ErrorCurve::new(1.8, 1.2, -0.1).validate().is_err());
        assert!(ErrorCurve::new(1.8, 1.2, f64::NAN).validate().is_err());
        assert!(ErrorCurve::new(1.8, 1.2, 1.5).validate().is_err());
        assert!(ErrorCurve::new(0.0, 1.2, 0.1).validate().is_err());
        assert!(ErrorCurve::new(1.2, 1.8, 0.1).validate().is_err());
    }
}
