//! Continuous voltage/frequency model and the N-level operating-point
//! ladder built on it.
//!
//! The paper's controller picks between exactly two rails (VDDH/VDDL,
//! §3.1). This module generalizes that pair into samples of a
//! continuous analytic backbone:
//!
//! * [`VoltageCurve`] — frequency-from-voltage (linear in the
//!   gate overdrive `V − Vth`, the classic alpha-power model with
//!   α = 1), the quadratic dynamic-energy scale, and an exponential
//!   leakage-vs-voltage law. The curve is *calibrated* from
//!   [`TechParams`] so the paper's two rails are exact samples:
//!   `f(VDDH)` is the full clock, `f(VDDL)` is exactly half of it
//!   (§3.1's VDDL choice), and the leakage at VDDL equals the
//!   `(V/VDDH)³` anchor the accounting layer uses.
//! * [`VoltageLadder`] — an ordered set of operating points between
//!   the rails, each with a per-step ramp latency derived from the
//!   Figure 2/3 constant-dV/dt timeline (`ΔV / ramp_rate`) and a
//!   per-step share of the 66 nJ dual-network ramp energy
//!   (proportional to the step's voltage swing).
//!
//! The two-rail paper configuration is the `depth = 2` special case:
//! its single step spans the full VDDH→VDDL swing, so its ramp takes
//! the full 12 ns and charges the full 66 nJ — bit-identical to the
//! pre-ladder constants.

use crate::tech::TechParams;

/// Hard cap on ladder depth, so ladders stay [`Copy`] (they travel
/// through sweep grids and job records by value).
pub const MAX_LADDER_DEPTH: usize = 8;

/// The continuous V/f/leakage backbone, calibrated so the paper's two
/// rails are exact samples (see the module docs).
///
/// # Examples
///
/// ```
/// use vsv_power::{TechParams, VoltageCurve};
///
/// let curve = VoltageCurve::from_tech(&TechParams::baseline());
/// assert_eq!(curve.clock_period_ns(1.8), 1); // 1 GHz at VDDH
/// assert_eq!(curve.clock_period_ns(1.2), 2); // 500 MHz at VDDL
/// assert!((curve.frequency_scale(1.5) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageCurve {
    vddh: f64,
    vddl: f64,
    full_clock_period_ns: u64,
    /// Effective threshold voltage of the linear frequency model,
    /// calibrated so `f(vddl) = f(vddh) / 2`.
    vth: f64,
    /// Exponent (per volt) of the leakage law
    /// `exp(leak_k · (V − VDDH))`, calibrated so the value at VDDL
    /// matches the cubic `(VDDL/VDDH)³` anchor.
    leak_k: f64,
}

impl VoltageCurve {
    /// Calibrates the curve from the technology constants. The
    /// frequency model is linear in the overdrive `V − Vth` with
    /// `Vth = 2·VDDL − VDDH` (the unique threshold that puts half the
    /// full clock exactly at VDDL); the leakage exponent is the unique
    /// one matching the cubic law at both rails.
    #[must_use]
    pub fn from_tech(t: &TechParams) -> Self {
        VoltageCurve {
            vddh: t.vddh,
            vddl: t.vddl,
            full_clock_period_ns: t.full_clock_period_ns,
            vth: 2.0 * t.vddl - t.vddh,
            leak_k: 3.0 * (t.vddl / t.vddh).ln() / (t.vddl - t.vddh),
        }
    }

    /// The calibrated voltage range `[VDDL, VDDH]` the curve is valid
    /// over.
    #[must_use]
    pub fn calibrated_range(&self) -> (f64, f64) {
        (self.vddl, self.vddh)
    }

    /// Maximum clock frequency at supply `v`, relative to the clock at
    /// VDDH: `(v − Vth) / (VDDH − Vth)`. Exactly `1.0` at VDDH and
    /// `0.5` at VDDL by calibration.
    #[must_use]
    pub fn frequency_scale(&self, v: f64) -> f64 {
        (v - self.vth) / (self.vddh - self.vth)
    }

    /// The integer-nanosecond clock period the pipeline can run at
    /// supply `v`: the full-speed period divided by
    /// [`VoltageCurve::frequency_scale`], rounded *up* (a faster clock
    /// than the voltage supports would be unsafe). For the paper's
    /// calibration this is 1 ns at VDDH and 2 ns everywhere below it
    /// down to VDDL.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `v` is at or below the calibrated
    /// threshold, where no clock is sustainable.
    #[must_use]
    pub fn clock_period_ns(&self, v: f64) -> u64 {
        let scale = self.frequency_scale(v);
        debug_assert!(scale > 0.0, "no sustainable clock at {v} V");
        // Same float-dust guard as `TechParams::ramp_time_ns`.
        (self.full_clock_period_ns as f64 / scale - 1e-9).ceil() as u64
    }

    /// Dynamic-energy scale at supply `v` relative to VDDH:
    /// `(v/VDDH)²` — the same expression as
    /// [`TechParams::energy_scale`], so the rails sample it exactly.
    #[must_use]
    pub fn dynamic_energy_scale(&self, v: f64) -> f64 {
        let r = v / self.vddh;
        r * r
    }

    /// Dynamic-*power* scale at supply `v`: energy per op times the
    /// sustainable frequency, `(v/VDDH)² · f(v)/f(VDDH)` (the lumos
    /// `dp ∝ V²·f` model).
    #[must_use]
    pub fn dynamic_power_scale(&self, v: f64) -> f64 {
        self.dynamic_energy_scale(v) * self.frequency_scale(v)
    }

    /// Static (leakage) power scale at supply `v` relative to VDDH:
    /// `exp(k·(v − VDDH))` — exactly `1.0` at VDDH, and equal (to
    /// floating-point accuracy) to the accounting layer's cubic
    /// `(VDDL/VDDH)³` anchor at VDDL. Strictly increasing in `v`, so
    /// leakage strictly falls as the supply drops.
    #[must_use]
    pub fn leakage_scale(&self, v: f64) -> f64 {
        (self.leak_k * (v - self.vddh)).exp()
    }
}

/// An ordered ladder of operating points, from VDDH (level 0) down
/// toward VDDL (level `depth − 1`). Levels are *strictly descending*
/// voltages; adjacent levels are connected by constant-dV/dt ramp
/// steps.
///
/// The paper's two-rail configuration is
/// [`VoltageLadder::paper_rails`] (depth 2); deeper ladders
/// interpolate evenly between the same rails
/// ([`VoltageLadder::uniform`]). Depth 1 is the degenerate
/// always-VDDH ladder (no transition is ever possible).
///
/// # Examples
///
/// ```
/// use vsv_power::{TechParams, VoltageLadder};
///
/// let t = TechParams::baseline();
/// let ladder = VoltageLadder::uniform(&t, 4);
/// assert_eq!(ladder.depth(), 4);
/// assert_eq!(ladder.voltage(0), 1.8);
/// assert_eq!(ladder.voltage(3), 1.2);
/// assert_eq!(ladder.step_ramp_ns(0, &t), 4); // 0.2 V at 0.05 V/ns
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageLadder {
    depth: usize,
    volts: [f64; MAX_LADDER_DEPTH],
}

impl VoltageLadder {
    /// The paper's two rails as a depth-2 ladder: level 0 is exactly
    /// `t.vddh`, level 1 exactly `t.vddl` (bitwise — the two-rail
    /// machinery must remain an exact special case).
    #[must_use]
    pub fn paper_rails(t: &TechParams) -> Self {
        let mut volts = [0.0; MAX_LADDER_DEPTH];
        volts[0] = t.vddh;
        volts[1] = t.vddl;
        VoltageLadder { depth: 2, volts }
    }

    /// A ladder of `depth` evenly spaced points with the rails as
    /// exact endpoints. Depth 1 is the degenerate `[VDDH]` ladder;
    /// depth 2 equals [`VoltageLadder::paper_rails`].
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0 or exceeds [`MAX_LADDER_DEPTH`]
    /// (construction-time misuse; *configured* ladders are checked by
    /// [`VoltageLadder::validate`] instead).
    #[must_use]
    pub fn uniform(t: &TechParams, depth: usize) -> Self {
        assert!(
            (1..=MAX_LADDER_DEPTH).contains(&depth),
            "ladder depth must be in 1..={MAX_LADDER_DEPTH}, got {depth}"
        );
        let mut volts = [0.0; MAX_LADDER_DEPTH];
        volts[0] = t.vddh;
        if depth >= 2 {
            let span = t.vddl - t.vddh;
            for (k, v) in volts.iter_mut().enumerate().take(depth - 1).skip(1) {
                *v = t.vddh + span * (k as f64 / (depth - 1) as f64);
            }
            volts[depth - 1] = t.vddl;
        }
        VoltageLadder { depth, volts }
    }

    /// A ladder over explicit operating points (highest first), for
    /// tests and custom configurations. Points beyond
    /// [`MAX_LADDER_DEPTH`] are rejected by
    /// [`VoltageLadder::validate`], as is every other malformation —
    /// this constructor itself accepts anything, so negative tests can
    /// build bad ladders.
    #[must_use]
    pub fn from_points(points: &[f64]) -> Self {
        let mut volts = [0.0; MAX_LADDER_DEPTH];
        for (slot, v) in volts.iter_mut().zip(points.iter()) {
            *slot = *v;
        }
        VoltageLadder {
            depth: points.len(),
            volts,
        }
    }

    /// Number of operating points.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Index of the lowest level (`depth − 1`).
    ///
    /// # Panics
    ///
    /// Panics on a depth-0 ladder (rejected by
    /// [`VoltageLadder::validate`]).
    #[must_use]
    pub fn bottom(&self) -> usize {
        assert!(self.depth > 0, "empty ladder has no bottom");
        self.depth - 1
    }

    /// The supply voltage at `level` (0 = highest).
    ///
    /// # Panics
    ///
    /// Panics if `level >= depth`.
    #[must_use]
    pub fn voltage(&self, level: usize) -> f64 {
        assert!(level < self.depth, "level {level} out of {}", self.depth);
        self.volts[level]
    }

    /// The configured operating points, highest first.
    #[must_use]
    pub fn levels(&self) -> &[f64] {
        &self.volts[..self.depth]
    }

    /// The voltage swing of the step between `step` and `step + 1`
    /// (positive for a valid ladder).
    #[must_use]
    pub fn step_swing(&self, step: usize) -> f64 {
        self.voltage(step) - self.voltage(step + 1)
    }

    /// Ramp duration of one step at the constant-dV/dt rate (Figure
    /// 2/3 timeline): `ceil(ΔV / rate)`. The depth-2 ladder's single
    /// step reproduces [`TechParams::ramp_time_ns`] exactly.
    #[must_use]
    pub fn step_ramp_ns(&self, step: usize, t: &TechParams) -> u64 {
        ((self.step_swing(step) / t.ramp_rate_v_per_ns) - 1e-9).ceil() as u64
    }

    /// The step's share of the full-swing ramp energy:
    /// `ΔV / (VDDH − VDDL)`. Exactly `1.0` for the depth-2 ladder's
    /// single step (the paper's 66 nJ charge).
    #[must_use]
    pub fn step_energy_scale(&self, step: usize, t: &TechParams) -> f64 {
        self.step_swing(step) / (t.vddh - t.vddl)
    }

    /// Validates the ladder against the curve's calibrated range.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformation: depth 0 or
    /// beyond [`MAX_LADDER_DEPTH`], a top level off the VDDH anchor,
    /// non-strictly-descending (unsorted or duplicate) points, or a
    /// point outside `[VDDL, VDDH]`.
    pub fn validate(&self, t: &TechParams) -> Result<(), String> {
        if self.depth == 0 {
            return Err("ladder depth must be at least 1".into());
        }
        if self.depth > MAX_LADDER_DEPTH {
            return Err(format!(
                "ladder depth {} exceeds the maximum {MAX_LADDER_DEPTH}",
                self.depth
            ));
        }
        if self.volts[0] != t.vddh {
            return Err(format!(
                "ladder level 0 must be VDDH ({} V), got {} V",
                t.vddh, self.volts[0]
            ));
        }
        for k in 1..self.depth {
            if self.volts[k] >= self.volts[k - 1] {
                return Err(format!(
                    "ladder levels must be strictly descending: level {k} \
                     ({} V) is not below level {} ({} V)",
                    self.volts[k],
                    k - 1,
                    self.volts[k - 1]
                ));
            }
        }
        for (k, &v) in self.levels().iter().enumerate() {
            if v < t.vddl || v > t.vddh {
                return Err(format!(
                    "ladder level {k} ({v} V) is outside the calibrated \
                     range [{}, {}] V",
                    t.vddl, t.vddh
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_exact_at_the_rails() {
        let t = TechParams::baseline();
        let c = VoltageCurve::from_tech(&t);
        assert_eq!(c.frequency_scale(t.vddh), 1.0, "exact at VDDH");
        assert!((c.frequency_scale(t.vddl) - 0.5).abs() < 1e-12);
        assert_eq!(c.clock_period_ns(t.vddh), t.full_clock_period_ns);
        assert_eq!(c.clock_period_ns(t.vddl), 2 * t.full_clock_period_ns);
        // The dynamic-energy scale is the same expression as the tech
        // constant's, so the rails sample it bit-identically.
        assert_eq!(c.dynamic_energy_scale(t.vddh), t.energy_scale(t.vddh));
        assert_eq!(c.dynamic_energy_scale(t.vddl), t.energy_scale(t.vddl));
        // Leakage: exactly 1 at VDDH, the cubic anchor at VDDL.
        assert_eq!(c.leakage_scale(t.vddh), 1.0);
        let cubic = (t.vddl / t.vddh).powi(3);
        assert!((c.leakage_scale(t.vddl) - cubic).abs() < 1e-12);
    }

    #[test]
    fn interior_periods_quantize_to_half_speed() {
        let t = TechParams::baseline();
        let c = VoltageCurve::from_tech(&t);
        // Every interior point sustains more than half the clock but
        // less than the full clock; integer-ns quantization rounds all
        // of them to the 2 ns period.
        for v in [1.25, 1.4, 1.5, 1.6, 1.75] {
            assert_eq!(c.clock_period_ns(v), 2, "{v} V");
        }
    }

    #[test]
    fn paper_rails_ladder_is_the_two_rail_special_case() {
        let t = TechParams::baseline();
        let l = VoltageLadder::paper_rails(&t);
        assert_eq!(l.depth(), 2);
        assert_eq!(l.voltage(0), t.vddh);
        assert_eq!(l.voltage(1), t.vddl);
        assert_eq!(l.step_ramp_ns(0, &t), t.ramp_time_ns());
        assert_eq!(l.step_energy_scale(0, &t), 1.0);
        assert!(l.validate(&t).is_ok());
        assert_eq!(l, VoltageLadder::uniform(&t, 2));
    }

    #[test]
    fn uniform_ladders_validate_at_every_depth() {
        let t = TechParams::baseline();
        for depth in 1..=MAX_LADDER_DEPTH {
            let l = VoltageLadder::uniform(&t, depth);
            assert!(l.validate(&t).is_ok(), "depth {depth}");
            assert_eq!(l.voltage(0), t.vddh);
            if depth >= 2 {
                assert_eq!(l.voltage(depth - 1), t.vddl);
                // Step ramps sum to at least the full-swing ramp
                // (per-step ceil can only add time).
                let total: u64 = (0..depth - 1).map(|s| l.step_ramp_ns(s, &t)).sum();
                assert!(total >= t.ramp_time_ns(), "depth {depth}: {total}");
            }
        }
    }

    #[test]
    fn validate_rejects_malformed_ladders() {
        let t = TechParams::baseline();
        let bad = [
            VoltageLadder::from_points(&[]),              // depth 0
            VoltageLadder::from_points(&[1.8, 1.4, 1.5]), // unsorted
            VoltageLadder::from_points(&[1.8, 1.5, 1.5]), // duplicate
            VoltageLadder::from_points(&[1.7, 1.2]),      // top off VDDH
            VoltageLadder::from_points(&[1.8, 1.0]),      // below VDDL
        ];
        for (i, l) in bad.iter().enumerate() {
            assert!(l.validate(&t).is_err(), "case {i} must fail");
        }
    }
}
