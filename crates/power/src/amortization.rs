//! The paper's §3.5 energy-amortization argument (eq. 3–6): why VSV
//! scales the supply of combinational logic but *not* of large RAM
//! structures.
//!
//! Ramping a structure's VDD charges or discharges every internal node
//! once (eq. 3). A RAM access only touches the accessed blocks'
//! bitcells, so the per-access saving at VDDL (eq. 4) is a tiny
//! fraction of the transition cost: eq. 5 concludes ~200 VDDL accesses
//! are needed to break even for a 64 KB 2-way L1 — far more than ever
//! happen during one L2 miss. Combinational logic activates all of its
//! nodes every operation, so a single low-VDD operation more than pays
//! for the transition (eq. 6, ratio ≈ 0.2).

use crate::tech::TechParams;

/// Parameters of eq. 3–5: a RAM structure's geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RamGeometry {
    /// Total capacity in bytes (all cells charge on a ramp).
    pub capacity_bytes: u64,
    /// Bytes read per access (e.g. `assoc × block_bytes` for a
    /// set-associative read that reads one block per way).
    pub bytes_per_access: u64,
}

impl RamGeometry {
    /// The paper's eq. 3/4 example: a 64 KB 2-way L1 with 32-byte
    /// blocks reading both ways on an access (2 × 32 B).
    #[must_use]
    pub fn l1_example() -> Self {
        RamGeometry {
            capacity_bytes: 64 * 1024,
            bytes_per_access: 2 * 32,
        }
    }
}

/// Eq. 5: the number of VDDL accesses needed to amortise one VDD
/// transition of a RAM structure.
///
/// `E_overhead / E_saving = (capacity / access) × (VDDH − VDDL) /
/// (VDDH + VDDL)` — the cell count ratio times the voltage-difference
/// factor (the transition moves each cell across `ΔV`, while a VDDL
/// access saves the *difference of squares* per accessed cell).
///
/// # Examples
///
/// ```
/// use vsv_power::{ram_breakeven_accesses, RamGeometry, TechParams};
///
/// let n = ram_breakeven_accesses(RamGeometry::l1_example(), &TechParams::baseline());
/// // The paper's eq. 5 arrives at ≈ 200 accesses.
/// assert!((190.0..=210.0).contains(&n));
/// ```
#[must_use]
pub fn ram_breakeven_accesses(geometry: RamGeometry, tech: &TechParams) -> f64 {
    let cell_ratio = geometry.capacity_bytes as f64 / geometry.bytes_per_access as f64;
    cell_ratio * voltage_factor(tech)
}

/// Eq. 6: the overhead-to-saving ratio for combinational logic, whose
/// every node is active each operation: `(VDDH − VDDL) / (VDDH +
/// VDDL)` (≈ 0.2 for 1.8 V / 1.2 V). A value below 1 means a *single*
/// low-VDD operation already amortises the transition.
///
/// # Examples
///
/// ```
/// use vsv_power::{logic_amortization_ratio, TechParams};
///
/// let r = logic_amortization_ratio(&TechParams::baseline());
/// assert!((r - 0.2).abs() < 1e-9, "the paper's eq. 6 value");
/// assert!(r < 1.0, "logic amortises in one operation");
/// ```
#[must_use]
pub fn logic_amortization_ratio(tech: &TechParams) -> f64 {
    voltage_factor(tech)
}

/// `(VDDH − VDDL)/(VDDH + VDDL)`: the common factor of eq. 5 and 6.
///
/// Derivation: the ramp charges each cell across `ΔV = VDDH − VDDL`
/// (energy ∝ `C·ΔV·V̄` per cell), while operating at VDDL instead of
/// VDDH saves `C·(VDDH² − VDDL²)` per activated cell — their ratio
/// collapses to `ΔV / (VDDH + VDDL)` per cell.
fn voltage_factor(tech: &TechParams) -> f64 {
    (tech.vddh - tech.vddl) / (tech.vddh + tech.vddl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_eq5_l1_breakeven_is_about_200() {
        let n = ram_breakeven_accesses(RamGeometry::l1_example(), &TechParams::baseline());
        // (65536 / 64) × (0.6 / 3.0) = 1024 × 0.2 = 204.8 ≈ the
        // paper's "at least 200 accesses".
        assert!((n - 204.8).abs() < 1e-9, "got {n}");
    }

    #[test]
    fn paper_eq6_logic_ratio_is_point_two() {
        let r = logic_amortization_ratio(&TechParams::baseline());
        assert!((r - 0.2).abs() < 1e-12);
    }

    #[test]
    fn bigger_rams_need_more_accesses() {
        let tech = TechParams::baseline();
        let l1 = ram_breakeven_accesses(RamGeometry::l1_example(), &tech);
        let l2 = ram_breakeven_accesses(
            RamGeometry {
                capacity_bytes: 2 * 1024 * 1024,
                bytes_per_access: 8 * 64,
            },
            &tech,
        );
        assert!(l2 > l1, "the 2 MB L2 is even less amortisable");
    }

    #[test]
    fn narrower_voltage_swing_amortises_faster() {
        let mut tech = TechParams::baseline();
        let wide = ram_breakeven_accesses(RamGeometry::l1_example(), &tech);
        tech.vddl = 1.6;
        let narrow = ram_breakeven_accesses(RamGeometry::l1_example(), &tech);
        assert!(narrow < wide);
    }

    #[test]
    fn the_design_rule_follows() {
        // The conclusion §3.5 draws: during one ~120 ns L2 miss the
        // pipeline makes at most a few dozen cache accesses — far
        // below the ~200-access break-even — so the RAM structures
        // must stay at VDDH while logic scales.
        let tech = TechParams::baseline();
        let accesses_per_miss = 120.0; // one per cycle, absolute upper bound
        assert!(
            ram_breakeven_accesses(RamGeometry::l1_example(), &tech) > accesses_per_miss,
            "RAM scaling must not amortise within a miss"
        );
        assert!(logic_amortization_ratio(&tech) < 1.0);
    }
}
