//! Wattch-style activity-based dynamic-power model for the VSV
//! simulator (paper §5.2).
//!
//! The model mirrors what the paper's modified Wattch computes:
//!
//! * per-structure **access energies** at 0.18 µm / 1.8 V with a
//!   Wattch-like breakdown ([`default_catalog`]);
//! * **deterministic clock gating** (DCG): gateable structures drop
//!   most of their clock energy in idle cycles;
//! * **variable-VDD scaling**: structures on the dual-supply network
//!   (Figure 1) scale dynamic energy by `(V/VDDH)²`, using the
//!   per-cycle average voltage while ramping;
//! * the **66 nJ ramp energy** of the dual-power-supply network and
//!   the **level-converting latches** on VDDL→VDDH paths (§3.6).
//!
//! Only dynamic power is modeled, as in the paper (leakage is small at
//! 0.18 µm, §5.2).
//!
//! # Examples
//!
//! ```
//! use vsv_power::{ActivitySample, PowerAccountant, PowerConfig, StructureId};
//!
//! let mut acc = PowerAccountant::new(PowerConfig::baseline());
//! let mut sample: ActivitySample = Default::default();
//! sample[StructureId::Ruu.index()] = 8;
//! sample[StructureId::IntAlu.index()] = 6;
//! acc.record_cycle(&sample, 1.8); // one full-speed cycle at VDDH
//! acc.record_ramp();              // one supply transition
//! assert!(acc.total_energy_pj() > 66_000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
mod amortization;
mod curve;
mod reliability;
mod structures;
mod tech;

pub use accounting::{ActivitySample, DcgModel, EnergyBreakdown, PowerAccountant, PowerConfig};
pub use amortization::{logic_amortization_ratio, ram_breakeven_accesses, RamGeometry};
pub use curve::{VoltageCurve, VoltageLadder, MAX_LADDER_DEPTH};
pub use reliability::{counter_rng, ErrorCurve};
pub use structures::{default_catalog, StructureId, StructureParams, VddDomain};
pub use tech::TechParams;
