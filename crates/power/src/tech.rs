//! Technology constants (TSMC 0.18 µm at 1 GHz, §3 of the paper).

/// Process/supply parameters used throughout the power model.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechParams {
    /// Nominal (high) supply voltage. Paper: 1.8 V for TSMC 0.18 µm.
    pub vddh: f64,
    /// Scaled (low) supply voltage. Paper: 1.2 V, chosen so the
    /// max clock at VDDL is half the clock at VDDH (§3.1).
    pub vddl: f64,
    /// Full-speed clock period in nanoseconds (1 GHz → 1 ns).
    pub full_clock_period_ns: u64,
    /// Supply ramp rate in volts per nanosecond. The paper derives a
    /// 0.2 V/ns stability limit and conservatively uses 0.05 V/ns
    /// (§3.2), giving a 12 ns ramp over the 0.6 V swing.
    pub ramp_rate_v_per_ns: f64,
    /// Energy dissipated by the dual-power-supply network per ramp,
    /// from the paper's HSPICE RLC simulation: 66 nJ (§5.2).
    pub ramp_energy_pj: f64,
}

impl TechParams {
    /// The paper's 0.18 µm / 1 GHz parameters.
    #[must_use]
    pub fn baseline() -> Self {
        TechParams {
            vddh: 1.8,
            vddl: 1.2,
            full_clock_period_ns: 1,
            ramp_rate_v_per_ns: 0.05,
            ramp_energy_pj: 66_000.0,
        }
    }

    /// Ramp duration in nanoseconds (paper: 12 ns / 12 cycles).
    ///
    /// # Panics
    ///
    /// Panics if the ramp rate is not positive.
    #[must_use]
    pub fn ramp_time_ns(&self) -> u64 {
        assert!(self.ramp_rate_v_per_ns > 0.0, "ramp rate must be positive");
        // Guard against float dust (0.6 / 0.05 = 12.000000000000002).
        (((self.vddh - self.vddl) / self.ramp_rate_v_per_ns) - 1e-9).ceil() as u64
    }

    /// Dynamic-energy scale factor at supply `v` relative to VDDH:
    /// `(v / VDDH)²` (dynamic power ∝ f·C·V², §1).
    #[must_use]
    pub fn energy_scale(&self, v: f64) -> f64 {
        let r = v / self.vddh;
        r * r
    }

    /// The voltage `fraction` of the way through a ramp from `from` to
    /// `to` (linear, per the constant dV/dt model).
    #[must_use]
    pub fn ramp_voltage(&self, from: f64, to: f64, fraction: f64) -> f64 {
        from + (to - from) * fraction.clamp(0.0, 1.0)
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency (non-positive
    /// voltages, VDDL ≥ VDDH, zero period or rate).
    pub fn validate(&self) -> Result<(), String> {
        if self.vddh <= 0.0 || self.vddl <= 0.0 {
            return Err("supply voltages must be positive".into());
        }
        if self.vddl >= self.vddh {
            return Err("VDDL must be below VDDH".into());
        }
        if self.full_clock_period_ns == 0 {
            return Err("clock period must be nonzero".into());
        }
        if self.ramp_rate_v_per_ns <= 0.0 {
            return Err("ramp rate must be positive".into());
        }
        if self.ramp_energy_pj < 0.0 {
            return Err("ramp energy cannot be negative".into());
        }
        Ok(())
    }
}

impl Default for TechParams {
    fn default() -> Self {
        TechParams::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_ramp_is_12ns() {
        assert_eq!(TechParams::baseline().ramp_time_ns(), 12);
    }

    #[test]
    fn energy_scale_is_quadratic() {
        let t = TechParams::baseline();
        assert!((t.energy_scale(1.8) - 1.0).abs() < 1e-12);
        let low = t.energy_scale(1.2);
        assert!((low - (1.2f64 / 1.8).powi(2)).abs() < 1e-12);
        assert!(low < 0.5, "VDDL should more than halve dynamic energy");
    }

    #[test]
    fn ramp_voltage_interpolates_and_clamps() {
        let t = TechParams::baseline();
        assert!((t.ramp_voltage(1.8, 1.2, 0.0) - 1.8).abs() < 1e-12);
        assert!((t.ramp_voltage(1.8, 1.2, 0.5) - 1.5).abs() < 1e-12);
        assert!((t.ramp_voltage(1.8, 1.2, 1.0) - 1.2).abs() < 1e-12);
        assert!((t.ramp_voltage(1.8, 1.2, 2.0) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut t = TechParams::baseline();
        assert!(t.validate().is_ok());
        t.vddl = 1.9;
        assert!(t.validate().is_err());
        t = TechParams::baseline();
        t.ramp_rate_v_per_ns = 0.0;
        assert!(t.validate().is_err());
    }
}
