//! The processor-structure catalog: per-access and per-cycle energies,
//! supply-domain membership, and clock-gateability.
//!
//! Energies are calibrated so a fully-busy 8-wide core dissipates on
//! the order of 40 W at 1.8 V / 1 GHz with a Wattch-like breakdown
//! (clock ~20 %, window ~18 %, FUs ~15 %, caches+regfile ~20 %, …).
//! VSV's results are *relative* to this same model, so only the
//! breakdown's shape matters, not its absolute scale.
//!
//! Domain membership follows Figure 1 of the paper: the register file,
//! the L1/L2 caches, the branch predictor's RAM arrays and the PLL stay
//! on the fixed VDDH network; everything else (front/back-end logic,
//! RUU, LSQ, execution units, result bus and the clock tree) is on the
//! dual-supply network and scales with VDD.

/// Which supply network a structure hangs off (Figure 1).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VddDomain {
    /// Dual-supply network: scaled between VDDH and VDDL by VSV.
    Variable,
    /// Fixed VDDH: large RAM structures and the PLL (§3.5).
    Fixed,
}

/// One power-modeled processor structure.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureId {
    /// Fetch and decode logic.
    Fetch,
    /// Rename/dispatch logic.
    Rename,
    /// The RUU: window RAM, selection and wakeup CAM.
    Ruu,
    /// Load/store queue.
    Lsq,
    /// Architectural register file (fixed VDD, §3.5).
    RegFile,
    /// L1 instruction cache (fixed VDD).
    IL1,
    /// L1 data cache (fixed VDD).
    DL1,
    /// Branch-predictor tables and BTB (large RAM: fixed VDD).
    Bpred,
    /// Integer ALUs.
    IntAlu,
    /// Integer multiplier/dividers.
    IntMulDiv,
    /// FP ALUs.
    FpAlu,
    /// FP multiplier/dividers.
    FpMulDiv,
    /// Result bus drivers.
    ResultBus,
    /// The global clock tree (variable VDD: §3.4).
    ClockTree,
}

impl StructureId {
    /// All structures, in catalog order.
    pub const ALL: [StructureId; 14] = [
        StructureId::Fetch,
        StructureId::Rename,
        StructureId::Ruu,
        StructureId::Lsq,
        StructureId::RegFile,
        StructureId::IL1,
        StructureId::DL1,
        StructureId::Bpred,
        StructureId::IntAlu,
        StructureId::IntMulDiv,
        StructureId::FpAlu,
        StructureId::FpMulDiv,
        StructureId::ResultBus,
        StructureId::ClockTree,
    ];

    /// Dense index into catalog arrays.
    #[must_use]
    pub fn index(self) -> usize {
        StructureId::ALL
            .iter()
            .position(|s| *s == self)
            .expect("StructureId::ALL is exhaustive")
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StructureId::Fetch => "fetch",
            StructureId::Rename => "rename",
            StructureId::Ruu => "ruu",
            StructureId::Lsq => "lsq",
            StructureId::RegFile => "regfile",
            StructureId::IL1 => "il1",
            StructureId::DL1 => "dl1",
            StructureId::Bpred => "bpred",
            StructureId::IntAlu => "int-alu",
            StructureId::IntMulDiv => "int-muldiv",
            StructureId::FpAlu => "fp-alu",
            StructureId::FpMulDiv => "fp-muldiv",
            StructureId::ResultBus => "result-bus",
            StructureId::ClockTree => "clock-tree",
        }
    }
}

/// Power parameters of one structure at VDDH.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructureParams {
    /// Which structure this is.
    pub id: StructureId,
    /// Energy per access, picojoules at VDDH.
    pub access_energy_pj: f64,
    /// Clock/latch energy per clock edge, picojoules at VDDH —
    /// dissipated every cycle the structure is *not* gated off.
    pub clock_energy_pj: f64,
    /// Supply-domain membership (Figure 1).
    pub domain: VddDomain,
    /// Whether deterministic clock gating can gate this structure when
    /// idle (the DCG paper gates FUs, pipeline latches, D-cache
    /// wordline decoders and result-bus drivers).
    pub gateable: bool,
}

/// The default catalog for the Table 1 core.
///
/// # Examples
///
/// ```
/// use vsv_power::{default_catalog, StructureId, VddDomain};
///
/// let cat = default_catalog();
/// let regfile = cat[StructureId::RegFile.index()];
/// assert_eq!(regfile.domain, VddDomain::Fixed);
/// let ruu = cat[StructureId::Ruu.index()];
/// assert_eq!(ruu.domain, VddDomain::Variable);
/// ```
#[must_use]
pub fn default_catalog() -> [StructureParams; 14] {
    use StructureId as S;
    use VddDomain::{Fixed, Variable};
    let p = |id, access, clock, domain, gateable| StructureParams {
        id,
        access_energy_pj: access,
        clock_energy_pj: clock,
        domain,
        gateable,
    };
    [
        // id            access  clock  domain   gateable
        p(S::Fetch, 400.0, 600.0, Variable, true),
        p(S::Rename, 350.0, 400.0, Variable, true),
        p(S::Ruu, 700.0, 1500.0, Variable, true),
        p(S::Lsq, 550.0, 500.0, Variable, true),
        p(S::RegFile, 550.0, 700.0, Fixed, false),
        p(S::IL1, 1400.0, 500.0, Fixed, false),
        p(S::DL1, 1400.0, 600.0, Fixed, true), // wordline decoders gated
        p(S::Bpred, 900.0, 400.0, Fixed, false),
        p(S::IntAlu, 900.0, 900.0, Variable, true),
        p(S::IntMulDiv, 2200.0, 300.0, Variable, true),
        p(S::FpAlu, 1700.0, 600.0, Variable, true),
        p(S::FpMulDiv, 2600.0, 600.0, Variable, true),
        p(S::ResultBus, 700.0, 700.0, Variable, true),
        p(S::ClockTree, 0.0, 7000.0, Variable, false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_indexable_in_order() {
        for (i, id) in StructureId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i);
            assert!(!id.name().is_empty());
        }
    }

    #[test]
    fn catalog_covers_every_structure_once() {
        let cat = default_catalog();
        assert_eq!(cat.len(), StructureId::ALL.len());
        for (i, p) in cat.iter().enumerate() {
            assert_eq!(p.id.index(), i, "catalog must be in ALL order");
            assert!(p.access_energy_pj >= 0.0);
            assert!(p.clock_energy_pj >= 0.0);
        }
    }

    #[test]
    fn ram_structures_are_fixed_domain() {
        let cat = default_catalog();
        for id in [
            StructureId::RegFile,
            StructureId::IL1,
            StructureId::DL1,
            StructureId::Bpred,
        ] {
            assert_eq!(cat[id.index()].domain, VddDomain::Fixed, "{}", id.name());
        }
    }

    #[test]
    fn pipeline_and_clock_are_variable_domain() {
        let cat = default_catalog();
        for id in [
            StructureId::Fetch,
            StructureId::Ruu,
            StructureId::IntAlu,
            StructureId::ResultBus,
            StructureId::ClockTree,
        ] {
            assert_eq!(cat[id.index()].domain, VddDomain::Variable, "{}", id.name());
        }
    }

    #[test]
    fn clock_tree_dominates_idle_power() {
        let cat = default_catalog();
        let clock = cat[StructureId::ClockTree.index()].clock_energy_pj;
        for p in &cat {
            if p.id != StructureId::ClockTree {
                assert!(clock > p.clock_energy_pj);
            }
        }
    }
}
