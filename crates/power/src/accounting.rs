//! Energy integration across a run.
//!
//! The accountant consumes one [`ActivitySample`] per *pipeline* cycle
//! together with the effective supply voltage of the variable domain
//! during that cycle (the average of the cycle's start/end voltage
//! while ramping, per §5.2), and integrates per-structure energy.
//! Uncore energy (L2, bus, DRAM — always at VDDH) is added from event
//! counts, and each supply ramp contributes the 66 nJ network charge.

use crate::structures::{StructureId, StructureParams, VddDomain};
use crate::tech::TechParams;

/// Per-structure access counts for one pipeline cycle, indexed by
/// [`StructureId::index`]. The adapter from the core's activity vector
/// lives in the `vsv` system crate, keeping this crate standalone.
pub type ActivitySample = [u32; StructureId::ALL.len()];

/// How deterministic clock gating treats partially-busy structures.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DcgModel {
    /// A structure is either fully clocked (any access this cycle) or
    /// gated (idle). Matches Wattch's aggressive conditional-clocking
    /// style; the default, used for all paper-reproduction numbers.
    #[default]
    PerStructure,
    /// Clock energy scales with the fraction of a structure's units
    /// actually used this cycle (e.g. 3 of 8 ALUs busy → 3/8 of the
    /// clock energy plus the gated residue for the rest). Closer to
    /// the DCG paper's per-latch/per-unit gating; exposed for the
    /// ablation harness.
    PerUnit,
}

/// Full power-model configuration.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConfig {
    /// Technology/supply constants.
    pub tech: TechParams,
    /// The structure catalog.
    pub catalog: [StructureParams; StructureId::ALL.len()],
    /// Whether deterministic clock gating is modeled (the paper's
    /// baseline always gates; turning this off is an ablation).
    pub dcg_enabled: bool,
    /// Gating granularity (see [`DcgModel`]).
    pub dcg_model: DcgModel,
    /// Per-structure unit counts for [`DcgModel::PerUnit`], by
    /// [`StructureId::index`] (an access count equal to the unit count
    /// means "fully busy").
    pub units: [u32; StructureId::ALL.len()],
    /// Fraction of a gateable structure's clock energy removed when it
    /// is idle and gated.
    pub dcg_efficiency: f64,
    /// Extra energy per fixed-RAM access while the pipeline is at low
    /// VDD: the level-converting latches on the VDDL→VDDH paths
    /// (§3.6). At VDDH the regular latches are used instead.
    pub level_converter_energy_pj: f64,
    /// Energy per L2 access (fixed VDDH).
    pub l2_access_energy_pj: f64,
    /// Energy per DRAM access (off-chip; charged for completeness).
    pub dram_access_energy_pj: f64,
    /// Energy per memory-bus transaction.
    pub bus_transaction_energy_pj: f64,
    /// Static (leakage) power of the whole core at VDDH, in watts —
    /// charged per nanosecond and scaled by `(V/VDDH)³` on the
    /// variable domain (the paper cites a VDD³–VDD⁴ leakage
    /// dependence in §1 but models dynamic power only; `0.0`, the
    /// default, reproduces the paper. `leakage_variable_fraction` of
    /// it sits on the dual-supply network).
    pub leakage_w: f64,
    /// Fraction of `leakage_w` on the variable-VDD domain.
    pub leakage_variable_fraction: f64,
}

impl PowerConfig {
    /// The paper's setup: 0.18 µm tech constants, default catalog,
    /// DCG on.
    #[must_use]
    pub fn baseline() -> Self {
        PowerConfig {
            tech: TechParams::baseline(),
            catalog: crate::structures::default_catalog(),
            dcg_enabled: true,
            dcg_efficiency: 0.85,
            dcg_model: DcgModel::PerStructure,
            units: [
                8,  // fetch: slots
                8,  // rename: slots
                8,  // ruu: ports-worth of activity
                4,  // lsq
                12, // regfile ports
                1,  // il1
                2,  // dl1 ports
                2,  // bpred ports
                8,  // int alus
                2,  // int muldiv
                4,  // fp alus
                4,  // fp muldiv
                8,  // result bus lanes
                1,  // clock tree
            ],
            level_converter_energy_pj: 60.0,
            l2_access_energy_pj: 3_500.0,
            dram_access_energy_pj: 18_000.0,
            bus_transaction_energy_pj: 1_200.0,
            leakage_w: 0.0,
            leakage_variable_fraction: 0.6,
        }
    }

    /// The paper's configuration plus a leakage estimate typical of
    /// later nodes (an *extension*: the paper models dynamic power
    /// only). `leakage_w` is the whole-core static power at VDDH.
    #[must_use]
    pub fn with_leakage(mut self, leakage_w: f64) -> Self {
        self.leakage_w = leakage_w;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.tech.validate()?;
        if !(0.0..=1.0).contains(&self.dcg_efficiency) {
            return Err("dcg_efficiency must be in [0, 1]".into());
        }
        for p in &self.catalog {
            if p.access_energy_pj < 0.0 || p.clock_energy_pj < 0.0 {
                return Err(format!("negative energy for {}", p.id.name()));
            }
        }
        if self.leakage_w < 0.0 {
            return Err("leakage cannot be negative".into());
        }
        if !(0.0..=1.0).contains(&self.leakage_variable_fraction) {
            return Err("leakage_variable_fraction must be in [0, 1]".into());
        }
        Ok(())
    }
}

/// Integrated energy totals for a run.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Per-structure energy in picojoules, by [`StructureId::index`].
    pub per_structure_pj: [f64; StructureId::ALL.len()],
    /// Supply-ramp energy (66 nJ × ramps).
    pub ramp_pj: f64,
    /// Level-converter energy.
    pub level_converter_pj: f64,
    /// L2 + bus + DRAM energy.
    pub uncore_pj: f64,
    /// Static (leakage) energy, if the leakage extension is enabled.
    pub leakage_pj: f64,
    /// Pipeline cycles integrated.
    pub cycles: u64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.per_structure_pj.iter().sum::<f64>()
            + self.ramp_pj
            + self.level_converter_pj
            + self.uncore_pj
            + self.leakage_pj
    }
}

/// The run-long energy integrator.
///
/// # Examples
///
/// ```
/// use vsv_power::{ActivitySample, PowerAccountant, PowerConfig, StructureId};
///
/// let mut acc = PowerAccountant::new(PowerConfig::baseline());
/// let mut sample: ActivitySample = Default::default();
/// sample[StructureId::IntAlu.index()] = 4;
/// acc.record_cycle(&sample, 1.8);
/// acc.record_cycle(&sample, 1.2); // same work, lower voltage
/// let e = acc.breakdown();
/// assert!(e.total_pj() > 0.0);
/// assert_eq!(e.cycles, 2);
/// ```
#[derive(Debug, Clone)]
pub struct PowerAccountant {
    cfg: PowerConfig,
    per_structure_pj: [f64; StructureId::ALL.len()],
    ramp_pj: f64,
    level_converter_pj: f64,
    uncore_pj: f64,
    leakage_pj: f64,
    cycles: u64,
    ramps: u64,
    // Per-voltage memo for the cycle integration: the variable-domain
    // energy scale and each structure's zero-activity per-cycle delta
    // at `memo_vdd`. Rebuilt whenever the supply changes (rare: mode
    // transitions and ramp steps). An idle structure's contribution in
    // `record_cycle` is `(0.0 + clock_e) * scale`, which is bitwise
    // equal to the memoised `clock_e * scale`, so using the memo does
    // not perturb results.
    memo_vdd: f64,
    memo_scale_var: f64,
    memo_idle_delta: [f64; StructureId::ALL.len()],
}

impl PowerAccountant {
    /// Creates a zeroed accountant.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`PowerConfig::validate`].
    #[must_use]
    pub fn new(cfg: PowerConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid power configuration: {e}");
        }
        PowerAccountant {
            cfg,
            per_structure_pj: [0.0; StructureId::ALL.len()],
            ramp_pj: 0.0,
            level_converter_pj: 0.0,
            uncore_pj: 0.0,
            leakage_pj: 0.0,
            cycles: 0,
            ramps: 0,
            memo_vdd: f64::NAN,
            memo_scale_var: f64::NAN,
            memo_idle_delta: [0.0; StructureId::ALL.len()],
        }
    }

    /// Rebuilds the per-voltage memo if `vdd` differs from the memoised
    /// supply, and returns the variable-domain energy scale for `vdd`.
    fn memoise_vdd(&mut self, vdd: f64) -> f64 {
        if vdd.to_bits() == self.memo_vdd.to_bits() {
            return self.memo_scale_var;
        }
        let scale_var = self.cfg.tech.energy_scale(vdd);
        for (i, p) in self.cfg.catalog.iter().enumerate() {
            let gated_residue = p.clock_energy_pj * (1.0 - self.cfg.dcg_efficiency);
            let clock_e = if !(self.cfg.dcg_enabled && p.gateable) {
                p.clock_energy_pj
            } else {
                match self.cfg.dcg_model {
                    // An idle structure takes the gated branch...
                    DcgModel::PerStructure => gated_residue,
                    // ...and a zero-access PerUnit busy fraction is 0.
                    DcgModel::PerUnit => {
                        let busy = (0.0 / f64::from(self.cfg.units[i].max(1))).min(1.0);
                        busy * p.clock_energy_pj + (1.0 - busy) * gated_residue
                    }
                }
            };
            let scale = match p.domain {
                VddDomain::Variable => scale_var,
                VddDomain::Fixed => 1.0,
            };
            self.memo_idle_delta[i] = clock_e * scale;
        }
        self.memo_vdd = vdd;
        self.memo_scale_var = scale_var;
        scale_var
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &PowerConfig {
        &self.cfg
    }

    /// Integrates one pipeline cycle of activity at effective supply
    /// `vdd` (volts) on the variable domain.
    pub fn record_cycle(&mut self, sample: &ActivitySample, vdd: f64) {
        let scale_var = self.memoise_vdd(vdd);
        let low_mode = vdd < self.cfg.tech.vddh - 1e-9;
        for (i, p) in self.cfg.catalog.iter().enumerate() {
            if sample[i] == 0 {
                // Zero activity: `(0.0 + clock_e) * scale` is bitwise
                // the memoised idle delta.
                self.per_structure_pj[i] += self.memo_idle_delta[i];
                continue;
            }
            let accesses = f64::from(sample[i]);
            let access_e = accesses * p.access_energy_pj;
            let gated_residue = p.clock_energy_pj * (1.0 - self.cfg.dcg_efficiency);
            let clock_e = if !(self.cfg.dcg_enabled && p.gateable) {
                p.clock_energy_pj
            } else {
                match self.cfg.dcg_model {
                    DcgModel::PerStructure => p.clock_energy_pj,
                    DcgModel::PerUnit => {
                        let busy = (accesses / f64::from(self.cfg.units[i].max(1))).min(1.0);
                        busy * p.clock_energy_pj + (1.0 - busy) * gated_residue
                    }
                }
            };
            let scale = match p.domain {
                VddDomain::Variable => scale_var,
                VddDomain::Fixed => 1.0,
            };
            self.per_structure_pj[i] += (access_e + clock_e) * scale;
        }
        if low_mode {
            // Level-converting latches on the paths into the VDDH RAM
            // structures are selected instead of the regular latches.
            let ram_accesses = u64::from(sample[StructureId::RegFile.index()])
                + u64::from(sample[StructureId::IL1.index()])
                + u64::from(sample[StructureId::DL1.index()]);
            self.level_converter_pj += ram_accesses as f64 * self.cfg.level_converter_energy_pj;
        }
        self.cycles += 1;
    }

    /// Batch-integrates `cycles` pipeline cycles with **zero activity**
    /// at a constant effective supply `vdd`: bit-identical to `cycles`
    /// calls of [`PowerAccountant::record_cycle`] with an all-zero
    /// sample. The per-cycle energy delta is computed once, with the
    /// exact expression sequence `record_cycle` uses, then added to
    /// each accumulator once per cycle (repeated addition, not
    /// multiplication, because floating-point `x+d+d ≠ x+2d` in
    /// general).
    pub fn record_idle_cycles(&mut self, cycles: u64, vdd: f64) {
        if cycles == 0 {
            return;
        }
        let scale_var = self.cfg.tech.energy_scale(vdd);
        let mut delta = [0.0f64; StructureId::ALL.len()];
        for (i, p) in self.cfg.catalog.iter().enumerate() {
            let accesses = f64::from(0u32);
            let access_e = accesses * p.access_energy_pj;
            let gated_residue = p.clock_energy_pj * (1.0 - self.cfg.dcg_efficiency);
            let clock_e = if !(self.cfg.dcg_enabled && p.gateable) {
                p.clock_energy_pj
            } else {
                match self.cfg.dcg_model {
                    // An idle structure takes the gated branch...
                    DcgModel::PerStructure => gated_residue,
                    // ...and a zero-access PerUnit busy fraction is 0.
                    DcgModel::PerUnit => {
                        let busy = (accesses / f64::from(self.cfg.units[i].max(1))).min(1.0);
                        busy * p.clock_energy_pj + (1.0 - busy) * gated_residue
                    }
                }
            };
            let scale = match p.domain {
                VddDomain::Variable => scale_var,
                VddDomain::Fixed => 1.0,
            };
            delta[i] = (access_e + clock_e) * scale;
        }
        for _ in 0..cycles {
            for (acc, d) in self.per_structure_pj.iter_mut().zip(delta.iter()) {
                *acc += *d;
            }
        }
        // The level converter sees zero RAM accesses, so `record_cycle`
        // would add exactly +0.0 — a bitwise no-op on the non-negative
        // accumulator. Nothing to do.
        self.cycles += cycles;
    }

    /// Batch-integrates `ns` nanoseconds of static (leakage) power at a
    /// constant voltage: bit-identical to `ns` calls of
    /// [`PowerAccountant::record_leakage_ns`] (the per-nanosecond delta
    /// is constant at constant `vdd`, and is added once per nanosecond).
    pub fn record_leakage_span(&mut self, ns: u64, vdd: f64) {
        if self.cfg.leakage_w == 0.0 {
            return;
        }
        let ratio = vdd / self.cfg.tech.vddh;
        let var = self.cfg.leakage_w * self.cfg.leakage_variable_fraction * ratio.powi(3);
        let fixed = self.cfg.leakage_w * (1.0 - self.cfg.leakage_variable_fraction);
        let delta = (var + fixed) * 1e3;
        for _ in 0..ns {
            self.leakage_pj += delta;
        }
    }

    /// Integrates one nanosecond of static (leakage) power at the
    /// given variable-domain voltage. No-op when the leakage extension
    /// is disabled (`leakage_w == 0`, the paper's model). Leakage on
    /// the variable domain scales as `(V/VDDH)³` (§1's cited
    /// dependence); the fixed-domain share does not scale.
    pub fn record_leakage_ns(&mut self, vdd: f64) {
        if self.cfg.leakage_w == 0.0 {
            return;
        }
        let ratio = vdd / self.cfg.tech.vddh;
        let var = self.cfg.leakage_w * self.cfg.leakage_variable_fraction * ratio.powi(3);
        let fixed = self.cfg.leakage_w * (1.0 - self.cfg.leakage_variable_fraction);
        // 1 W for 1 ns = 1000 pJ.
        self.leakage_pj += (var + fixed) * 1e3;
    }

    /// Charges one full-swing supply ramp (either direction): the
    /// 66 nJ dual-network transition energy.
    pub fn record_ramp(&mut self) {
        self.record_ramp_scaled(1.0);
    }

    /// Charges one supply-ramp step covering `scale` of the full
    /// VDDH↔VDDL swing. A ladder step between intermediate rails
    /// moves proportionally less charge between the networks, so it
    /// pays a proportional share of the 66 nJ; `scale = 1.0` is the
    /// full-swing [`PowerAccountant::record_ramp`].
    pub fn record_ramp_scaled(&mut self, scale: f64) {
        self.ramp_pj += self.cfg.tech.ramp_energy_pj * scale;
        self.ramps += 1;
    }

    /// Adds uncore energy from event counts (L2 accesses, DRAM
    /// accesses, bus transactions) — all at fixed VDDH.
    pub fn record_uncore(&mut self, l2_accesses: u64, dram_accesses: u64, bus_transactions: u64) {
        self.uncore_pj += l2_accesses as f64 * self.cfg.l2_access_energy_pj
            + dram_accesses as f64 * self.cfg.dram_access_energy_pj
            + bus_transactions as f64 * self.cfg.bus_transaction_energy_pj;
    }

    /// The integrated breakdown so far.
    #[must_use]
    pub fn breakdown(&self) -> EnergyBreakdown {
        EnergyBreakdown {
            per_structure_pj: self.per_structure_pj,
            ramp_pj: self.ramp_pj,
            level_converter_pj: self.level_converter_pj,
            uncore_pj: self.uncore_pj,
            leakage_pj: self.leakage_pj,
            cycles: self.cycles,
        }
    }

    /// Total energy so far, picojoules.
    #[must_use]
    pub fn total_energy_pj(&self) -> f64 {
        self.breakdown().total_pj()
    }

    /// Number of ramps charged.
    #[must_use]
    pub fn ramps(&self) -> u64 {
        self.ramps
    }

    /// Average power over `elapsed_ns` of wall clock, in watts
    /// (1 pJ/ns = 1 mW).
    #[must_use]
    pub fn average_power_w(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            0.0
        } else {
            self.total_energy_pj() / elapsed_ns as f64 * 1e-3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_sample() -> ActivitySample {
        let mut s: ActivitySample = Default::default();
        for v in s.iter_mut() {
            *v = 2;
        }
        s
    }

    #[test]
    fn lower_vdd_costs_less_for_same_work() {
        let mut hi = PowerAccountant::new(PowerConfig::baseline());
        let mut lo = PowerAccountant::new(PowerConfig::baseline());
        let s = busy_sample();
        hi.record_cycle(&s, 1.8);
        lo.record_cycle(&s, 1.2);
        assert!(lo.total_energy_pj() < hi.total_energy_pj());
        // But not free: fixed-domain structures don't scale.
        assert!(lo.total_energy_pj() > hi.total_energy_pj() * 0.3);
    }

    #[test]
    fn voltage_scaling_is_monotonic() {
        let s = busy_sample();
        let mut last = f64::INFINITY;
        for v in [1.8, 1.6, 1.4, 1.2] {
            let mut acc = PowerAccountant::new(PowerConfig::baseline());
            acc.record_cycle(&s, v);
            let e = acc.total_energy_pj();
            assert!(e < last, "energy must fall with voltage");
            last = e;
        }
    }

    #[test]
    fn fixed_domain_unaffected_by_vdd() {
        let mut acc_hi = PowerAccountant::new(PowerConfig::baseline());
        let mut acc_lo = PowerAccountant::new(PowerConfig::baseline());
        let mut s: ActivitySample = Default::default();
        s[StructureId::RegFile.index()] = 5;
        acc_hi.record_cycle(&s, 1.8);
        acc_lo.record_cycle(&s, 1.2);
        let i = StructureId::RegFile.index();
        assert!(
            (acc_hi.breakdown().per_structure_pj[i] - acc_lo.breakdown().per_structure_pj[i]).abs()
                < 1e-9
        );
    }

    #[test]
    fn dcg_cuts_idle_clock_energy_only() {
        let mut gated = PowerConfig::baseline();
        gated.dcg_enabled = true;
        let mut ungated = PowerConfig::baseline();
        ungated.dcg_enabled = false;
        let idle: ActivitySample = Default::default();

        let mut a = PowerAccountant::new(gated);
        let mut b = PowerAccountant::new(ungated);
        a.record_cycle(&idle, 1.8);
        b.record_cycle(&idle, 1.8);
        assert!(a.total_energy_pj() < b.total_energy_pj());

        // With every structure busy, gating changes nothing.
        let mut a2 = PowerAccountant::new(gated);
        let mut b2 = PowerAccountant::new(ungated);
        let busy = busy_sample();
        a2.record_cycle(&busy, 1.8);
        b2.record_cycle(&busy, 1.8);
        assert!((a2.total_energy_pj() - b2.total_energy_pj()).abs() < 1e-9);
    }

    #[test]
    fn clock_tree_burns_even_when_idle() {
        let mut acc = PowerAccountant::new(PowerConfig::baseline());
        acc.record_cycle(&Default::default(), 1.8);
        let e = acc.breakdown().per_structure_pj[StructureId::ClockTree.index()];
        assert!(e > 0.0, "clock tree is not gateable");
    }

    #[test]
    fn ramp_energy_accumulates() {
        let mut acc = PowerAccountant::new(PowerConfig::baseline());
        acc.record_ramp();
        acc.record_ramp();
        assert_eq!(acc.ramps(), 2);
        assert!((acc.breakdown().ramp_pj - 132_000.0).abs() < 1e-6);
    }

    #[test]
    fn level_converters_charged_only_at_low_vdd() {
        let mut s: ActivitySample = Default::default();
        s[StructureId::DL1.index()] = 3;
        let mut hi = PowerAccountant::new(PowerConfig::baseline());
        hi.record_cycle(&s, 1.8);
        assert_eq!(hi.breakdown().level_converter_pj, 0.0);
        let mut lo = PowerAccountant::new(PowerConfig::baseline());
        lo.record_cycle(&s, 1.2);
        assert!((lo.breakdown().level_converter_pj - 180.0).abs() < 1e-9);
    }

    #[test]
    fn uncore_energy_from_counts() {
        let mut acc = PowerAccountant::new(PowerConfig::baseline());
        acc.record_uncore(10, 2, 4);
        let expect = 10.0 * 3_500.0 + 2.0 * 18_000.0 + 4.0 * 1_200.0;
        assert!((acc.breakdown().uncore_pj - expect).abs() < 1e-6);
    }

    #[test]
    fn average_power_units() {
        let mut acc = PowerAccountant::new(PowerConfig::baseline());
        let busy = busy_sample();
        for _ in 0..1000 {
            acc.record_cycle(&busy, 1.8);
        }
        let w = acc.average_power_w(1000);
        // A fully-busy 8-wide core should land in tens of watts.
        assert!(w > 10.0 && w < 100.0, "got {w} W");
        assert_eq!(acc.average_power_w(0), 0.0);
    }

    #[test]
    fn busy_cycle_breakdown_shape_is_wattch_like() {
        let mut acc = PowerAccountant::new(PowerConfig::baseline());
        acc.record_cycle(&busy_sample(), 1.8);
        let b = acc.breakdown();
        let total: f64 = b.per_structure_pj.iter().sum();
        let clock = b.per_structure_pj[StructureId::ClockTree.index()];
        let frac = clock / total;
        assert!(
            (0.1..0.4).contains(&frac),
            "clock tree should be a large-but-not-dominant slice, got {frac}"
        );
    }

    #[test]
    #[should_panic(expected = "invalid power configuration")]
    fn invalid_config_panics() {
        let mut cfg = PowerConfig::baseline();
        cfg.dcg_efficiency = 1.5;
        let _ = PowerAccountant::new(cfg);
    }
}

impl EnergyBreakdown {
    /// Renders a per-structure table: name, picojoules, percent of
    /// total — the Wattch-style breakdown view.
    ///
    /// # Examples
    ///
    /// ```
    /// use vsv_power::{ActivitySample, PowerAccountant, PowerConfig};
    ///
    /// let mut acc = PowerAccountant::new(PowerConfig::baseline());
    /// acc.record_cycle(&ActivitySample::default(), 1.8);
    /// let table = acc.breakdown().table();
    /// assert!(table.contains("clock-tree"));
    /// assert!(table.contains("total"));
    /// ```
    #[must_use]
    pub fn table(&self) -> String {
        use crate::structures::StructureId;
        use std::fmt::Write as _;

        let total = self.total_pj();
        let mut out = String::new();
        let mut row = |name: &str, pj: f64| {
            let pct = if total > 0.0 { pj / total * 100.0 } else { 0.0 };
            let _ = writeln!(out, "{name:<14} {pj:>14.0} pJ {pct:>6.1}%");
        };
        for id in StructureId::ALL {
            row(id.name(), self.per_structure_pj[id.index()]);
        }
        row("level-conv", self.level_converter_pj);
        row("ramps", self.ramp_pj);
        row("uncore", self.uncore_pj);
        row("leakage", self.leakage_pj);
        let _ = writeln!(out, "{:-<38}", "");
        let _ = writeln!(out, "{:<14} {:>14.0} pJ  100.0%", "total", total);
        out
    }
}

#[cfg(test)]
mod table_tests {
    use super::*;
    use crate::structures::StructureId;

    #[test]
    fn table_lists_every_structure_and_sums() {
        let mut acc = PowerAccountant::new(PowerConfig::baseline());
        let mut s: ActivitySample = Default::default();
        s[StructureId::IntAlu.index()] = 3;
        acc.record_cycle(&s, 1.8);
        acc.record_ramp();
        acc.record_uncore(2, 1, 1);
        let b = acc.breakdown();
        let t = b.table();
        for id in StructureId::ALL {
            assert!(t.contains(id.name()), "missing {}", id.name());
        }
        assert!(t.contains("ramps"));
        assert!(t.contains("uncore"));
        // Components add to the total.
        let parts: f64 =
            b.per_structure_pj.iter().sum::<f64>() + b.ramp_pj + b.level_converter_pj + b.uncore_pj;
        assert!((parts - b.total_pj()).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_has_clean_table() {
        let acc = PowerAccountant::new(PowerConfig::baseline());
        let t = acc.breakdown().table();
        assert!(t.contains("total"));
    }
}

#[cfg(test)]
mod dcg_model_tests {
    use super::*;
    use crate::structures::StructureId;

    fn one_alu_sample() -> ActivitySample {
        let mut s: ActivitySample = Default::default();
        s[StructureId::IntAlu.index()] = 1;
        s
    }

    #[test]
    fn per_unit_gating_charges_partial_clock_energy() {
        let mut per_structure = PowerConfig::baseline();
        per_structure.dcg_model = DcgModel::PerStructure;
        let mut per_unit = PowerConfig::baseline();
        per_unit.dcg_model = DcgModel::PerUnit;

        // One of eight ALUs busy: per-unit gating must charge less
        // clock energy than all-or-nothing gating (which clocks the
        // whole pool because it saw an access).
        let mut a = PowerAccountant::new(per_structure);
        let mut b = PowerAccountant::new(per_unit);
        a.record_cycle(&one_alu_sample(), 1.8);
        b.record_cycle(&one_alu_sample(), 1.8);
        let i = StructureId::IntAlu.index();
        assert!(
            b.breakdown().per_structure_pj[i] < a.breakdown().per_structure_pj[i],
            "per-unit {} !< per-structure {}",
            b.breakdown().per_structure_pj[i],
            a.breakdown().per_structure_pj[i]
        );
    }

    #[test]
    fn per_unit_converges_to_full_clock_when_saturated() {
        let mut cfg = PowerConfig::baseline();
        cfg.dcg_model = DcgModel::PerUnit;
        let mut full: ActivitySample = Default::default();
        full[StructureId::IntAlu.index()] = 8; // all units busy
        let mut acc = PowerAccountant::new(cfg);
        acc.record_cycle(&full, 1.8);

        let mut reference = PowerAccountant::new(PowerConfig::baseline());
        reference.record_cycle(&full, 1.8);
        let i = StructureId::IntAlu.index();
        assert!(
            (acc.breakdown().per_structure_pj[i] - reference.breakdown().per_structure_pj[i]).abs()
                < 1e-9,
            "saturated per-unit equals per-structure"
        );
    }

    #[test]
    fn per_unit_idle_equals_gated_residue() {
        let mut cfg = PowerConfig::baseline();
        cfg.dcg_model = DcgModel::PerUnit;
        let mut a = PowerAccountant::new(cfg);
        a.record_cycle(&Default::default(), 1.8);
        let mut b = PowerAccountant::new(PowerConfig::baseline());
        b.record_cycle(&Default::default(), 1.8);
        assert!((a.total_energy_pj() - b.total_energy_pj()).abs() < 1e-9);
    }
}

#[cfg(test)]
mod leakage_tests {
    use super::*;

    #[test]
    fn leakage_off_by_default_matches_the_paper() {
        let mut acc = PowerAccountant::new(PowerConfig::baseline());
        acc.record_leakage_ns(1.8);
        acc.record_leakage_ns(1.2);
        assert_eq!(acc.breakdown().leakage_pj, 0.0);
    }

    #[test]
    fn leakage_integrates_per_ns_and_scales_cubically() {
        let cfg = PowerConfig::baseline().with_leakage(10.0);
        let mut acc = PowerAccountant::new(cfg);
        acc.record_leakage_ns(1.8);
        // 10 W x 1 ns = 10_000 pJ at VDDH.
        assert!((acc.breakdown().leakage_pj - 10_000.0).abs() < 1e-6);

        let mut low = PowerAccountant::new(cfg);
        low.record_leakage_ns(1.2);
        // Variable 60% scales by (1.2/1.8)^3 ≈ 0.296; fixed 40% stays.
        let expect = 10_000.0 * (0.6 * (1.2f64 / 1.8).powi(3) + 0.4);
        assert!(
            (low.breakdown().leakage_pj - expect).abs() < 1e-6,
            "{} vs {}",
            low.breakdown().leakage_pj,
            expect
        );
        assert!(low.breakdown().leakage_pj < acc.breakdown().leakage_pj);
    }

    #[test]
    fn leakage_validation() {
        let mut cfg = PowerConfig::baseline();
        cfg.leakage_w = -1.0;
        assert!(cfg.validate().is_err());
        let mut cfg = PowerConfig::baseline();
        cfg.leakage_variable_fraction = 1.5;
        assert!(cfg.validate().is_err());
    }
}
