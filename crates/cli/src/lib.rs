//! Argument parsing and command execution for `vsv-cli`.
//!
//! Hand-rolled parsing (no CLI dependency): the grammar is small and
//! fixed. See [`Command::parse`] for the accepted forms and the
//! binary's `--help` output for usage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vsv::{Comparison, Experiment, Sweep, System, SystemConfig};
use vsv_workloads::{spec2k_twins, table2_reference, twin, Generator};

/// Which system configuration a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigKind {
    /// The Table 1 baseline (VSV off).
    Baseline,
    /// VSV with both FSMs at 3/10 (the paper's headline config).
    VsvFsm,
    /// VSV without the FSMs (down on detect, up on first return).
    VsvNoFsm,
}

impl ConfigKind {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "baseline" => Ok(ConfigKind::Baseline),
            "vsv-fsm" | "vsv" => Ok(ConfigKind::VsvFsm),
            "vsv-nofsm" => Ok(ConfigKind::VsvNoFsm),
            other => Err(format!(
                "unknown config '{other}' (expected baseline | vsv-fsm | vsv-nofsm)"
            )),
        }
    }

    /// Builds the [`SystemConfig`], optionally with Time-Keeping.
    #[must_use]
    pub fn to_config(self, timekeeping: bool) -> SystemConfig {
        let base = match self {
            ConfigKind::Baseline => SystemConfig::baseline(),
            ConfigKind::VsvFsm => SystemConfig::vsv_with_fsms(),
            ConfigKind::VsvNoFsm => SystemConfig::vsv_without_fsms(),
        };
        base.with_timekeeping(timekeeping)
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List the twins and their Table 2 reference numbers.
    List,
    /// Run one twin under one configuration.
    Run {
        /// Twin name.
        twin: String,
        /// Configuration to run.
        config: ConfigKind,
        /// Attach Time-Keeping prefetching.
        timekeeping: bool,
        /// Measured instructions.
        insts: u64,
        /// Warm-up instructions.
        warmup: u64,
        /// Emit JSON instead of text.
        json: bool,
    },
    /// Run baseline vs. VSV-with-FSMs and print the paper metrics.
    Compare {
        /// Twin name.
        twin: String,
        /// Attach Time-Keeping to both sides.
        timekeeping: bool,
        /// Measured instructions.
        insts: u64,
        /// Warm-up instructions.
        warmup: u64,
        /// Worker threads (0 = `VSV_WORKERS` / host parallelism).
        workers: usize,
        /// Emit JSON instead of text.
        json: bool,
    },
    /// Run baseline vs. VSV-with-FSMs over many twins in parallel.
    Sweep {
        /// Twin name; `None` sweeps the whole suite.
        twin: Option<String>,
        /// Attach Time-Keeping to both sides.
        timekeeping: bool,
        /// Measured instructions.
        insts: u64,
        /// Warm-up instructions.
        warmup: u64,
        /// Worker threads (0 = `VSV_WORKERS` / host parallelism).
        workers: usize,
        /// Emit the full `SweepReport` as JSON instead of text.
        json: bool,
    },
    /// Print a mode strip (one char per ns) around VSV activity.
    Trace {
        /// Twin name.
        twin: String,
        /// Nanoseconds of trace to keep (tail).
        ns: usize,
        /// Also write an SVG timeline to this path.
        svg: Option<String>,
    },
    /// Print usage.
    Help,
}

impl Command {
    /// Parses an argument vector (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage message when the arguments do not form a valid
    /// command.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut it = args.iter();
        let Some(cmd) = it.next() else {
            return Ok(Command::Help);
        };
        let mut twin_name: Option<String> = None;
        let mut config = ConfigKind::Baseline;
        let mut timekeeping = false;
        let mut insts = 300_000u64;
        let mut warmup = 100_000u64;
        let mut json = false;
        let mut workers = 0usize;
        let mut ns = 2_000usize;
        let mut svg: Option<String> = None;

        let next_value = |flag: &str, it: &mut std::slice::Iter<String>| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--twin" => twin_name = Some(next_value("--twin", &mut it)?),
                "--config" => config = ConfigKind::parse(&next_value("--config", &mut it)?)?,
                "--tk" => timekeeping = true,
                "--json" => json = true,
                "--insts" => {
                    insts = next_value("--insts", &mut it)?
                        .parse()
                        .map_err(|e| format!("--insts: {e}"))?;
                }
                "--warmup" => {
                    warmup = next_value("--warmup", &mut it)?
                        .parse()
                        .map_err(|e| format!("--warmup: {e}"))?;
                }
                "--workers" => {
                    workers = next_value("--workers", &mut it)?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?;
                }
                "--ns" => {
                    ns = next_value("--ns", &mut it)?
                        .parse()
                        .map_err(|e| format!("--ns: {e}"))?;
                }
                "--svg" => svg = Some(next_value("--svg", &mut it)?),
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        let need_twin = |t: Option<String>| t.ok_or_else(|| "--twin is required".to_owned());
        match cmd.as_str() {
            "list" => Ok(Command::List),
            "help" | "--help" | "-h" => Ok(Command::Help),
            "run" => Ok(Command::Run {
                twin: need_twin(twin_name)?,
                config,
                timekeeping,
                insts,
                warmup,
                json,
            }),
            "compare" => Ok(Command::Compare {
                twin: need_twin(twin_name)?,
                timekeeping,
                insts,
                warmup,
                workers,
                json,
            }),
            "sweep" => Ok(Command::Sweep {
                twin: twin_name,
                timekeeping,
                insts,
                warmup,
                workers,
                json,
            }),
            "trace" => Ok(Command::Trace {
                twin: need_twin(twin_name)?,
                ns,
                svg,
            }),
            other => Err(format!("unknown command '{other}'")),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
vsv-cli — run the VSV (MICRO-36 2003) reproduction from the command line

USAGE:
  vsv-cli list
  vsv-cli run     --twin NAME [--config baseline|vsv-fsm|vsv-nofsm]
                  [--tk] [--insts N] [--warmup N] [--json]
  vsv-cli compare --twin NAME [--tk] [--insts N] [--warmup N]
                  [--workers N] [--json]
  vsv-cli sweep   [--twin NAME] [--tk] [--insts N] [--warmup N]
                  [--workers N] [--json]
  vsv-cli trace   --twin NAME [--ns N] [--svg FILE]

Sweep-shaped commands (compare, sweep) execute on the parallel
deterministic sweep engine: results are in grid order and
bit-identical for any worker count. --workers 0 (the default) uses
VSV_WORKERS or the host's parallelism.

EXAMPLES:
  vsv-cli compare --twin mcf
  vsv-cli run --twin applu --config vsv-fsm --tk --json
  vsv-cli sweep --workers 4 --json
  vsv-cli trace --twin ammp --ns 500
";

/// Executes a parsed command; returns the text to print.
///
/// # Errors
///
/// Returns a message for unknown twins.
pub fn execute(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(USAGE.to_owned()),
        Command::List => {
            let mut out = String::new();
            out.push_str("twin       paper IPC  paper MR  paper MR(TK)\n");
            for r in table2_reference() {
                out.push_str(&format!(
                    "{:<10} {:>9.2} {:>9.1} {:>13.1}\n",
                    r.name, r.ipc_base, r.mr_base, r.mr_tk
                ));
            }
            Ok(out)
        }
        Command::Run {
            twin: name,
            config,
            timekeeping,
            insts,
            warmup,
            json,
        } => {
            let params = twin(&name).ok_or_else(|| unknown_twin(&name))?;
            let e = Experiment {
                warmup_instructions: warmup,
                instructions: insts,
            };
            let result = e.run(&params, config.to_config(timekeeping));
            if json {
                serde_json::to_string_pretty(&result).map_err(|e| e.to_string())
            } else {
                Ok(result.to_string())
            }
        }
        Command::Compare {
            twin: name,
            timekeeping,
            insts,
            warmup,
            workers,
            json,
        } => {
            let params = twin(&name).ok_or_else(|| unknown_twin(&name))?;
            let e = Experiment {
                warmup_instructions: warmup,
                instructions: insts,
            };
            // A compare is a two-job sweep: baseline then variant.
            let sweep = Sweep::over_grid(
                e,
                &[params],
                &[
                    SystemConfig::baseline().with_timekeeping(timekeeping),
                    SystemConfig::vsv_with_fsms().with_timekeeping(timekeeping),
                ],
            );
            let mut results = sweep.run(resolve_workers(workers)).into_iter();
            let (base, vsv_run) = (
                results.next().expect("two jobs"),
                results.next().expect("two jobs"),
            );
            let cmp = Comparison::of(&base, &vsv_run);
            if json {
                #[derive(serde::Serialize)]
                struct Out {
                    baseline: vsv::RunResult,
                    vsv: vsv::RunResult,
                    comparison: Comparison,
                }
                serde_json::to_string_pretty(&Out {
                    baseline: base,
                    vsv: vsv_run,
                    comparison: cmp,
                })
                .map_err(|e| e.to_string())
            } else {
                Ok(format!("baseline: {base}\nvsv     : {vsv_run}\n=> {cmp}\n"))
            }
        }
        Command::Sweep {
            twin: name,
            timekeeping,
            insts,
            warmup,
            workers,
            json,
        } => {
            let params = match name {
                Some(name) => vec![twin(&name).ok_or_else(|| unknown_twin(&name))?],
                None => spec2k_twins(),
            };
            let e = Experiment {
                warmup_instructions: warmup,
                instructions: insts,
            };
            let sweep = Sweep::over_grid(
                e,
                &params,
                &[
                    SystemConfig::baseline().with_timekeeping(timekeeping),
                    SystemConfig::vsv_with_fsms().with_timekeeping(timekeeping),
                ],
            );
            let report = sweep.report(resolve_workers(workers));
            if json {
                serde_json::to_string_pretty(&report).map_err(|e| e.to_string())
            } else {
                let mut out = format!(
                    "{} jobs on {} workers ({:.1} ms wall)\n{:<10} {:>8} | {:>8} {:>8}\n",
                    report.jobs,
                    report.workers,
                    report.wall_ns as f64 / 1e6,
                    "twin",
                    "MR",
                    "perf%",
                    "power%"
                );
                for pair in report.records.chunks(2) {
                    let (base, vsv_run) = (&pair[0].result, &pair[1].result);
                    let cmp = Comparison::of(base, vsv_run);
                    out.push_str(&format!(
                        "{:<10} {:>8.1} | {:>8.1} {:>8.1}\n",
                        base.workload, base.mpki, cmp.perf_degradation_pct, cmp.power_saving_pct
                    ));
                }
                Ok(out)
            }
        }
        Command::Trace {
            twin: name,
            ns,
            svg,
        } => {
            let params = twin(&name).ok_or_else(|| unknown_twin(&name))?;
            let mut sys = System::new(SystemConfig::vsv_with_fsms(), Generator::new(params));
            sys.enable_trace(ns);
            sys.warm_up(20_000);
            let _ = sys.run(30_000);
            let trace = sys.take_trace().expect("tracing was enabled");
            let mut out = String::new();
            out.push_str("H=high d=down-distribute D=ramp-down L=low u=up-distribute U=ramp-up\n");
            for chunk in trace.strip().into_bytes().chunks(100) {
                out.push_str(std::str::from_utf8(chunk).expect("ascii strip"));
                out.push('\n');
            }
            if let Some(path) = svg {
                let rendered = vsv_viz::TimelineChart::new(&trace).render();
                std::fs::write(&path, rendered).map_err(|e| format!("{path}: {e}"))?;
                out.push_str(&format!("(svg timeline written to {path})\n"));
            }
            Ok(out)
        }
    }
}

/// Maps the `--workers` flag to a concrete thread count: 0 defers to
/// [`vsv::default_workers`] (`VSV_WORKERS` or host parallelism).
fn resolve_workers(flag: usize) -> usize {
    if flag == 0 {
        vsv::default_workers()
    } else {
        flag
    }
}

fn unknown_twin(name: &str) -> String {
    let names: Vec<&str> = spec2k_twins().iter().map(|p| p.name).collect();
    format!("unknown twin '{name}'; known twins: {}", names.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_run_with_flags() {
        let cmd = Command::parse(&sv(&[
            "run", "--twin", "mcf", "--config", "vsv-fsm", "--tk", "--insts", "5000", "--warmup",
            "1000", "--json",
        ]))
        .expect("valid");
        assert_eq!(
            cmd,
            Command::Run {
                twin: "mcf".to_owned(),
                config: ConfigKind::VsvFsm,
                timekeeping: true,
                insts: 5000,
                warmup: 1000,
                json: true,
            }
        );
    }

    #[test]
    fn rejects_missing_twin_and_bad_flags() {
        assert!(Command::parse(&sv(&["run"])).is_err());
        assert!(Command::parse(&sv(&["run", "--twin", "mcf", "--bogus"])).is_err());
        assert!(Command::parse(&sv(&["run", "--twin"])).is_err());
        assert!(Command::parse(&sv(&["frobnicate"])).is_err());
        assert!(Command::parse(&sv(&["run", "--twin", "mcf", "--config", "wat"])).is_err());
    }

    #[test]
    fn empty_args_mean_help() {
        assert_eq!(Command::parse(&[]).expect("ok"), Command::Help);
        assert!(execute(Command::Help).expect("ok").contains("USAGE"));
    }

    #[test]
    fn list_prints_all_twins() {
        let out = execute(Command::List).expect("ok");
        for p in spec2k_twins() {
            assert!(out.contains(p.name), "missing {}", p.name);
        }
    }

    #[test]
    fn run_unknown_twin_is_a_clean_error() {
        let err = execute(Command::Run {
            twin: "doom".to_owned(),
            config: ConfigKind::Baseline,
            timekeeping: false,
            insts: 1000,
            warmup: 100,
            json: false,
        })
        .expect_err("unknown twin");
        assert!(err.contains("doom"));
        assert!(err.contains("mcf"));
    }

    #[test]
    fn run_json_is_valid_json() {
        let out = execute(Command::Run {
            twin: "gzip".to_owned(),
            config: ConfigKind::Baseline,
            timekeeping: false,
            insts: 3_000,
            warmup: 1_000,
            json: true,
        })
        .expect("runs");
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid json");
        assert!(v.get("avg_power_w").is_some());
    }

    #[test]
    fn compare_text_mentions_both_sides() {
        let out = execute(Command::Compare {
            twin: "gzip".to_owned(),
            timekeeping: false,
            insts: 3_000,
            warmup: 1_000,
            workers: 2,
            json: false,
        })
        .expect("runs");
        assert!(out.contains("baseline:"));
        assert!(out.contains("power saved"));
    }

    #[test]
    fn parses_sweep_with_workers() {
        let cmd = Command::parse(&sv(&["sweep", "--workers", "4", "--json"])).expect("valid");
        assert_eq!(
            cmd,
            Command::Sweep {
                twin: None,
                timekeeping: false,
                insts: 300_000,
                warmup: 100_000,
                workers: 4,
                json: true,
            }
        );
    }

    #[test]
    fn sweep_single_twin_text_has_one_row() {
        let out = execute(Command::Sweep {
            twin: Some("gzip".to_owned()),
            timekeeping: false,
            insts: 3_000,
            warmup: 1_000,
            workers: 2,
            json: false,
        })
        .expect("runs");
        assert!(out.contains("2 jobs"), "{out}");
        assert!(out.contains("gzip"), "{out}");
    }

    #[test]
    fn sweep_json_is_a_sweep_report() {
        let out = execute(Command::Sweep {
            twin: Some("gzip".to_owned()),
            timekeeping: false,
            insts: 3_000,
            warmup: 1_000,
            workers: 1,
            json: true,
        })
        .expect("runs");
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid json");
        let records = v.get("records").and_then(|r| r.as_seq()).expect("records");
        assert_eq!(records.len(), 2);
        assert!(records[0].get("config_digest").is_some());
    }

    #[test]
    fn trace_emits_mode_strip() {
        let out = execute(Command::Trace {
            twin: "ammp".to_owned(),
            ns: 300,
            svg: None,
        })
        .expect("runs");
        assert!(out.contains('H') || out.contains('L'));
    }
}
